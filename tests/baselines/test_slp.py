"""Tests for the SLP (switched linear prediction) baseline."""

import pytest

from repro.baselines.slp import SlpCodec, SlpParameters
from repro.exceptions import CodecMismatchError, ConfigError
from repro.imaging.image import GrayImage
from repro.imaging.metrics import first_order_entropy
from repro.imaging.synthetic import generate_gradient_image


class TestRoundtrip:
    def test_all_standard_images(self, roundtrip_images):
        codec = SlpCodec()
        for image in roundtrip_images:
            stream = codec.encode(image)
            assert codec.decode(stream) == image, image.name

    def test_non_square_geometry(self):
        image = GrayImage(7, 31, [(3 * x + 5 * y) % 256 for y in range(31) for x in range(7)])
        codec = SlpCodec()
        assert codec.decode(codec.encode(image)) == image

    def test_single_pixel(self):
        codec = SlpCodec()
        image = GrayImage(1, 1, [3])
        assert codec.decode(codec.encode(image)) == image

    def test_custom_parameters_roundtrip(self, lena_small):
        codec = SlpCodec(SlpParameters(switch_threshold=6, activity_thresholds=(4, 16, 48)))
        assert codec.decode(codec.encode(lena_small)) == lena_small


class TestPrediction:
    def test_ramps_are_nearly_free(self):
        # 64-pixel ramps step by ~2 grey levels per pixel, which the plane
        # predictor tracks almost exactly in every direction.
        codec = SlpCodec()
        for direction in ("horizontal", "vertical", "diagonal"):
            image = generate_gradient_image(64, direction=direction)
            assert codec.bits_per_pixel(image) < 2.5, direction

    def test_switching_favours_direction_of_edge(self):
        # Vertical stripes: horizontal gradient is huge, vertical is zero, so
        # the predictor should lock onto the N (previous row) samples and the
        # image should compress very well after the first row.
        rows = [[0, 255] * 16 for _ in range(32)]
        image = GrayImage.from_rows(rows)
        assert SlpCodec().bits_per_pixel(image) < 2.0

    def test_activity_classes_cover_range(self):
        codec = SlpCodec()
        classes = {codec._activity_class(value) for value in range(0, 600, 7)}
        assert classes == {0, 1, 2, 3}

    def test_fold_unfold_inverse(self):
        for error in range(-128, 128):
            assert SlpCodec._unfold(SlpCodec._fold(error)) == error


class TestCompression:
    def test_beats_entropy_on_smooth_content(self, zelda_small):
        assert SlpCodec().bits_per_pixel(zelda_small) < first_order_entropy(zelda_small)

    def test_smooth_better_than_texture(self, zelda_small, mandrill_small):
        codec = SlpCodec()
        assert codec.bits_per_pixel(zelda_small) < codec.bits_per_pixel(mandrill_small)


class TestErrors:
    def test_bit_depth_mismatch(self):
        image = GrayImage(2, 2, [0, 1, 2, 3], bit_depth=2)
        with pytest.raises(ConfigError):
            SlpCodec().encode(image)

    def test_decoding_foreign_stream_rejected(self, tiny_image):
        from repro.baselines.jpegls import JpegLsCodec

        stream = JpegLsCodec().encode(tiny_image)
        with pytest.raises(CodecMismatchError):
            SlpCodec().decode(stream)
