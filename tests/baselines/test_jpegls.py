"""Tests for the JPEG-LS (LOCO-I) baseline."""

import pytest

from repro.baselines.jpegls import JpegLsCodec, JpegLsParameters, _context_index, _med_predict, _quantize_gradient
from repro.exceptions import CodecMismatchError, ConfigError
from repro.imaging.image import GrayImage
from repro.imaging.metrics import first_order_entropy


class TestComponents:
    def test_med_predictor_edges(self):
        # Horizontal edge: c >= max(a, b) -> min(a, b).
        assert _med_predict(10, 50, 60) == 10
        # Vertical edge: c <= min(a, b) -> max(a, b).
        assert _med_predict(10, 50, 5) == 50
        # Smooth area: plane prediction.
        assert _med_predict(10, 50, 30) == 30

    def test_gradient_quantiser_is_symmetric(self):
        params = JpegLsParameters()
        for value in range(-255, 256):
            assert _quantize_gradient(-value, params) == -_quantize_gradient(value, params)

    def test_gradient_quantiser_levels(self):
        params = JpegLsParameters()
        assert _quantize_gradient(0, params) == 0
        assert _quantize_gradient(1, params) == 1
        assert _quantize_gradient(3, params) == 2
        assert _quantize_gradient(7, params) == 3
        assert _quantize_gradient(21, params) == 4
        assert _quantize_gradient(-21, params) == -4

    def test_context_index_folding(self):
        index_pos, sign_pos = _context_index(1, 2, 3)
        index_neg, sign_neg = _context_index(-1, -2, -3)
        assert index_pos == index_neg
        assert sign_pos == -sign_neg

    def test_context_index_range(self):
        seen = set()
        for q1 in range(-4, 5):
            for q2 in range(-4, 5):
                for q3 in range(-4, 5):
                    if (q1, q2, q3) == (0, 0, 0):
                        continue
                    index, _ = _context_index(q1, q2, q3)
                    assert 0 <= index < 405
                    seen.add(index)
        # Exactly the standard's 364 regular contexts (the all-zero triple is
        # run mode; the folding halves the signed space).
        assert len(seen) == 364

    def test_parameter_properties(self):
        params = JpegLsParameters()
        assert params.maxval == 255
        assert params.range == 256
        assert params.limit == 32
        assert params.qbpp == 8


class TestRoundtrip:
    def test_all_standard_images(self, roundtrip_images):
        codec = JpegLsCodec()
        for image in roundtrip_images:
            stream = codec.encode(image)
            assert codec.decode(stream) == image, image.name

    def test_constant_image_uses_run_mode_efficiently(self, constant_image):
        codec = JpegLsCodec()
        stream = codec.encode(constant_image)
        assert codec.decode(stream) == constant_image
        # A constant image must compress to a tiny fraction of a bit per pixel.
        assert 8.0 * len(stream) / constant_image.pixel_count < 1.0

    def test_horizontal_stripes_trigger_runs(self):
        # Rows of constant value exercise run mode including end-of-line runs.
        rows = [[v] * 23 for v in (10, 10, 200, 200, 10, 90, 90, 90)]
        image = GrayImage.from_rows(rows)
        codec = JpegLsCodec()
        assert codec.decode(codec.encode(image)) == image

    def test_run_interrupted_mid_line(self):
        rows = [[50] * 10 + [200] + [50] * 10 for _ in range(6)]
        image = GrayImage.from_rows(rows)
        codec = JpegLsCodec()
        assert codec.decode(codec.encode(image)) == image

    def test_runs_of_every_length(self):
        # Each row has a run of a different length followed by a disturbance.
        rows = []
        for length in range(1, 17):
            row = [77] * length + [200] + [77] * (17 - length)
            rows.append(row[:17])
        image = GrayImage.from_rows(rows)
        codec = JpegLsCodec()
        assert codec.decode(codec.encode(image)) == image

    def test_single_pixel_and_single_row(self):
        codec = JpegLsCodec()
        one = GrayImage(1, 1, [99])
        assert codec.decode(codec.encode(one)) == one
        row = GrayImage(19, 1, [5] * 10 + list(range(9)))
        assert codec.decode(codec.encode(row)) == row

    def test_alternating_extremes(self):
        image = GrayImage(16, 8, [0 if (x + y) % 2 else 255 for y in range(8) for x in range(16)])
        codec = JpegLsCodec()
        assert codec.decode(codec.encode(image)) == image


class TestCompression:
    def test_beats_entropy_on_smooth_content(self, zelda_small):
        bpp = JpegLsCodec().bits_per_pixel(zelda_small)
        assert bpp < first_order_entropy(zelda_small)

    def test_text_image_compresses_strongly(self, text_image):
        assert JpegLsCodec().bits_per_pixel(text_image) < 2.0

    def test_smooth_better_than_texture(self, zelda_small, mandrill_small):
        codec = JpegLsCodec()
        assert codec.bits_per_pixel(zelda_small) < codec.bits_per_pixel(mandrill_small)


class TestErrors:
    def test_bit_depth_mismatch(self):
        image = GrayImage(2, 2, [0, 1, 2, 3], bit_depth=4)
        with pytest.raises(ConfigError):
            JpegLsCodec().encode(image)

    def test_decoding_foreign_stream_rejected(self, tiny_image):
        from repro.core.codec import ProposedCodec

        stream = ProposedCodec().encode(tiny_image)
        with pytest.raises(CodecMismatchError):
            JpegLsCodec().decode(stream)
