"""Tests for the CALIC baseline."""

import pytest

from repro.baselines.calic import CalicCodec, CalicParameters
from repro.core.neighborhood import Neighborhood
from repro.exceptions import CodecMismatchError, ConfigError
from repro.imaging.image import GrayImage
from repro.imaging.metrics import first_order_entropy


def _nb(**kwargs):
    values = dict(w=0, ww=0, n=0, nn=0, ne=0, nw=0, nne=0)
    values.update(kwargs)
    return Neighborhood(**values)


class TestModelling:
    def test_texture_pattern_has_eight_events(self):
        codec = CalicCodec()
        nb = _nb(w=10, ww=10, n=10, nn=10, ne=10, nw=10, nne=10)
        assert codec._texture_pattern(nb, predicted=200) == 0b11111111
        assert codec._texture_pattern(nb, predicted=0) == 0

    def test_second_order_events_change_the_pattern(self):
        codec = CalicCodec()
        flat = _nb(w=100, ww=100, n=100, nn=100, ne=100, nw=100, nne=100)
        # 2N - NN == 100 (not below 100); raise NN so 2N - NN drops below.
        bent = _nb(w=100, ww=100, n=100, nn=150, ne=100, nw=100, nne=100)
        assert codec._texture_pattern(flat, 100) != codec._texture_pattern(bent, 100)

    def test_prediction_in_range(self):
        codec = CalicCodec()
        prediction, dh, dv = codec._predict(_nb(w=255, ww=0, n=0, nn=255, ne=255, nw=0, nne=0))
        assert 0 <= prediction <= 255
        assert dh >= 0 and dv >= 0

    def test_flat_region_predicts_flat(self):
        codec = CalicCodec()
        prediction, _, _ = codec._predict(_nb(w=77, ww=77, n=77, nn=77, ne=77, nw=77, nne=77))
        assert prediction == 77

    def test_bias_context_count(self):
        params = CalicParameters()
        assert params.bias_contexts == 256 * 4
        assert params.coding_contexts == 8


class TestRoundtrip:
    def test_all_standard_images(self, roundtrip_images):
        codec = CalicCodec()
        for image in roundtrip_images:
            stream = codec.encode(image)
            assert codec.decode(stream) == image, image.name

    def test_non_square_geometry(self):
        image = GrayImage(11, 23, [(x * x + y) % 256 for y in range(23) for x in range(11)])
        codec = CalicCodec()
        assert codec.decode(codec.encode(image)) == image

    def test_custom_parameters(self, tiny_image):
        codec = CalicCodec(CalicParameters(model_increment=8))
        assert codec.decode(codec.encode(tiny_image)) == tiny_image


class TestCompression:
    def test_beats_entropy_on_smooth_content(self, zelda_small):
        assert CalicCodec().bits_per_pixel(zelda_small) < first_order_entropy(zelda_small)

    def test_smooth_better_than_texture(self, zelda_small, mandrill_small):
        codec = CalicCodec()
        assert codec.bits_per_pixel(zelda_small) < codec.bits_per_pixel(mandrill_small)

    def test_gradient_nearly_free(self, gradient_image):
        assert CalicCodec().bits_per_pixel(gradient_image) < 1.5


class TestErrors:
    def test_bit_depth_mismatch(self):
        image = GrayImage(2, 2, [0, 1, 2, 3], bit_depth=4)
        with pytest.raises(ConfigError):
            CalicCodec().encode(image)

    def test_decoding_foreign_stream_rejected(self, tiny_image):
        from repro.baselines.slp import SlpCodec

        stream = SlpCodec().encode(tiny_image)
        with pytest.raises(CodecMismatchError):
            CalicCodec().decode(stream)
