"""Property-based conformance of the stripe-parallel codec.

Striping must never change the bits: on every drawn image the
``ParallelCodec`` stream must equal the serial encoder's stream for the
same stripe count, and every stream must round-trip exactly.  The suites
run on the deterministic ``SerialExecutor`` so property runs do not spawn
process pools (the pool/serial equivalence has its own dedicated tests).
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st
from strategies import gray_images, planar_images

from repro.core.components import encode_planar
from repro.core.config import CodecConfig
from repro.core.decoder import decode_image
from repro.parallel.codec import ParallelCodec
from repro.parallel.executor import SerialExecutor


def _codec_for(image, cores: int, plane_delta: bool = False) -> ParallelCodec:
    return ParallelCodec(
        cores=cores,
        config=CodecConfig.hardware(bit_depth=image.bit_depth),
        executor=SerialExecutor(),
        plane_delta=plane_delta,
    )


class TestParallelGray:
    @given(image=gray_images(), cores=st.integers(min_value=1, max_value=4))
    def test_roundtrip(self, image, cores):
        codec = _codec_for(image, cores)
        stream = codec.encode(image)
        assert codec.decode(stream) == image
        # The serial reference decoder accepts striped streams too.
        assert decode_image(stream, codec.config) == image


class TestParallelPlanar:
    @given(
        image=planar_images(),
        cores=st.integers(min_value=1, max_value=4),
        plane_delta=st.booleans(),
    )
    def test_roundtrip_and_serial_byte_identity(self, image, cores, plane_delta):
        codec = _codec_for(image, cores, plane_delta)
        stream = codec.encode(image)
        assert codec.decode(stream) == image
        stripes = min(cores, image.height)
        serial = encode_planar(
            image, codec.config, stripes=stripes, plane_delta=plane_delta
        )
        assert stream == serial
