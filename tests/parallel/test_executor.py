"""Tests for the stripe execution backends."""

import pytest

from repro.parallel.executor import (
    ProcessExecutor,
    SerialExecutor,
    process_pool_available,
    resolve_executor,
)


def _square(value):
    return value * value


class TestSerialExecutor:
    def test_maps_in_order(self):
        assert SerialExecutor().map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]

    def test_empty_task_list(self):
        assert SerialExecutor().map(_square, []) == []

    def test_is_not_parallel(self):
        executor = SerialExecutor()
        assert executor.cores == 1
        assert executor.is_parallel is False


class TestProcessExecutor:
    def test_rejects_single_core(self):
        with pytest.raises(ValueError):
            ProcessExecutor(1)

    @pytest.mark.skipif(not process_pool_available(), reason="no process pool support")
    def test_maps_in_order_across_processes(self):
        assert ProcessExecutor(2).map(_square, list(range(8))) == [
            value * value for value in range(8)
        ]

    @pytest.mark.skipif(not process_pool_available(), reason="no process pool support")
    def test_matches_serial_results(self):
        tasks = list(range(5))
        assert ProcessExecutor(3).map(_square, tasks) == SerialExecutor().map(_square, tasks)


class TestResolveExecutor:
    def test_one_core_is_serial(self):
        assert isinstance(resolve_executor(1), SerialExecutor)

    def test_none_uses_available_cpus(self):
        executor = resolve_executor(None)
        assert executor.cores >= 1

    def test_many_cores_prefers_a_pool_when_available(self):
        executor = resolve_executor(4)
        if process_pool_available():
            assert isinstance(executor, ProcessExecutor)
            assert executor.cores == 4
        else:
            assert isinstance(executor, SerialExecutor)
