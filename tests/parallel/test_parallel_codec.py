"""Tests for the stripe-parallel codec facade."""

import pytest

from repro.core.bitstream import unpack_stream
from repro.core.codec import ProposedCodec
from repro.core.config import CodecConfig
from repro.core.decoder import decode_image
from repro.exceptions import BitstreamError, CodecMismatchError, ConfigError
from repro.imaging.image import GrayImage
from repro.imaging.synthetic import generate_image
from repro.parallel import ParallelCodec, SerialExecutor, process_pool_available


@pytest.fixture(scope="module")
def image():
    return generate_image("lena", size=48)


class TestRoundTrip:
    @pytest.mark.parametrize("cores", [1, 2, 4, 8])
    def test_bit_exact_roundtrip(self, image, cores):
        codec = ParallelCodec(cores=cores)
        assert codec.decode(codec.encode(image)) == image

    def test_more_cores_than_rows(self):
        image = GrayImage(16, 4, [(x * 7 + y * 13) % 256 for y in range(4) for x in range(16)])
        codec = ParallelCodec(cores=64)
        stream = codec.encode(image)
        header, _ = unpack_stream(stream)
        assert header.stripe_count == image.height  # clamped, one row per stripe
        assert codec.decode(stream) == image

    def test_single_row_image(self):
        image = GrayImage(16, 1, list(range(16)))
        codec = ParallelCodec(cores=4)
        stream = codec.encode(image)
        header, _ = unpack_stream(stream)
        assert header.stripe_count == 1
        assert codec.decode(stream) == image

    def test_reference_configuration(self, image):
        codec = ParallelCodec(cores=3, config=CodecConfig.reference())
        assert codec.decode(codec.encode(image)) == image


class TestDeterminism:
    def test_parallel_stream_is_byte_identical_to_serial(self, image):
        serial = ParallelCodec(cores=4, executor=SerialExecutor()).encode(image)
        parallel = ParallelCodec(cores=4).encode(image)
        assert serial == parallel

    def test_stream_depends_on_stripe_count_not_executor(self, image):
        two = ParallelCodec(cores=2, executor=SerialExecutor()).encode(image)
        four = ParallelCodec(cores=4, executor=SerialExecutor()).encode(image)
        assert two != four

    @pytest.mark.skipif(not process_pool_available(), reason="no process pool support")
    def test_parallel_decode_matches_serial_decode(self, image):
        stream = ParallelCodec(cores=4).encode(image)
        assert ParallelCodec(cores=4).decode(stream) == decode_image(stream)


class TestInterop:
    def test_serial_codec_stream_decodes_in_parallel_codec(self, image):
        stream = ProposedCodec().encode(image)  # version-1 container
        assert ParallelCodec(cores=4).decode(stream) == image

    def test_striped_stream_decodes_in_serial_decoder(self, image):
        stream = ParallelCodec(cores=4).encode(image)
        assert decode_image(stream) == image
        assert ProposedCodec().decode(stream) == image

    def test_single_stripe_stream_still_uses_striped_container(self, image):
        stream = ParallelCodec(cores=1).encode(image)
        header, _ = unpack_stream(stream)
        assert header.version == 2
        assert header.stripe_count == 1

    def test_statistics_are_aggregated(self, image):
        codec = ParallelCodec(cores=4, executor=SerialExecutor())
        stream = codec.encode(image)
        stats = codec.last_statistics
        assert stats is not None
        assert stats.total_bytes == len(stream)
        assert stats.payload_bytes == sum(unpack_stream(stream)[0].stripe_lengths)
        assert stats.binary_decisions > 0


class TestValidation:
    def test_rejects_non_positive_cores(self):
        with pytest.raises(ConfigError):
            ParallelCodec(cores=0)

    def test_bit_depth_mismatch(self, image):
        codec = ParallelCodec(cores=2, config=CodecConfig.hardware(bit_depth=12))
        with pytest.raises(ConfigError):
            codec.encode(image)

    def test_config_mismatch_on_decode(self, image):
        stream = ParallelCodec(cores=2).encode(image)
        strict = ParallelCodec(cores=2, config=CodecConfig.hardware(count_bits=10))
        with pytest.raises(CodecMismatchError):
            strict.decode(stream)

    def test_truncated_striped_stream(self, image):
        stream = ParallelCodec(cores=2).encode(image)
        with pytest.raises(BitstreamError):
            ParallelCodec(cores=2).decode(stream[:-5])

    def test_corrupt_stripe_table_detected(self, image):
        stream = bytearray(ParallelCodec(cores=2).encode(image))
        # First stripe-length entry lives right after the 21-byte fixed
        # header and the 2-byte stripe count; bump it so the table no longer
        # sums to the declared payload length.
        stream[26] ^= 0x01
        with pytest.raises(BitstreamError):
            ParallelCodec(cores=2).decode(bytes(stream))
