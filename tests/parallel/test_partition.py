"""Tests for the balanced stripe partitioner."""

import pytest

from repro.exceptions import StripingError
from repro.imaging.synthetic import generate_image
from repro.parallel.partition import extract_stripe, plan_for_cores, plan_stripes


class TestPlanStripes:
    def test_even_split(self):
        plan = plan_stripes(64, 4)
        assert [spec.row_count for spec in plan] == [16, 16, 16, 16]
        assert [spec.start_row for spec in plan] == [0, 16, 32, 48]

    def test_remainder_rows_go_to_the_first_stripes(self):
        plan = plan_stripes(10, 3)
        assert [spec.row_count for spec in plan] == [4, 3, 3]
        assert plan[-1].stop_row == 10

    def test_balanced_heights_differ_by_at_most_one(self):
        for height in (7, 33, 100, 257):
            for stripes in (1, 2, 3, 5, 7):
                rows = [spec.row_count for spec in plan_stripes(height, stripes)]
                assert sum(rows) == height
                assert max(rows) - min(rows) <= 1

    def test_contiguous_cover(self):
        plan = plan_stripes(37, 5)
        position = 0
        for spec in plan:
            assert spec.start_row == position
            position = spec.stop_row
        assert position == 37

    def test_single_row_stripes(self):
        plan = plan_stripes(6, 6)
        assert [spec.row_count for spec in plan] == [1] * 6

    def test_invalid_requests(self):
        with pytest.raises(StripingError):
            plan_stripes(0, 1)
        with pytest.raises(StripingError):
            plan_stripes(8, 0)
        with pytest.raises(StripingError):
            plan_stripes(4, 5)


class TestPlanForCores:
    def test_clamps_to_height(self):
        plan = plan_for_cores(3, 8)
        assert len(plan) == 3
        assert [spec.row_count for spec in plan] == [1, 1, 1]

    def test_matches_plan_stripes_when_feasible(self):
        assert plan_for_cores(64, 4) == plan_stripes(64, 4)

    def test_rejects_non_positive_cores(self):
        with pytest.raises(StripingError):
            plan_for_cores(8, 0)


class TestExtractStripe:
    def test_stripes_reassemble_to_the_image(self):
        image = generate_image("boat", size=32)
        rows = []
        for spec in plan_stripes(image.height, 5):
            stripe = extract_stripe(image, spec)
            assert stripe.width == image.width
            assert stripe.height == spec.row_count
            for y in range(stripe.height):
                rows.append(stripe.row(y))
        flat = [value for row in rows for value in row]
        assert flat == image.pixels()

    def test_out_of_range_spec_rejected(self):
        from repro.parallel.partition import StripeSpec

        image = generate_image("boat", size=16)
        with pytest.raises(StripingError):
            extract_stripe(image, StripeSpec(index=0, start_row=10, row_count=10))
