"""Shared hypothesis strategies for the property-based conformance suite.

One strategy module feeds the core, fast and parallel property tests so the
three suites draw from the same input distribution: images over every
geometry the stripe partitioner accepts, bit depths 1-12, and four content
families (constant, gradient, noise, texture) that exercise different codec
mechanisms — run modes and escapes, smooth prediction, incompressible
content and oriented structure respectively.

Sizes are kept deliberately small (the codecs are pure Python); the content
is generated through a numpy generator seeded from a drawn integer, so every
example is fully determined by the draw and therefore shrinkable and
replayable by hypothesis.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.imaging.image import GrayImage
from repro.imaging.planar import PlanarImage

__all__ = ["gray_images", "planar_images", "CONTENT_KINDS", "MAX_PROPERTY_BIT_DEPTH"]

#: The content families the image strategies draw from.
CONTENT_KINDS = ("constant", "gradient", "noise", "texture")

#: Property tests sweep depths 1-12: the interesting hardware range, while
#: keeping the per-example alphabet (and thus runtime) bounded.
MAX_PROPERTY_BIT_DEPTH = 12


def _content_array(
    kind: str, width: int, height: int, max_value: int, seed: int
) -> np.ndarray:
    """Deterministic (H, W) sample array for one drawn content family."""
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:height, 0:width]
    if kind == "constant":
        return np.full((height, width), int(rng.integers(0, max_value + 1)))
    if kind == "gradient":
        angle = rng.uniform(0.0, 2.0 * np.pi)
        ramp = xs * np.cos(angle) + ys * np.sin(angle)
        span = np.ptp(ramp)
        if span == 0.0:
            return np.full((height, width), max_value // 2)
        return np.rint((ramp - ramp.min()) / span * max_value).astype(np.int64)
    if kind == "noise":
        return rng.integers(0, max_value + 1, size=(height, width))
    # texture: an oriented carrier plus mild noise, quantised to range.
    angle = rng.uniform(0.0, np.pi)
    frequency = rng.uniform(1.0, 6.0)
    phase = rng.uniform(0.0, 2.0 * np.pi)
    carrier = np.sin(
        2.0 * np.pi * frequency * (xs * np.cos(angle) + ys * np.sin(angle))
        / max(width, height)
        + phase
    )
    noisy = (carrier + 1.0) / 2.0 + rng.normal(0.0, 0.08, size=(height, width))
    return np.clip(np.rint(noisy * max_value), 0, max_value).astype(np.int64)


@st.composite
def gray_images(
    draw,
    min_side: int = 1,
    max_side: int = 18,
    min_bit_depth: int = 1,
    max_bit_depth: int = MAX_PROPERTY_BIT_DEPTH,
):
    """Draw a :class:`GrayImage` over geometry, depth and content families."""
    width = draw(st.integers(min_value=min_side, max_value=max_side))
    height = draw(st.integers(min_value=min_side, max_value=max_side))
    bit_depth = draw(st.integers(min_value=min_bit_depth, max_value=max_bit_depth))
    kind = draw(st.sampled_from(CONTENT_KINDS))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    array = _content_array(kind, width, height, (1 << bit_depth) - 1, seed)
    return GrayImage(
        width,
        height,
        array.reshape(-1).tolist(),
        bit_depth,
        name="%s-%dx%d-d%d" % (kind, width, height, bit_depth),
    )


@st.composite
def planar_images(
    draw,
    min_side: int = 1,
    max_side: int = 12,
    max_planes: int = 4,
    min_bit_depth: int = 1,
    max_bit_depth: int = MAX_PROPERTY_BIT_DEPTH,
):
    """Draw a :class:`PlanarImage` of 1-``max_planes`` correlated planes.

    Planes beyond the first perturb the first plane's content (correlated,
    like real colour planes) or draw a fresh family (decorrelated), so both
    regimes of the inter-plane predictor are exercised.
    """
    width = draw(st.integers(min_value=min_side, max_value=max_side))
    height = draw(st.integers(min_value=min_side, max_value=max_side))
    bit_depth = draw(st.integers(min_value=min_bit_depth, max_value=max_bit_depth))
    plane_count = draw(st.integers(min_value=1, max_value=max_planes))
    max_value = (1 << bit_depth) - 1

    base_kind = draw(st.sampled_from(CONTENT_KINDS))
    base_seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    base = _content_array(base_kind, width, height, max_value, base_seed)
    planes = [base]
    for index in range(1, plane_count):
        correlated = draw(st.booleans())
        seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
        if correlated:
            rng = np.random.default_rng(seed)
            jitter = rng.integers(-2, 3, size=(height, width))
            planes.append(np.clip(base + jitter, 0, max_value))
        else:
            kind = draw(st.sampled_from(CONTENT_KINDS))
            planes.append(_content_array(kind, width, height, max_value, seed))
    return PlanarImage(
        [
            GrayImage(width, height, plane.reshape(-1).tolist(), bit_depth)
            for plane in planes
        ],
        name="%s-%dx%dx%d-d%d" % (base_kind, width, height, plane_count, bit_depth),
    )
