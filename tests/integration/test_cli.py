"""Integration tests for the command-line entry points."""

import pytest

from repro.cli import bench_main, compress_main, decompress_main
from repro.imaging.pnm import read_pgm, write_pgm
from repro.imaging.synthetic import generate_image


@pytest.fixture()
def pgm_path(tmp_path):
    image = generate_image("boat", size=32)
    path = tmp_path / "input.pgm"
    write_pgm(image, path)
    return path, image


class TestCompressDecompress:
    @pytest.mark.parametrize("codec", ["proposed", "jpeg-ls", "slp", "calic"])
    def test_image_roundtrip_via_cli(self, tmp_path, pgm_path, codec):
        path, image = pgm_path
        compressed = tmp_path / "out.rplc"
        restored = tmp_path / "restored.pgm"
        assert compress_main([str(path), str(compressed), "--codec", codec]) == 0
        assert compressed.exists() and compressed.stat().st_size > 0
        assert decompress_main([str(compressed), str(restored)]) == 0
        assert read_pgm(restored) == image

    def test_proposed_with_custom_count_bits(self, tmp_path, pgm_path):
        path, image = pgm_path
        compressed = tmp_path / "out.rplc"
        restored = tmp_path / "restored.pgm"
        assert compress_main([str(path), str(compressed), "--count-bits", "10"]) == 0
        assert decompress_main([str(compressed), str(restored)]) == 0
        assert read_pgm(restored) == image

    def test_data_mode_roundtrip(self, tmp_path):
        source = tmp_path / "telemetry.txt"
        source.write_bytes(b"frame %d OK\n" * 1 % 0 + b"payload " * 500)
        compressed = tmp_path / "telemetry.rplc"
        restored = tmp_path / "restored.bin"
        assert compress_main([str(source), str(compressed), "--data", "--order", "2"]) == 0
        assert decompress_main([str(compressed), str(restored)]) == 0
        assert restored.read_bytes() == source.read_bytes()

    def test_missing_input_reports_error(self, tmp_path):
        assert compress_main([str(tmp_path / "missing.pgm"), str(tmp_path / "out.rplc")]) == 1

    def test_corrupt_container_reports_error(self, tmp_path):
        bad = tmp_path / "bad.rplc"
        bad.write_bytes(b"not a container at all")
        assert decompress_main([str(bad), str(tmp_path / "out.pgm")]) == 1


class TestParallelCores:
    @pytest.mark.parametrize("cores", [1, 3])
    def test_striped_roundtrip_via_cli(self, tmp_path, pgm_path, cores):
        path, image = pgm_path
        compressed = tmp_path / "out.rplc"
        restored = tmp_path / "restored.pgm"
        assert compress_main([str(path), str(compressed), "--cores", str(cores)]) == 0
        assert decompress_main([str(compressed), str(restored), "--cores", str(cores)]) == 0
        assert read_pgm(restored) == image

    def test_striped_stream_decodes_without_cores_flag(self, tmp_path, pgm_path):
        path, image = pgm_path
        compressed = tmp_path / "out.rplc"
        restored = tmp_path / "restored.pgm"
        assert compress_main([str(path), str(compressed), "--cores", "4"]) == 0
        assert decompress_main([str(compressed), str(restored)]) == 0
        assert read_pgm(restored) == image

    def test_cores_rejected_for_baseline_codecs(self, tmp_path, pgm_path):
        path, _ = pgm_path
        with pytest.raises(SystemExit):
            compress_main([str(path), str(tmp_path / "o.rplc"), "--codec", "slp", "--cores", "2"])

    def test_cores_rejected_for_data_mode(self, tmp_path):
        source = tmp_path / "blob.bin"
        source.write_bytes(b"x" * 64)
        with pytest.raises(SystemExit):
            compress_main([str(source), str(tmp_path / "o.rplc"), "--data", "--cores", "2"])


class TestErrorReporting:
    def test_header_error_is_one_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.rplc"
        bad.write_bytes(b"RP")
        assert decompress_main([str(bad), str(tmp_path / "out.pgm")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("HeaderError: ")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_truncated_payload_is_one_line_bitstream_error(self, tmp_path, pgm_path, capsys):
        path, _ = pgm_path
        compressed = tmp_path / "out.rplc"
        assert compress_main([str(path), str(compressed)]) == 0
        data = compressed.read_bytes()
        compressed.write_bytes(data[: len(data) // 2])
        assert decompress_main([str(compressed), str(tmp_path / "out.pgm")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("BitstreamError: ")
        assert len(err.strip().splitlines()) == 1

    def test_corrupt_header_dimensions_do_not_hang(self, tmp_path, pgm_path, capsys):
        # A corrupted height field used to make the decoder chew through an
        # endless supply of phantom zero bits; it must now exit non-zero with
        # a one-line BitstreamError/HeaderError message.
        path, _ = pgm_path
        compressed = tmp_path / "out.rplc"
        assert compress_main([str(path), str(compressed)]) == 0
        data = bytearray(compressed.read_bytes())
        data[10] = 0x7F  # height ~= 2 billion rows
        compressed.write_bytes(bytes(data))
        assert decompress_main([str(compressed), str(tmp_path / "out.pgm")]) == 1
        err = capsys.readouterr().err
        assert err.splitlines()[0].split(":")[0] in ("BitstreamError", "HeaderError")


class TestBench:
    def test_table2_runs(self, capsys):
        assert bench_main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "Published Table 2" in output

    def test_throughput_runs(self, capsys):
        assert bench_main(["throughput", "--size", "32"]) == 0
        assert "Mbit/s" in capsys.readouterr().out

    def test_figure4_runs_small(self, capsys):
        assert bench_main(["figure4", "--size", "32"]) == 0
        assert "Frequency bits" in capsys.readouterr().out

    def test_engines_runs_small(self, capsys):
        assert bench_main(["engines", "--size", "32"]) == 0
        output = capsys.readouterr().out
        assert "aggregate encode speedup" in output

    def test_multiple_experiments_in_one_run(self, capsys):
        assert bench_main(["table2", "throughput", "--size", "32"]) == 0
        output = capsys.readouterr().out
        assert "Published Table 2" in output
        assert "Mbit/s" in output

    def test_json_output(self, tmp_path, capsys):
        import json

        json_path = tmp_path / "BENCH_cli.json"
        assert bench_main(["throughput", "--size", "32", "--json", str(json_path)]) == 0
        document = json.loads(json_path.read_text())
        assert document["schema"] == 1
        throughput = document["experiments"]["throughput"]
        assert throughput["status"] == "ok"
        assert set(throughput["mb_per_s"]) == {"reference", "fast"}
        assert all(rate > 0 for rate in throughput["mb_per_s"].values())

    def test_failing_experiment_writes_partial_results(self, tmp_path, capsys):
        # size=4 makes throughput raise; table2 must still run, the JSON must
        # still be written, and the exit status must be non-zero.
        import json

        json_path = tmp_path / "BENCH_partial.json"
        assert bench_main(["table2", "throughput", "--size", "4", "--json", str(json_path)]) == 1
        captured = capsys.readouterr()
        assert "Published Table 2" in captured.out
        assert "ConfigError" in captured.err
        assert "1 of 2 experiments failed: throughput" in captured.err
        document = json.loads(json_path.read_text())
        assert document["experiments"]["table2"]["status"] == "ok"
        assert document["experiments"]["throughput"]["status"] == "error"
        assert "ConfigError" in document["experiments"]["throughput"]["error"]


class TestEngineFlag:
    def test_fast_engine_stream_is_byte_identical(self, tmp_path, pgm_path):
        path, _ = pgm_path
        reference = tmp_path / "reference.rplc"
        fast = tmp_path / "fast.rplc"
        assert compress_main([str(path), str(reference)]) == 0
        assert compress_main([str(path), str(fast), "--engine", "fast"]) == 0
        assert fast.read_bytes() == reference.read_bytes()

    @pytest.mark.parametrize("cores", [None, 2])
    def test_fast_engine_roundtrip_via_cli(self, tmp_path, pgm_path, cores):
        path, image = pgm_path
        compressed = tmp_path / "out.rplc"
        restored = tmp_path / "restored.pgm"
        encode_args = [str(path), str(compressed), "--engine", "fast"]
        decode_args = [str(compressed), str(restored), "--engine", "fast"]
        if cores is not None:
            encode_args += ["--cores", str(cores)]
            decode_args += ["--cores", str(cores)]
        assert compress_main(encode_args) == 0
        assert decompress_main(decode_args) == 0
        assert read_pgm(restored) == image

    def test_engine_rejected_for_baseline_codecs(self, tmp_path, pgm_path):
        path, _ = pgm_path
        with pytest.raises(SystemExit):
            compress_main(
                [str(path), str(tmp_path / "o.rplc"), "--codec", "calic", "--engine", "fast"]
            )

    def test_engine_rejected_for_data_mode(self, tmp_path):
        source = tmp_path / "blob.bin"
        source.write_bytes(b"y" * 64)
        with pytest.raises(SystemExit):
            compress_main([str(source), str(tmp_path / "o.rplc"), "--data", "--engine", "fast"])


@pytest.fixture()
def ppm_path(tmp_path):
    from repro.imaging.pnm import write_ppm
    from repro.imaging.synthetic import generate_planar_image

    image = generate_planar_image("peppers", size=24)
    path = tmp_path / "input.ppm"
    write_ppm(image, path)
    return path, image


class TestMultiComponent:
    def test_ppm_roundtrip_via_cli(self, tmp_path, ppm_path):
        from repro.imaging.pnm import read_ppm

        path, image = ppm_path
        compressed = tmp_path / "out.rplc"
        restored = tmp_path / "restored.ppm"
        assert compress_main([str(path), str(compressed)]) == 0
        assert decompress_main([str(compressed), str(restored)]) == 0
        assert read_ppm(restored) == image

    def test_ppm_streams_byte_identical_across_engines_and_cores(self, tmp_path, ppm_path):
        path, _ = ppm_path
        outputs = {}
        for label, extra in (
            ("reference", []),
            ("fast", ["--engine", "fast"]),
            ("cores", ["--cores", "1"]),
        ):
            target = tmp_path / ("%s.rplc" % label)
            assert compress_main([str(path), str(target)] + extra) == 0
            outputs[label] = target.read_bytes()
        assert outputs["fast"] == outputs["reference"] == outputs["cores"]

    def test_plane_delta_roundtrip_and_smaller_streams(self, tmp_path, ppm_path):
        from repro.imaging.pnm import read_ppm

        path, image = ppm_path
        independent = tmp_path / "independent.rplc"
        delta = tmp_path / "delta.rplc"
        restored = tmp_path / "restored.ppm"
        assert compress_main([str(path), str(independent)]) == 0
        assert compress_main([str(path), str(delta), "--plane-delta"]) == 0
        assert delta.stat().st_size < independent.stat().st_size
        assert decompress_main([str(delta), str(restored)]) == 0
        assert read_ppm(restored) == image

    def test_pam_roundtrip_via_cli(self, tmp_path):
        from repro.imaging.pnm import read_pam, write_pam
        from repro.imaging.synthetic import generate_planar_image

        image = generate_planar_image("barb", size=20, planes=4)
        source = tmp_path / "input.pam"
        write_pam(image, source)
        compressed = tmp_path / "out.rplc"
        restored = tmp_path / "restored.pam"
        assert compress_main([str(source), str(compressed), "--plane-delta"]) == 0
        assert decompress_main([str(compressed), str(restored)]) == 0
        assert read_pam(restored) == image

    def test_planar_rejected_for_baseline_codecs(self, tmp_path, ppm_path, capsys):
        path, _ = ppm_path
        assert compress_main([str(path), str(tmp_path / "o.rplc"), "--codec", "slp"]) == 1
        assert "grey-scale" in capsys.readouterr().err

    def test_plane_delta_rejected_for_data_mode(self, tmp_path):
        source = tmp_path / "blob.bin"
        source.write_bytes(b"z" * 32)
        with pytest.raises(SystemExit):
            compress_main([str(source), str(tmp_path / "o.rplc"), "--data", "--plane-delta"])

    def test_components_bench_runs(self, capsys):
        assert bench_main(["components", "--size", "24"]) == 0
        output = capsys.readouterr().out
        assert "inter-plane predictor saving" in output


class TestInspect:
    def test_inspect_v3_stream(self, tmp_path, ppm_path, capsys):
        from repro.cli import inspect_main

        path, _ = ppm_path
        compressed = tmp_path / "out.rplc"
        assert compress_main([str(path), str(compressed), "--cores", "2", "--plane-delta"]) == 0
        assert inspect_main([str(compressed)]) == 0
        output = capsys.readouterr().out
        assert "version 3" in output
        assert "plane-delta=yes" in output
        assert output.count("\n") >= 7 + 6  # header block + 3 planes x 2 stripes

    def test_inspect_json(self, tmp_path, ppm_path, capsys):
        import json

        from repro.cli import inspect_main

        path, _ = ppm_path
        compressed = tmp_path / "out.rplc"
        assert compress_main([str(path), str(compressed)]) == 0
        capsys.readouterr()  # drop the compressor's report line
        assert inspect_main([str(compressed), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 3
        assert document["component_count"] == 3
        assert len(document["entries"]) == 3
        assert all(entry["crc"] for entry in document["entries"])

    def test_inspect_v1_stream(self, tmp_path, pgm_path, capsys):
        from repro.cli import inspect_main

        path, _ = pgm_path
        compressed = tmp_path / "out.rplc"
        assert compress_main([str(path), str(compressed)]) == 0
        assert inspect_main([str(compressed)]) == 0
        assert "version 1" in capsys.readouterr().out

    def test_inspect_corrupt_container_reports_error(self, tmp_path, capsys):
        from repro.cli import inspect_main

        bad = tmp_path / "bad.rplc"
        bad.write_bytes(b"not a container")
        assert inspect_main([str(bad)]) == 1
        assert capsys.readouterr().err.startswith("HeaderError: ")


class TestVersionFlag:
    def test_every_console_script_reports_the_package_version(self, capsys):
        from repro import __version__
        from repro.cli import inspect_main, package_version
        from repro.serve.cli import serve_main
        from repro.store.cli import store_main

        assert package_version() == __version__
        entry_points = {
            "repro-compress": compress_main,
            "repro-decompress": decompress_main,
            "repro-bench": bench_main,
            "repro-inspect": inspect_main,
            "repro-store": store_main,
            "repro-serve": serve_main,
        }
        for prog, main in entry_points.items():
            with pytest.raises(SystemExit) as excinfo:
                main(["--version"])
            assert excinfo.value.code == 0
            out = capsys.readouterr().out
            assert prog in out and __version__ in out


class TestStoreCli:
    def test_put_get_regions_stats_workflow(self, tmp_path, ppm_path, capsys):
        from repro.imaging.pnm import read_image
        from repro.store.cli import store_main

        path, image = ppm_path
        store = tmp_path / "store"
        assert store_main(["put", str(store), str(path), "--stripes", "4"]) == 0
        key = capsys.readouterr().out.strip()
        assert len(key) == 64

        restored = tmp_path / "full.ppm"
        assert store_main(["get", str(store), key, str(restored)]) == 0
        capsys.readouterr()
        assert read_image(str(restored)) == image

        plane = tmp_path / "plane.pgm"
        assert store_main(["get", str(store), key, str(plane), "--plane", "1"]) == 0
        capsys.readouterr()
        assert read_image(str(plane)) == image.plane(1)

        region = tmp_path / "region.ppm"
        assert (
            store_main(["get", str(store), key, str(region), "--region", "1:3"]) == 0
        )
        capsys.readouterr()
        assert read_image(str(region)).num_planes == 3

        assert store_main(["regions", str(store), key, "0:2", "1:4", "0:2"]) == 0
        out = capsys.readouterr().out
        assert out.count("stripes [") == 3
        assert "cache:" in out

        assert store_main(["stats", str(store)]) == 0
        import json

        document = json.loads(capsys.readouterr().out)
        assert document["backend"]["blobs"] == 1
        assert document["backend"]["kind"] == "FilesystemBackend"

    def test_sqlite_store_roundtrip(self, tmp_path, pgm_path, capsys):
        from repro.imaging.pnm import read_image
        from repro.store.cli import store_main

        path, image = pgm_path
        store = tmp_path / "corpus.sqlite"
        assert store_main(["put", str(store), str(path)]) == 0
        key = capsys.readouterr().out.strip()
        restored = tmp_path / "restored.pgm"
        assert store_main(["get", str(store), key, str(restored)]) == 0
        assert read_image(str(restored)) == image

    def test_regions_out_dir_writes_images(self, tmp_path, ppm_path, capsys):
        from repro.store.cli import store_main

        path, _ = ppm_path
        store = tmp_path / "store"
        assert store_main(["put", str(store), str(path), "--stripes", "4"]) == 0
        key = capsys.readouterr().out.strip()
        out_dir = tmp_path / "regions"
        assert (
            store_main(["regions", str(store), key, "0:1", "2:4", "--out", str(out_dir)])
            == 0
        )
        assert len(list(out_dir.iterdir())) == 2

    def test_unknown_key_reports_one_line_error(self, tmp_path, capsys):
        from repro.store.cli import store_main

        store = tmp_path / "store"
        store.mkdir()
        missing = "0" * 64
        assert store_main(["get", str(store), missing, str(tmp_path / "x.pgm")]) == 1
        assert capsys.readouterr().err.startswith("BlobNotFoundError: ")

    def test_bad_region_spec_is_a_usage_error(self, tmp_path, capsys):
        from repro.store.cli import store_main

        with pytest.raises(SystemExit) as excinfo:
            store_main(["regions", str(tmp_path / "store"), "k" * 64, "nonsense"])
        assert excinfo.value.code == 2
