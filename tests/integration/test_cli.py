"""Integration tests for the command-line entry points."""

import pytest

from repro.cli import bench_main, compress_main, decompress_main
from repro.imaging.pnm import read_pgm, write_pgm
from repro.imaging.synthetic import generate_image


@pytest.fixture()
def pgm_path(tmp_path):
    image = generate_image("boat", size=32)
    path = tmp_path / "input.pgm"
    write_pgm(image, path)
    return path, image


class TestCompressDecompress:
    @pytest.mark.parametrize("codec", ["proposed", "jpeg-ls", "slp", "calic"])
    def test_image_roundtrip_via_cli(self, tmp_path, pgm_path, codec):
        path, image = pgm_path
        compressed = tmp_path / "out.rplc"
        restored = tmp_path / "restored.pgm"
        assert compress_main([str(path), str(compressed), "--codec", codec]) == 0
        assert compressed.exists() and compressed.stat().st_size > 0
        assert decompress_main([str(compressed), str(restored)]) == 0
        assert read_pgm(restored) == image

    def test_proposed_with_custom_count_bits(self, tmp_path, pgm_path):
        path, image = pgm_path
        compressed = tmp_path / "out.rplc"
        restored = tmp_path / "restored.pgm"
        assert compress_main([str(path), str(compressed), "--count-bits", "10"]) == 0
        assert decompress_main([str(compressed), str(restored)]) == 0
        assert read_pgm(restored) == image

    def test_data_mode_roundtrip(self, tmp_path):
        source = tmp_path / "telemetry.txt"
        source.write_bytes(b"frame %d OK\n" * 1 % 0 + b"payload " * 500)
        compressed = tmp_path / "telemetry.rplc"
        restored = tmp_path / "restored.bin"
        assert compress_main([str(source), str(compressed), "--data", "--order", "2"]) == 0
        assert decompress_main([str(compressed), str(restored)]) == 0
        assert restored.read_bytes() == source.read_bytes()

    def test_missing_input_reports_error(self, tmp_path):
        assert compress_main([str(tmp_path / "missing.pgm"), str(tmp_path / "out.rplc")]) == 1

    def test_corrupt_container_reports_error(self, tmp_path):
        bad = tmp_path / "bad.rplc"
        bad.write_bytes(b"not a container at all")
        assert decompress_main([str(bad), str(tmp_path / "out.pgm")]) == 1


class TestBench:
    def test_table2_runs(self, capsys):
        assert bench_main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "Published Table 2" in output

    def test_throughput_runs(self, capsys):
        assert bench_main(["throughput", "--size", "32"]) == 0
        assert "Mbit/s" in capsys.readouterr().out

    def test_figure4_runs_small(self, capsys):
        assert bench_main(["figure4", "--size", "32"]) == 0
        assert "Frequency bits" in capsys.readouterr().out
