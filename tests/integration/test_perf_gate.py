"""Unit tests for the CI performance-regression gate comparator."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" / "compare_baseline.py"
_SPEC = importlib.util.spec_from_file_location("compare_baseline", _SCRIPT)
compare_baseline = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_baseline)


def _doc(bpp=None, mb_per_s=None, status="ok", error=None):
    entry = {"status": status, "bpp": bpp or {}, "mb_per_s": mb_per_s or {}}
    if error is not None:
        entry["error"] = error
    return {"schema": 1, "experiments": {"engines": entry}}


class TestCompare:
    def test_identical_run_passes(self):
        baseline = _doc(bpp={"lena": 5.25}, mb_per_s={"lena/fast": 1.0})
        assert compare_baseline.compare(baseline, baseline, 0.25) == []

    def test_any_bpp_change_fails(self):
        baseline = _doc(bpp={"lena": 5.25})
        current = _doc(bpp={"lena": 5.2500001})
        problems = compare_baseline.compare(baseline, current, 0.25)
        assert len(problems) == 1
        assert "bpp[lena] changed" in problems[0]

    def test_throughput_within_tolerance_passes(self):
        baseline = _doc(mb_per_s={"lena/fast": 1.0})
        current = _doc(mb_per_s={"lena/fast": 0.80})
        assert compare_baseline.compare(baseline, current, 0.25) == []

    def test_throughput_regression_fails(self):
        baseline = _doc(mb_per_s={"lena/fast": 1.0})
        current = _doc(mb_per_s={"lena/fast": 0.70})
        problems = compare_baseline.compare(baseline, current, 0.25)
        assert len(problems) == 1
        assert "regressed" in problems[0]

    def test_throughput_improvement_passes(self):
        baseline = _doc(mb_per_s={"lena/fast": 1.0})
        current = _doc(mb_per_s={"lena/fast": 10.0})
        assert compare_baseline.compare(baseline, current, 0.25) == []

    def test_uniformly_slower_runner_passes_via_normalisation(self):
        # A runner 10x slower than the baseline machine must not trip the
        # gate: rates are normalised by each run's reference-engine anchor.
        baseline = _doc(mb_per_s={"lena/reference": 1.0, "lena/fast": 4.0})
        current = _doc(mb_per_s={"lena/reference": 0.1, "lena/fast": 0.4})
        assert compare_baseline.compare(baseline, current, 0.25) == []

    def test_fast_engine_regression_fails_despite_normalisation(self):
        # Same machine speed (anchor unchanged) but the fast engine halved.
        baseline = _doc(mb_per_s={"lena/reference": 1.0, "lena/fast": 4.0})
        current = _doc(mb_per_s={"lena/reference": 1.0, "lena/fast": 2.0})
        problems = compare_baseline.compare(baseline, current, 0.25)
        assert len(problems) == 1
        assert "lena/fast" in problems[0] and "x reference" in problems[0]

    def test_unanchored_experiment_falls_back_to_absolute(self):
        baseline = _doc(mb_per_s={"lena/fast": 1.0})
        current = _doc(mb_per_s={"lena/fast": 0.5})
        problems = compare_baseline.compare(baseline, current, 0.25)
        assert len(problems) == 1 and "MB/s" in problems[0]

    def test_missing_experiment_fails(self):
        baseline = _doc(bpp={"lena": 5.25})
        current = {"schema": 1, "experiments": {}}
        problems = compare_baseline.compare(baseline, current, 0.25)
        assert problems and "missing" in problems[0]

    def test_errored_current_run_fails(self):
        baseline = _doc(bpp={"lena": 5.25})
        current = _doc(status="error", error="ConfigError: boom")
        problems = compare_baseline.compare(baseline, current, 0.25)
        assert problems and "ConfigError: boom" in problems[0]

    def test_missing_metric_key_fails(self):
        baseline = _doc(bpp={"lena": 5.25}, mb_per_s={"lena/fast": 1.0})
        current = _doc(bpp={}, mb_per_s={})
        problems = compare_baseline.compare(baseline, current, 0.25)
        assert len(problems) == 2


class TestMain:
    def test_cli_pass_and_fail(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        baseline_path.write_text(json.dumps(_doc(bpp={"lena": 5.25})))
        current_path.write_text(json.dumps(_doc(bpp={"lena": 5.25})))
        assert compare_baseline.main([str(baseline_path), str(current_path)]) == 0
        assert "performance gate passed" in capsys.readouterr().out

        current_path.write_text(json.dumps(_doc(bpp={"lena": 9.99})))
        assert compare_baseline.main([str(baseline_path), str(current_path)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_committed_baseline_is_valid(self):
        baseline = json.loads(
            (Path(__file__).resolve().parents[2] / "benchmarks" / "baseline.json").read_text()
        )
        assert baseline["schema"] == 1
        for name in ("engines", "throughput"):
            assert baseline["experiments"][name]["status"] == "ok"
        engines = baseline["experiments"]["engines"]
        assert len(engines["bpp"]) == 7
        assert len(engines["mb_per_s"]) == 14

    def test_invalid_tolerance_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            compare_baseline.main(["a", "b", "--tolerance", "1.5"])
