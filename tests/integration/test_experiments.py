"""Integration tests for the experiment harness (tables, figures, ablations)."""

import pytest

from repro.experiments.ablations import run_division_ablation, run_overflow_guard_ablation
from repro.experiments.figure4 import PAPER_FIGURE4, run_figure4
from repro.experiments.table1 import PAPER_TABLE1, default_codecs, run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.throughput import run_throughput
from repro.exceptions import ConfigError


class TestTable1Harness:
    @pytest.fixture(scope="class")
    def result(self):
        # Two images at 48x48 keeps the four-codec comparison fast while still
        # exercising the complete harness (including round-trip verification).
        return run_table1(size=48, images=("zelda", "mandrill"))

    def test_rows_and_columns(self, result):
        assert [row.image for row in result.rows] == ["zelda", "mandrill"]
        assert result.codec_names == [codec.name for codec in default_codecs()]
        for row in result.rows:
            assert set(row.bits_per_pixel) == set(result.codec_names)

    def test_rates_are_plausible(self, result):
        for row in result.rows:
            for rate in row.bits_per_pixel.values():
                assert 0.5 < rate < 9.0

    def test_averages(self, result):
        averages = result.averages()
        for name in result.codec_names:
            expected = sum(row.bits_per_pixel[name] for row in result.rows) / len(result.rows)
            assert abs(averages[name] - expected) < 1e-12

    def test_texture_harder_than_smooth_for_every_codec(self, result):
        zelda = result.rows[0].bits_per_pixel
        mandrill = result.rows[1].bits_per_pixel
        for name in result.codec_names:
            assert zelda[name] < mandrill[name]

    def test_winner_helper(self, result):
        assert result.winner("zelda") in result.codec_names
        with pytest.raises(KeyError):
            result.winner("unknown")

    def test_format_table_mentions_every_codec(self, result):
        text = result.format_table(include_paper=True)
        for name in result.codec_names:
            assert name in text
        assert "average" in text

    def test_paper_reference_values_present(self):
        assert set(PAPER_TABLE1) >= {"barb", "lena", "zelda", "average"}
        assert PAPER_TABLE1["average"]["proposed"] == 4.55

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigError):
            run_table1(size=4)

    def test_duplicate_codec_names_rejected(self):
        from repro.core.codec import ProposedCodec

        with pytest.raises(ConfigError):
            run_table1(size=48, codecs=[ProposedCodec(), ProposedCodec()], images=("zelda",))


class TestFigure4Harness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure4(count_bits_values=(8, 14), size=32, images=("lena", "barb"))

    def test_points_cover_requested_widths(self, result):
        assert [point.count_bits for point in result.points] == [8, 14]

    def test_per_image_rates_present(self, result):
        for point in result.points:
            assert set(point.per_image_bits_per_pixel) == {"lena", "barb"}
            assert point.average_bits_per_pixel == pytest.approx(
                sum(point.per_image_bits_per_pixel.values()) / 2
            )

    def test_narrow_counters_rescale_more(self, result):
        narrow, wide = result.points
        assert narrow.total_rescales >= wide.total_rescales

    def test_best_count_bits(self, result):
        assert result.best_count_bits() in (8, 14)

    def test_series_and_format(self, result):
        bits, rates = result.as_series()
        assert bits == [8, 14]
        assert len(rates) == 2
        assert "Frequency bits" in result.format_table()

    def test_paper_reference_curve_minimum_at_14(self):
        assert min(PAPER_FIGURE4, key=PAPER_FIGURE4.get) == 14

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigError):
            run_figure4(count_bits_values=())


class TestTable2Harness:
    def test_report_structure(self):
        result = run_table2()
        assert {b.name for b in result.summary.blocks} == {
            "modeling",
            "probability_estimator",
            "arithmetic_coder",
        }
        text = result.format_report()
        assert "Estimated device utilisation" in text
        assert "Published Table 2" in text
        assert "Clock estimate" in text

    def test_memory_matches_paper_budgets(self):
        result = run_table2()
        assert abs(result.memory.modeling_bytes - result.paper_memory_bytes["modeling"]) < 200
        assert abs(result.memory.estimator_bytes - result.paper_memory_bytes["probability_estimator"]) < 600


class TestThroughputHarness:
    def test_report(self):
        result = run_throughput(size=32, estimated_clock_mhz=140.0)
        assert result.at_paper_clock.megabits_per_second == pytest.approx(123.0, abs=3.0)
        assert result.without_pipelining.megabits_per_second < result.at_paper_clock.megabits_per_second
        assert "Mbit/s" in result.format_report()

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigError):
            run_throughput(size=4)


class TestAblationHarness:
    def test_overflow_guard_ablation(self):
        result = run_overflow_guard_ablation(size=32, images=("lena", "zelda"))
        assert result.baseline_bpp > 0 and result.variant_bpp > 0
        assert set(result.per_image_baseline) == {"lena", "zelda"}
        assert "overflow-guard" in result.format_report()

    def test_division_ablation_validates_paper_claim(self):
        """LUT division must not change the bit rate by more than ~0.02 bpp."""
        result = run_division_ablation(size=48, images=("lena", "boat"))
        assert abs(result.delta_bpp) < 0.02


class TestStoreBench:
    def test_report_and_json_structure(self):
        from repro.experiments.store_bench import run_store_bench

        result = run_store_bench(
            size=16, images=("lena", "boat"), stripes=2, repeats=1
        )
        assert len(result.rows) == 2
        report = result.format_report()
        assert "warm-cache region reads" in report
        for column in ("cold full", "cold region", "warm region", "batched"):
            assert column in report
        payload = result.as_json()
        assert set(payload) == {"bpp", "mb_per_s", "extra"}
        assert set(payload["extra"]["warm_speedup"]) == {"lena", "boat"}
        assert payload["extra"]["min_warm_speedup"] > 0

    def test_sqlite_backend_variant(self):
        from repro.experiments.store_bench import run_store_bench

        result = run_store_bench(
            size=16, images=("zelda",), stripes=2, repeats=1, backend="sqlite"
        )
        assert result.backend == "sqlite"
        assert len(result.rows) == 1

    def test_invalid_parameters_rejected(self):
        from repro.experiments.store_bench import run_store_bench

        with pytest.raises(ConfigError):
            run_store_bench(size=8)
        with pytest.raises(ConfigError):
            run_store_bench(size=32, stripes=1)
        with pytest.raises(ConfigError):
            run_store_bench(size=32, backend="s3")
        with pytest.raises(ConfigError):
            run_store_bench(size=32, repeats=0)
