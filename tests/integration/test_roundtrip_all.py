"""Cross-codec integration tests: every codec must be lossless on every image.

These are the highest-value tests in the suite: they exercise the complete
encode -> container -> decode path of all four image codecs on content that
stresses different mechanisms (texture, edges, noise, runs, tiny geometry)
and include a hypothesis-driven sweep over random images.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.calic import CalicCodec
from repro.baselines.jpegls import JpegLsCodec
from repro.baselines.slp import SlpCodec
from repro.core.codec import ProposedCodec
from repro.imaging.image import GrayImage

ALL_CODECS = [
    pytest.param(ProposedCodec, id="proposed"),
    pytest.param(ProposedCodec.reference, id="proposed-reference"),
    pytest.param(JpegLsCodec, id="jpeg-ls"),
    pytest.param(SlpCodec, id="slp"),
    pytest.param(CalicCodec, id="calic"),
]


@pytest.mark.parametrize("codec_factory", ALL_CODECS)
class TestLosslessness:
    def test_standard_image_set(self, codec_factory, roundtrip_images):
        codec = codec_factory()
        for image in roundtrip_images:
            stream = codec.encode(image)
            reconstructed = codec.decode(stream)
            assert reconstructed == image, "%s failed on %s" % (codec.name, image.name)

    def test_corpus_images(self, codec_factory, lena_small, mandrill_small, zelda_small):
        codec = codec_factory()
        for image in (lena_small, mandrill_small, zelda_small):
            assert codec.decode(codec.encode(image)) == image

    def test_awkward_geometries(self, codec_factory):
        codec = codec_factory()
        for width, height in ((1, 1), (1, 13), (13, 1), (2, 2), (3, 7), (64, 3)):
            pixels = [(x * 31 + y * 17) % 256 for y in range(height) for x in range(width)]
            image = GrayImage(width, height, pixels)
            assert codec.decode(codec.encode(image)) == image, (width, height)

    def test_pathological_patterns(self, codec_factory):
        codec = codec_factory()
        checker = GrayImage(16, 16, [255 if (x + y) % 2 else 0 for y in range(16) for x in range(16)])
        stripes = GrayImage(16, 16, [255 if y % 2 else 0 for y in range(16) for x in range(16)])
        staircase = GrayImage(16, 16, [min(255, 16 * max(x, y)) for y in range(16) for x in range(16)])
        for image in (checker, stripes, staircase):
            assert codec.decode(codec.encode(image)) == image

    def test_compression_on_natural_content(self, codec_factory, lena_small):
        """Every codec must actually compress smooth natural-like content."""
        codec = codec_factory()
        assert codec.bits_per_pixel(lena_small) < 7.5


class TestRandomImagesProperty:
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=12, deadline=None)
    def test_proposed_codec_on_random_images(self, width, height, rng):
        pixels = [rng.randint(0, 255) for _ in range(width * height)]
        image = GrayImage(width, height, pixels)
        codec = ProposedCodec()
        assert codec.decode(codec.encode(image)) == image

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=12, deadline=None)
    def test_jpegls_on_random_images(self, width, height, rng):
        pixels = [rng.randint(0, 255) for _ in range(width * height)]
        image = GrayImage(width, height, pixels)
        codec = JpegLsCodec()
        assert codec.decode(codec.encode(image)) == image

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=10),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=8, deadline=None)
    def test_calic_and_slp_on_random_images(self, width, height, rng):
        pixels = [rng.randint(0, 255) for _ in range(width * height)]
        image = GrayImage(width, height, pixels)
        for codec in (CalicCodec(), SlpCodec()):
            assert codec.decode(codec.encode(image)) == image

    @given(st.randoms(use_true_random=False))
    @settings(max_examples=10, deadline=None)
    def test_low_entropy_random_images(self, rng):
        """Images drawn from a tiny value set exercise runs and escapes."""
        palette = [0, 1, 254, 255]
        pixels = [palette[rng.randint(0, 3)] for _ in range(20 * 9)]
        image = GrayImage(20, 9, pixels)
        for codec in (ProposedCodec(), JpegLsCodec(), SlpCodec(), CalicCodec()):
            assert codec.decode(codec.encode(image)) == image


class TestCrossCodecBehaviour:
    def test_streams_are_not_interchangeable(self, tiny_image):
        """Every codec refuses streams produced by the others."""
        from repro.exceptions import CodecMismatchError

        codecs = [ProposedCodec(), JpegLsCodec(), SlpCodec(), CalicCodec()]
        streams = {codec.name: codec.encode(tiny_image) for codec in codecs}
        for producer in codecs:
            for consumer in codecs:
                if producer.name == consumer.name:
                    continue
                with pytest.raises(CodecMismatchError):
                    consumer.decode(streams[producer.name])

    def test_proposed_beats_golomb_baselines_on_smooth_content(self):
        """The paper's headline: better ratios than JPEG-LS / SLP on smooth images.

        The adaptive trees need a few thousand pixels to converge, so the
        comparison uses a 96x96 image (the full-corpus comparison lives in
        ``benchmarks/test_table1_bitrates.py``).
        """
        from repro.imaging.synthetic import generate_image

        image = generate_image("zelda", size=96)
        proposed = ProposedCodec().bits_per_pixel(image)
        jpegls = JpegLsCodec().bits_per_pixel(image)
        slp = SlpCodec().bits_per_pixel(image)
        assert proposed < max(jpegls, slp) + 0.02

    def test_relative_ordering_is_stable_across_seeds(self):
        """Smooth images stay cheaper than textured ones for every codec."""
        from repro.imaging.synthetic import generate_image

        for seed in (1, 99):
            smooth = generate_image("zelda", size=48, seed=seed)
            textured = generate_image("mandrill", size=48, seed=seed)
            for codec in (ProposedCodec(), JpegLsCodec(), SlpCodec(), CalicCodec()):
                assert codec.bits_per_pixel(smooth) < codec.bits_per_pixel(textured)
