"""Golden-vector conformance: the stream format must not drift silently.

Two directions are locked down:

* **encode stability** — re-encoding each vector's deterministic source
  image must reproduce the committed bitstream byte-for-byte, so any
  behavioural change to the format (container layout, entropy coding,
  stripe partition, inter-plane predictor) fails as a readable diff against
  ``tests/vectors/`` instead of silently re-encoding;
* **decode compatibility** — the committed streams (including the v1/v2
  vectors frozen before the multi-component work) must keep decoding to the
  pixel digests recorded in ``manifest.json``.

After an *intentional* format change, run
``PYTHONPATH=src python tests/vectors/regenerate.py`` and commit the
refreshed vectors alongside the change.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
from pathlib import Path

import pytest

VECTOR_DIR = Path(__file__).resolve().parent.parent / "vectors"


def _load_regenerate():
    spec = importlib.util.spec_from_file_location(
        "vector_regenerate", VECTOR_DIR / "regenerate.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def regenerate():
    return _load_regenerate()


@pytest.fixture(scope="module")
def manifest() -> dict:
    return json.loads((VECTOR_DIR / "manifest.json").read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def vectors(regenerate) -> dict:
    return regenerate.build_vectors()


def test_manifest_covers_exactly_the_committed_vectors(manifest):
    committed = {path.name for path in VECTOR_DIR.glob("*.rplc")}
    assert committed == set(manifest)


def test_rebuilt_streams_match_committed_bytes(vectors, manifest):
    for filename, (stream, _image, _description) in sorted(vectors.items()):
        committed = (VECTOR_DIR / filename).read_bytes()
        assert stream == committed, (
            "%s drifted from the committed golden vector; if the format "
            "change is intentional, run tests/vectors/regenerate.py and "
            "commit the refreshed vectors" % filename
        )
        assert hashlib.sha256(committed).hexdigest() == manifest[filename]["stream_sha256"]
        assert len(committed) == manifest[filename]["stream_bytes"]


def test_committed_streams_still_decode(regenerate, manifest):
    from repro.core.bitstream import unpack_stream
    from repro.core.components import decode_planar
    from repro.core.decoder import decode_image

    for filename, entry in sorted(manifest.items()):
        stream = (VECTOR_DIR / filename).read_bytes()
        header, _ = unpack_stream(stream)
        if header.component_lengths:
            decoded = decode_planar(stream)
        else:
            decoded = decode_image(stream)
        assert regenerate.image_digest(decoded) == entry["image_sha256"], filename


def test_vectors_decode_identically_on_both_engines(manifest):
    from repro.core.bitstream import unpack_stream
    from repro.core.components import decode_planar
    from repro.core.decoder import decode_image

    for filename in sorted(manifest):
        stream = (VECTOR_DIR / filename).read_bytes()
        header, _ = unpack_stream(stream)
        if header.component_lengths:
            assert decode_planar(stream, engine="fast") == decode_planar(stream)
        else:
            assert decode_image(stream, engine="fast") == decode_image(stream)
