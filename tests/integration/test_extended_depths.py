"""Extended-bit-depth support of the proposed codec.

The paper evaluates 8-bit grey-scale images, but the architecture is
parameterised by the alphabet size (the probability-estimator tree simply
gains one level per extra bit), so the codec configuration accepts other
sample depths.  These tests pin down that the whole pipeline — prediction,
context formation, error folding, tree coding — stays lossless for deeper
samples, which matters for the space/remote-sensing applications the paper's
introduction cites.
"""

import numpy as np
import pytest

from repro.core.codec import ProposedCodec
from repro.core.config import CodecConfig
from repro.imaging.image import GrayImage


def _smooth_deep_image(bit_depth: int, size: int = 20, seed: int = 0) -> GrayImage:
    """A random-walk image occupying the full range of ``bit_depth``."""
    rng = np.random.default_rng(seed)
    max_value = (1 << bit_depth) - 1
    steps = rng.integers(-(max_value // 40) - 1, max_value // 40 + 2, size=(size, size))
    values = np.clip(np.cumsum(steps, axis=1) + max_value // 2, 0, max_value)
    return GrayImage.from_array(values, bit_depth=bit_depth, name="deep-%d" % bit_depth)


class TestDeepSamples:
    @pytest.mark.parametrize("bit_depth", [4, 10, 12])
    def test_roundtrip_at_other_depths(self, bit_depth):
        config = CodecConfig.hardware(bit_depth=bit_depth)
        codec = ProposedCodec(config)
        image = _smooth_deep_image(bit_depth)
        stream = codec.encode(image)
        assert codec.decode(stream) == image

    def test_deep_image_compresses(self):
        config = CodecConfig.hardware(bit_depth=12)
        codec = ProposedCodec(config)
        image = _smooth_deep_image(12, size=24)
        bpp = 8.0 * len(codec.encode(image)) / image.pixel_count
        assert bpp < 12.0  # better than storing raw 12-bit samples

    def test_full_range_extremes_roundtrip(self):
        config = CodecConfig.hardware(bit_depth=10)
        codec = ProposedCodec(config)
        pixels = [0, 1023] * 50
        image = GrayImage(10, 10, pixels, bit_depth=10)
        assert codec.decode(codec.encode(image)) == image

    def test_decoder_recovers_depth_from_header(self):
        config = CodecConfig.hardware(bit_depth=10)
        image = _smooth_deep_image(10)
        from repro.core.decoder import decode_image
        from repro.core.encoder import encode_image

        stream = encode_image(image, config)
        decoded = decode_image(stream, config)
        assert decoded.bit_depth == 10
        assert decoded == image

    def test_mismatched_depth_rejected(self):
        from repro.exceptions import ConfigError

        codec = ProposedCodec(CodecConfig.hardware(bit_depth=12))
        with pytest.raises(ConfigError):
            codec.encode(_smooth_deep_image(10))
