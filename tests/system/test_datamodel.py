"""Tests for the general-data codec (the Figure 1 data path)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CodecMismatchError, ConfigError
from repro.system.datamodel import GeneralDataCodec


class TestRoundtrip:
    def test_text(self):
        codec = GeneralDataCodec(order=2)
        data = b"the quick brown fox jumps over the lazy dog " * 40
        assert codec.decode(codec.encode(data)) == data

    def test_binary(self):
        codec = GeneralDataCodec(order=1)
        data = bytes((i * 7) % 256 for i in range(5000))
        assert codec.decode(codec.encode(data)) == data

    def test_empty_input(self):
        codec = GeneralDataCodec()
        assert codec.decode(codec.encode(b"")) == b""

    def test_single_byte(self):
        codec = GeneralDataCodec()
        assert codec.decode(codec.encode(b"\x7f")) == b"\x7f"

    def test_all_byte_values(self):
        codec = GeneralDataCodec(order=0)
        data = bytes(range(256)) * 4
        assert codec.decode(codec.encode(data)) == data

    @pytest.mark.parametrize("order", [0, 1, 2, 3])
    def test_orders(self, order):
        codec = GeneralDataCodec(order=order)
        data = b"abcabcabc" * 50
        assert codec.decode(codec.encode(data)) == data

    @given(st.binary(max_size=1500))
    @settings(max_examples=25, deadline=None)
    def test_random_payloads(self, data):
        codec = GeneralDataCodec(order=1)
        assert codec.decode(codec.encode(data)) == data


class TestCompression:
    def test_repetitive_text_compresses_well(self):
        codec = GeneralDataCodec(order=3)
        data = b"status=NOMINAL temperature=21.5C voltage=27.9V\n" * 300
        assert codec.compression_ratio(data) > 4.0

    def test_higher_order_helps_on_structured_text(self):
        data = b"abcdefgh" * 400
        order0 = len(GeneralDataCodec(order=0).encode(data))
        order2 = len(GeneralDataCodec(order=2).encode(data))
        assert order2 < order0

    def test_ratio_of_empty_rejected(self):
        with pytest.raises(ConfigError):
            GeneralDataCodec().compression_ratio(b"")


class TestErrors:
    def test_order_bounds(self):
        with pytest.raises(ConfigError):
            GeneralDataCodec(order=-1)
        with pytest.raises(ConfigError):
            GeneralDataCodec(order=9)

    def test_decode_with_wrong_order_rejected(self):
        stream = GeneralDataCodec(order=2).encode(b"hello world")
        with pytest.raises(CodecMismatchError):
            GeneralDataCodec(order=3).decode(stream)

    def test_decode_foreign_stream_rejected(self, tiny_image):
        from repro.core.codec import ProposedCodec

        stream = ProposedCodec().encode(tiny_image)
        with pytest.raises(CodecMismatchError):
            GeneralDataCodec().decode(stream)
