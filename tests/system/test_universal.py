"""Tests for the universal compressor (Figure 1 dispatcher)."""

import pytest

from repro.exceptions import ConfigError
from repro.imaging.synthetic import generate_image
from repro.system.universal import BlockType, UniversalCompressor


class TestClassification:
    def test_bytes_are_data(self):
        assert UniversalCompressor.classify(b"abc") == BlockType.DATA
        assert UniversalCompressor.classify(bytearray(b"abc")) == BlockType.DATA

    def test_images_are_images(self, tiny_image):
        assert UniversalCompressor.classify(tiny_image) == BlockType.IMAGE

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigError):
            UniversalCompressor.classify(12345)


class TestCompression:
    def test_mixed_stream_roundtrip(self, tiny_image):
        compressor = UniversalCompressor()
        image = generate_image("boat", size=32)
        blocks = [b"header " * 100, image, b"\x00" * 500, tiny_image]
        compressed, report = compressor.compress_stream(blocks)
        assert len(compressed) == 4
        for original, block in zip(blocks, compressed):
            assert compressor.decompress_block(block) == original
        assert report.original_bytes > report.compressed_bytes
        assert report.compression_ratio > 1.0

    def test_reconfiguration_counting(self, tiny_image):
        compressor = UniversalCompressor(reconfiguration_cycles=100)
        blocks = [b"a" * 200, b"b" * 200, tiny_image, tiny_image, b"c" * 200]
        _, report = compressor.compress_stream(blocks)
        # data -> (reconfig) data, data (no), image (reconfig), image (no), data (reconfig)
        assert report.reconfigurations == 3
        assert report.reconfiguration_cycles == 300
        flags = [block.reconfigured for block in report.blocks]
        assert flags == [True, False, True, False, True]

    def test_active_front_end_persists_across_calls(self, tiny_image):
        compressor = UniversalCompressor()
        compressor.compress_stream([tiny_image])
        _, report = compressor.compress_stream([tiny_image])
        assert report.reconfigurations == 0

    def test_empty_stream(self):
        _, report = UniversalCompressor().compress_stream([])
        assert report.reconfigurations == 0
        assert report.blocks == []
        assert report.compression_ratio == 0.0

    def test_report_summary_format(self, tiny_image):
        compressor = UniversalCompressor()
        _, report = compressor.compress_stream([b"xyz" * 100, tiny_image])
        text = report.format_summary()
        assert "blocks" in text
        assert "reconfigurations" in text

    def test_negative_reconfiguration_cost_rejected(self):
        with pytest.raises(ConfigError):
            UniversalCompressor(reconfiguration_cycles=-1)
