"""The metadata catalog: recording, queries, pagination, persistence.

Covers the contract shared by all three implementations (one filter +
pagination code path), the per-backend persistence (JSONL journal next to
a filesystem store, a table inside a SQLite store), and the explicit
acceptance cases: pagination past the end of the result set and filtering
on a tag no entry carries.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import BlobNotFoundError, StoreError
from repro.imaging.synthetic import generate_planar_image
from repro.store import FilesystemBackend, ImageStore, SQLiteBackend
from repro.store.catalog import (
    CatalogEntry,
    CatalogFilter,
    JournalCatalog,
    MemoryCatalog,
    SQLiteCatalog,
    open_catalog,
)


def _entry(key: str, created_at: float = 0.0, **overrides) -> CatalogEntry:
    fields = dict(
        key=key,
        width=16,
        height=16,
        planes=3,
        bit_depth=8,
        version=3,
        stripes=2,
        plane_delta=False,
        engine="reference",
        encoded_bytes=1000,
        decoded_bytes=16 * 16 * 3,
        created_at=created_at,
    )
    fields.update(overrides)
    return CatalogEntry(**fields)


@pytest.fixture(params=["filesystem", "sqlite"])
def store(request, tmp_path):
    if request.param == "filesystem":
        backend = FilesystemBackend(tmp_path / "blobs")
    else:
        backend = SQLiteBackend(tmp_path / "blobs.sqlite")
    with ImageStore(backend) as instance:
        yield instance


class TestRecording:
    def test_put_records_full_metadata(self, store):
        image = generate_planar_image("lena", size=16)
        key = store.put(image, stripes=2, tags={"subject": "lena"})
        entry = store.catalog.get(key)
        assert entry is not None
        assert entry.width == 16 and entry.height == 16
        assert entry.planes == 3 and entry.bit_depth == 8
        assert entry.version == 3 and entry.stripes == 2
        assert entry.plane_delta is False
        assert entry.engine == "reference"
        assert entry.encoded_bytes == store.backend.length(key)
        assert entry.decoded_bytes == 16 * 16 * 3
        assert entry.tag_dict == {"subject": "lena"}
        assert not entry.deleted
        assert entry.compression_ratio > 0.0

    def test_reput_merges_tags_and_keeps_created_at(self, store):
        image = generate_planar_image("boat", size=16)
        key = store.put(image, stripes=2, tags={"a": "1"})
        first = store.catalog.get(key)
        again = store.put(image, stripes=2, tags={"b": "2"})
        assert again == key
        entry = store.catalog.get(key)
        assert entry.tag_dict == {"a": "1", "b": "2"}
        assert entry.created_at == first.created_at

    def test_reput_revives_tombstone(self, store):
        image = generate_planar_image("zelda", size=16)
        key = store.put(image, stripes=2)
        store.soft_delete(key, ttl_seconds=3600.0)
        assert store.catalog.get(key).deleted
        store.put(image, stripes=2)
        assert not store.catalog.get(key).deleted
        assert store.get(key) == image

    def test_hard_delete_removes_entry(self, store):
        key = store.put(generate_planar_image("barb", size=16), stripes=2)
        store.delete(key)
        assert store.catalog.get(key) is None


class TestQueries:
    @pytest.fixture()
    def catalog(self):
        catalog = MemoryCatalog()
        for index in range(10):
            tags = [("bucket", "even" if index % 2 == 0 else "odd")]
            if index == 7:
                tags.append(("rare", "yes"))
            catalog.record_put(
                _entry(
                    "k%02d" % index,
                    created_at=float(index),
                    planes=1 if index < 3 else 3,
                    engine="fast" if index >= 8 else "reference",
                    encoded_bytes=100 * (index + 1),
                    tags=tuple(tags),
                )
            )
        return catalog

    def test_unfiltered_query_is_newest_first(self, catalog):
        page, total = catalog.query()
        assert total == 10
        assert [entry.key for entry in page[:3]] == ["k09", "k08", "k07"]

    def test_pagination_and_total(self, catalog):
        page, total = catalog.query(limit=3, offset=3)
        assert total == 10
        assert [entry.key for entry in page] == ["k06", "k05", "k04"]

    def test_pagination_past_end_is_empty_not_an_error(self, catalog):
        page, total = catalog.query(limit=5, offset=10)
        assert page == [] and total == 10
        page, total = catalog.query(limit=5, offset=1000)
        assert page == [] and total == 10

    def test_negative_limit_or_offset_rejected(self, catalog):
        with pytest.raises(StoreError):
            catalog.query(limit=-1)
        with pytest.raises(StoreError):
            catalog.query(offset=-1)

    def test_filter_on_missing_tag_matches_nothing(self, catalog):
        page, total = catalog.query(CatalogFilter(tags=(("no-such-tag", None),)))
        assert page == [] and total == 0

    def test_tag_presence_and_value_filters(self, catalog):
        _, total = catalog.query(CatalogFilter(tags=(("rare", None),)))
        assert total == 1
        _, total = catalog.query(CatalogFilter(tags=(("bucket", "even"),)))
        assert total == 5
        _, total = catalog.query(CatalogFilter(tags=(("rare", "no"),)))
        assert total == 0

    def test_field_filters(self, catalog):
        _, total = catalog.query(CatalogFilter(planes=1))
        assert total == 3
        _, total = catalog.query(CatalogFilter(engine="fast"))
        assert total == 2
        _, total = catalog.query(CatalogFilter(min_encoded_bytes=800))
        assert total == 3
        _, total = catalog.query(CatalogFilter(max_encoded_bytes=200))
        assert total == 2
        _, total = catalog.query(
            CatalogFilter(created_after=3.0, created_before=6.0)
        )
        assert total == 3

    def test_deleted_visibility(self, catalog):
        catalog.mark_deleted("k05", deleted_at=100.0, ttl_seconds=10.0)
        _, total = catalog.query()
        assert total == 9
        _, total = catalog.query(CatalogFilter(include_deleted=True))
        assert total == 10
        page, total = catalog.query(CatalogFilter(deleted_only=True))
        assert total == 1 and page[0].key == "k05"

    def test_update_unknown_key_raises(self, catalog):
        with pytest.raises(BlobNotFoundError):
            catalog.update("nope", encoded_bytes=1)

    def test_stats_counts_live_and_deleted(self, catalog):
        catalog.mark_deleted("k00", deleted_at=0.0, ttl_seconds=1.0)
        stats = catalog.stats()
        assert stats["entries"] == 10
        assert stats["live"] == 9 and stats["deleted"] == 1
        assert stats["deleted_bytes"] == 100

    def test_parse_tag(self):
        assert CatalogFilter.parse_tag("subject") == ("subject", None)
        assert CatalogFilter.parse_tag("subject=lena") == ("subject", "lena")
        assert CatalogFilter.parse_tag("subject=") == ("subject", "")
        with pytest.raises(StoreError):
            CatalogFilter.parse_tag("=value")

    def test_entry_round_trips_through_json(self):
        entry = _entry(
            "k", created_at=5.0, deleted_at=9.0, purge_after=10.0,
            compacted_at=7.0, tags=(("a", "1"),),
        )
        assert CatalogEntry.from_json(entry.as_json()) == entry


class TestPersistence:
    def test_store_catalog_survives_reopen(self, store, tmp_path):
        image = generate_planar_image("peppers", size=16)
        key = store.put(image, stripes=2, tags={"kept": "yes"})
        doomed = store.put(generate_planar_image("boat", size=16), stripes=2)
        store.soft_delete(doomed, ttl_seconds=3600.0)
        location = (
            store.backend.root
            if isinstance(store.backend, FilesystemBackend)
            else store.backend.path
        )
        store.close()

        with ImageStore.open(location) as reopened:
            entry = reopened.catalog.get(key)
            assert entry is not None and entry.tag_dict == {"kept": "yes"}
            tombstone = reopened.catalog.get(doomed)
            assert tombstone is not None and tombstone.deleted
            assert reopened.get(key) == image

    def test_open_catalog_dispatch(self, tmp_path):
        fs = FilesystemBackend(tmp_path / "fs")
        assert isinstance(open_catalog(fs), JournalCatalog)
        sq = SQLiteBackend(tmp_path / "blobs.sqlite")
        assert isinstance(open_catalog(sq), SQLiteCatalog)
        assert isinstance(open_catalog(object()), MemoryCatalog)
        sq.close()

    def test_journal_rewrites_to_snapshot(self, tmp_path):
        path = tmp_path / "catalog.jsonl"
        catalog = JournalCatalog(path, rewrite_factor=1)
        # Churn two keys far past the rewrite threshold (256 + 1 * live).
        for round_number in range(140):
            catalog.record_put(_entry("a", created_at=float(round_number)))
            catalog.record_put(_entry("b", created_at=float(round_number)))
        lines = path.read_text().strip().splitlines()
        assert len(lines) < 280  # the journal was snapshotted, not unbounded
        reopened = JournalCatalog(path)
        assert len(reopened) == 2
        assert reopened.get("a") is not None and reopened.get("b") is not None

    def test_journal_purge_persists(self, tmp_path):
        path = tmp_path / "catalog.jsonl"
        catalog = JournalCatalog(path)
        catalog.record_put(_entry("a"))
        catalog.record_put(_entry("b"))
        catalog.purge("a")
        reopened = JournalCatalog(path)
        assert reopened.get("a") is None and reopened.get("b") is not None

    def test_corrupt_journal_fails_loudly(self, tmp_path):
        path = tmp_path / "catalog.jsonl"
        path.write_text('{"op": "put"}\n')  # missing the entry payload
        with pytest.raises(StoreError, match="line 1"):
            JournalCatalog(path)
        path.write_text("not json at all\n")
        with pytest.raises(StoreError):
            JournalCatalog(path)

    def test_sqlite_catalog_persists_mutations(self, tmp_path):
        path = tmp_path / "catalog.sqlite"
        catalog = SQLiteCatalog(path)
        catalog.record_put(_entry("a"))
        catalog.mark_deleted("a", deleted_at=1.0, ttl_seconds=5.0)
        catalog.record_put(_entry("b"))
        catalog.purge("b")
        catalog.close()
        reopened = SQLiteCatalog(path)
        assert reopened.get("b") is None
        entry = reopened.get("a")
        assert entry is not None and entry.deleted and entry.purge_after == 6.0
        reopened.close()

    def test_corrupt_sqlite_row_fails_loudly(self, tmp_path):
        import sqlite3

        path = tmp_path / "catalog.sqlite"
        SQLiteCatalog(path).close()
        connection = sqlite3.connect(str(path))
        connection.execute(
            "INSERT INTO catalog (key, entry) VALUES (?, ?)",
            ("k", json.dumps({"key": "k"})),
        )
        connection.commit()
        connection.close()
        with pytest.raises(StoreError, match="corrupt catalog row"):
            SQLiteCatalog(path)
