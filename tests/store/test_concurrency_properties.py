"""Concurrency properties of the store: cache and serving race-freedom.

The serving tier (`repro.serve`) drives one :class:`ImageStore` per shard
from a pool of worker threads, so the store's shared mutable state — the
:class:`CellCache` and the single-flight map above it — must behave under
parallelism exactly as it does serially:

* parallel ``get_region`` calls return byte-identical images to serial
  calls (no torn arrays, no partially-updated cache entries);
* the cache's byte accounting never drifts from the entries it holds and
  never exceeds its budget, no matter how operations interleave;
* when coalescing is claimed (a single-flight herd), the backend decode
  happens exactly once.

Hypothesis drives the sequential state-space (operation interleavings the
LRU + admission machinery must survive); raw thread herds drive the
actual races.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging.synthetic import generate_planar_image
from repro.serve.flight import SingleFlight
from repro.store.cache import CellCache
from repro.store.store import ImageStore


def _cell(tag: int, samples: int = 8) -> np.ndarray:
    return np.full((1, samples), tag, dtype=np.int64)


class TestCacheAccountingProperties:
    """Hypothesis: byte accounting is exact for ANY operation sequence."""

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "invalidate", "clear"]),
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=1, max_value=64),
            ),
            max_size=60,
        ),
        max_bytes=st.sampled_from([0, 256, 1024, 1 << 20]),
        admission=st.sampled_from(["always", "second-touch"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_current_bytes_always_matches_held_entries(self, ops, max_bytes, admission):
        cache = CellCache(max_bytes=max_bytes, admission=admission)
        for op, key, samples in ops:
            if op == "put":
                cache.put(key, _cell(key, samples))
            elif op == "get":
                cache.get(key)
            elif op == "invalidate":
                cache.invalidate(key)
            else:
                cache.clear()
            stats = cache.stats
            held = sum(
                array.nbytes
                for array in (cache._entries[k] for k in cache.keys())
            )
            assert stats.current_bytes == held
            assert stats.current_bytes <= max_bytes
            assert stats.entries == len(cache.keys())

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=30)
    )
    @settings(max_examples=40, deadline=None)
    def test_second_touch_admits_exactly_the_reoffered_keys(self, keys):
        """Exact model: a key is cached iff it was offered before (or held)."""
        cache = CellCache(max_bytes=1 << 20, admission="second-touch")
        offered = set()
        for key in keys:
            held_before = key in cache
            cache.put(key, _cell(key))
            if key in offered or held_before:
                assert key in cache, "reoffered key %r was not admitted" % key
            else:
                assert key not in cache, "first-touch key %r was admitted" % key
                assert cache.stats.rejected > 0
            offered.add(key)


class TestCacheUnderThreads:
    def test_hammering_threads_never_tear_the_accounting(self):
        cache = CellCache(max_bytes=8 * 1024)
        herd = 8
        iterations = 300
        barrier = threading.Barrier(herd)
        failures = []

        def worker(worker_index: int) -> None:
            try:
                barrier.wait()
                for step in range(iterations):
                    key = (worker_index * 7 + step) % 13
                    if step % 3 == 0:
                        cache.put(key, _cell(key, samples=16))
                    elif step % 3 == 1:
                        array = cache.get(key)
                        if array is not None:
                            # A cached cell is immutable and self-consistent.
                            assert bool((array == key).all())
                    else:
                        cache.invalidate(key)
            except BaseException as error:
                failures.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(herd)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures

        stats = cache.stats
        held = sum(cache._entries[k].nbytes for k in cache.keys())
        assert stats.current_bytes == held
        assert stats.current_bytes <= cache.max_bytes
        assert stats.hits + stats.misses > 0

    def test_zero_budget_cache_is_safe_under_threads(self):
        cache = CellCache(max_bytes=0)
        barrier = threading.Barrier(4)

        def worker() -> None:
            barrier.wait()
            for step in range(100):
                cache.put(step, _cell(step))
                assert cache.get(step) is None

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(cache) == 0
        assert cache.stats.current_bytes == 0


class TestParallelRegionReads:
    @pytest.fixture()
    def stored(self, tmp_path):
        store = ImageStore.open(tmp_path / "store")
        image = generate_planar_image("lena", size=32, seed=41, planes=3)
        key = store.put(image, stripes=4)
        yield store, key
        store.close()

    def test_parallel_get_region_matches_serial(self, stored):
        """Bytes served under parallelism are identical to serial serving."""
        store, key = stored
        ranges = [(s, s + 1) for s in range(4)] + [(0, 2), (1, 4), (0, 4)]
        serial = {r: store.get_region(key, r) for r in ranges}
        store.cache.clear()

        herd = 8
        barrier = threading.Barrier(herd)
        failures = []
        observed = []
        lock = threading.Lock()

        def worker(worker_index: int) -> None:
            try:
                barrier.wait()
                for offset in range(len(ranges)):
                    region = ranges[(worker_index + offset) % len(ranges)]
                    image = store.get_region(key, region)
                    with lock:
                        observed.append((region, image))
            except BaseException as error:
                with lock:
                    failures.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(herd)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures
        assert len(observed) == herd * len(ranges)
        for region, image in observed:
            assert image == serial[region], "parallel read diverged on %r" % (region,)

    def test_flight_wrapped_reads_decode_each_cell_once(self, stored):
        """SingleFlight + ImageStore: a coalesced herd costs one decode."""
        store, key = stored
        flight = SingleFlight()
        store.cache.clear()
        baseline_misses = store.cache_stats.misses

        herd = 12
        barrier = threading.Barrier(herd)
        results = []
        failures = []
        lock = threading.Lock()

        def worker() -> None:
            try:
                barrier.wait()
                image = flight.run(
                    ("region", key, 0, 1), lambda: store.get_region(key, (0, 1))
                )
                with lock:
                    results.append(image)
            except BaseException as error:
                with lock:
                    failures.append(error)

        threads = [threading.Thread(target=worker) for _ in range(herd)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures
        assert len(results) == herd
        assert all(image == results[0] for image in results)
        decodes = store.cache_stats.misses - baseline_misses
        # 3 planes x 1 stripe = 3 cells; coalescing may straddle at most
        # one flight boundary, so 2 flights x 3 cells is the hard ceiling.
        assert decodes <= 6
        claimed = flight.stats()["coalesced"]
        if claimed:
            # When coalescing is claimed, the followers did NOT decode:
            # leaders alone account for every cache miss.
            assert decodes <= 3 * flight.stats()["leaders"]