"""The zero-copy read path: mmap backends, batched range reads, the
encoded-bytes tier's store wiring and the header-prefix memo.

These tests pin the perf-critical contracts the serve tier relies on:

* mmap mode hands out ``memoryview`` slices over one shared mapping, and
  an outstanding view keeps reading the *old* bytes across an overwrite
  (``os.replace`` leaves the old inode mapped — pin-during-read);
* ``read_ranges`` answers a whole batch from one backend access per key
  (one open handle or one mapping), not one open per cell;
* the encoded tier sits under the decoded cache: a hit skips backend I/O
  entirely while still decoding, and both tiers invalidate on delete;
* the stream-prefix parse pays its double ``read_range`` at most once per
  key lifetime — the resolved prefix length is memoized.
"""

from __future__ import annotations

import pytest

from repro.core.cellgrid import encode_grid
from repro.core.config import CodecConfig
from repro.exceptions import BlobNotFoundError, StoreError
from repro.imaging.synthetic import generate_noise_image
from repro.store.backends import FilesystemBackend, SQLiteBackend
from repro.store.store import ImageStore

BLOB = bytes(range(256)) * 8


class _CountingBackend:
    """Wraps a backend, counting read_range/read_ranges calls."""

    def __init__(self, inner):
        self.inner = inner
        self.read_range_calls = []
        self.read_ranges_calls = []

    def read_range(self, key, offset, length):
        self.read_range_calls.append((key, offset, length))
        return self.inner.read_range(key, offset, length)

    def read_ranges(self, key, spans):
        self.read_ranges_calls.append((key, tuple(spans)))
        return self.inner.read_ranges(key, spans)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def _stream(seed=3, size=24, stripes=4):
    image = generate_noise_image(size=size, seed=seed)
    data, _ = encode_grid(image, CodecConfig.hardware(), stripes=stripes)
    return image, data


class TestMmapBackend:
    def test_read_range_returns_memoryview_over_one_mapping(self, tmp_path):
        backend = FilesystemBackend(tmp_path, use_mmap=True)
        backend.put("k", BLOB)
        view = backend.read_range("k", 100, 50)
        assert isinstance(view, memoryview)
        assert bytes(view) == BLOB[100:150]
        other = backend.read_range("k", 0, 16)
        assert bytes(other) == BLOB[:16]
        backend.close()

    def test_outstanding_view_survives_overwrite(self, tmp_path):
        backend = FilesystemBackend(tmp_path, use_mmap=True)
        backend.put("k", BLOB)
        view = backend.read_range("k", 0, 8)
        backend.put("k", b"\x00" * len(BLOB))
        # The old inode stays mapped while the view pins it; fresh reads
        # see the new bytes.
        assert bytes(view) == BLOB[:8]
        assert bytes(backend.read_range("k", 0, 8)) == b"\x00" * 8
        backend.close()

    def test_empty_blob_and_missing_key(self, tmp_path):
        backend = FilesystemBackend(tmp_path, use_mmap=True)
        backend.put("empty", b"")
        assert bytes(backend.read_range("empty", 0, 4)) == b""
        with pytest.raises(BlobNotFoundError):
            backend.read_range("missing", 0, 4)
        backend.close()

    def test_mapping_cache_is_bounded(self, tmp_path):
        backend = FilesystemBackend(tmp_path, use_mmap=True, mmap_blobs=2)
        for i in range(5):
            backend.put("k%d" % i, BLOB)
            assert bytes(backend.read_range("k%d" % i, 0, 4)) == BLOB[:4]
        assert len(backend._maps) <= 2
        backend.close()

    def test_invalid_map_budget_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            FilesystemBackend(tmp_path, use_mmap=True, mmap_blobs=0)


class TestBatchedRanges:
    @pytest.mark.parametrize("mode", ["filesystem", "filesystem-mmap", "sqlite"])
    def test_read_ranges_matches_read_range(self, tmp_path, mode):
        if mode == "sqlite":
            backend = SQLiteBackend(tmp_path / "blobs.sqlite")
        else:
            backend = FilesystemBackend(tmp_path, use_mmap=mode.endswith("mmap"))
        backend.put("k", BLOB)
        spans = [(0, 16), (100, 50), (len(BLOB) - 4, 100), (7, 0)]
        batched = backend.read_ranges("k", spans)
        singles = [backend.read_range("k", o, n) for o, n in spans]
        assert [bytes(b) for b in batched] == [bytes(s) for s in singles]
        backend.close()

    def test_read_ranges_missing_key(self, tmp_path):
        backend = FilesystemBackend(tmp_path)
        with pytest.raises(BlobNotFoundError):
            backend.read_ranges("missing", [(0, 4)])
        backend.close()


class TestEncodedTierWiring:
    def test_encoded_hit_skips_backend_io(self, tmp_path):
        image, data = _stream()
        store = ImageStore.open(
            tmp_path / "store", cache_bytes=0, encoded_cache_bytes=1 << 20
        )
        counting = _CountingBackend(store.backend)
        store.backend = counting
        key = store.put_stream(data)

        store.get_region(key, (0, 4))
        cold_batches = len(counting.read_ranges_calls)
        assert cold_batches > 0
        store.get_region(key, (0, 4))
        # Decoded cache is disabled; the encoded tier alone answers the
        # repeat without any further backend range reads.
        assert len(counting.read_ranges_calls) == cold_batches
        stats = store.encoded_cache.stats
        assert stats.hits > 0
        assert store.stats()["encoded_cache"]["hits"] == stats.hits

    def test_lookup_order_decoded_first(self, tmp_path):
        image, data = _stream(seed=9)
        store = ImageStore.open(
            tmp_path / "store", encoded_cache_bytes=1 << 20
        )
        key = store.put_stream(data)
        store.get_region(key, (0, 4))
        encoded_hits = store.encoded_cache.stats.hits
        store.get_region(key, (0, 4))
        # The decoded tier answered; the encoded tier was never consulted.
        assert store.encoded_cache.stats.hits == encoded_hits
        assert store.cache.stats.hits > 0

    def test_delete_invalidates_both_tiers(self, tmp_path):
        image, data = _stream(seed=5)
        store = ImageStore.open(
            tmp_path / "store", encoded_cache_bytes=1 << 20
        )
        key = store.put_stream(data)
        store.get_region(key, (0, 4))
        assert len(store.encoded_cache) > 0
        store.delete(key)
        assert all(k[0] != key for k in store.encoded_cache.keys())
        assert all(k[0] != key for k in store.cache.keys())

    def test_disabled_by_default(self, tmp_path):
        image, data = _stream(seed=7)
        store = ImageStore.open(tmp_path / "store")
        key = store.put_stream(data)
        store.get_region(key, (0, 4))
        assert len(store.encoded_cache) == 0
        assert store.stats()["encoded_cache"]["max_bytes"] == 0


class TestPrefixMemo:
    def test_double_probe_happens_at_most_once_per_key(self, tmp_path):
        image, data = _stream(seed=11, stripes=8)
        store = ImageStore.open(tmp_path / "store", cache_bytes=0)
        counting = _CountingBackend(store.backend)
        store.backend = counting
        key = store.put_stream(data)

        # First cold parse: the fixed-size probe may fall short of the
        # stripe table and pay a second, exact-length read.
        store._headers.pop(key, None)
        store.header(key)
        first = [c for c in counting.read_range_calls if c[1] == 0]
        counting.read_range_calls.clear()

        # Every later cold parse reads the memoized exact length at once.
        store._headers.pop(key, None)
        store.header(key)
        second = [c for c in counting.read_range_calls if c[1] == 0]
        assert len(second) == 1
        assert len(second) <= len(first)

    def test_memo_survives_cache_drop(self, tmp_path):
        image, data = _stream(seed=13, stripes=8)
        store = ImageStore.open(tmp_path / "store", cache_bytes=0)
        key = store.put_stream(data)
        # put_stream memoizes the parsed header directly; the prefix hint
        # is recorded by the first *cold* parse.
        store._headers.pop(key, None)
        store.header(key)
        assert key in store._prefix_lengths
        store._drop_cached(key)
        assert key in store._prefix_lengths
