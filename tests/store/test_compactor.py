"""Background recompaction: byte-identical decode, atomic swap, loud failure.

The acceptance cases from the data-plane issue live here: a corrupt blob
must make recompaction fail loudly *without touching the original bytes*,
and a swap that dies halfway (simulated by a backend whose ``put``
raises) must leave the key serving its original content.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import BitstreamError, StoreError
from repro.imaging.synthetic import generate_planar_image
from repro.store import FilesystemBackend, ImageStore, SQLiteBackend
from repro.store.compactor import Compactor, compact, compact_key

from tests.strategies import planar_images


@pytest.fixture(params=["filesystem", "sqlite"])
def store(request, tmp_path):
    if request.param == "filesystem":
        backend = FilesystemBackend(tmp_path / "blobs")
    else:
        backend = SQLiteBackend(tmp_path / "blobs.sqlite")
    with ImageStore(backend) as instance:
        yield instance


def _seed(store, name="lena", stripes=4):
    image = generate_planar_image(name, size=16)
    return store.put(image, stripes=stripes), image


class TestCompactKey:
    def test_restripe_preserves_key_and_pixels(self, store):
        key, image = _seed(store, stripes=4)
        row = compact_key(store, key, stripes=2)
        assert row.status == "swapped" and row.key == key
        assert store.get(key) == image
        assert store.header(key).stripe_count == 2
        entry = store.catalog.get(key)
        assert entry.stripes == 2 and entry.compacted_at is not None
        assert entry.encoded_bytes == store.backend.length(key)

    def test_engine_change_is_recorded(self, store):
        key, image = _seed(store)
        row = compact_key(store, key, engine="fast")
        assert row.status == "swapped"
        assert store.catalog.get(key).engine == "fast"
        assert store.get(key) == image

    def test_plane_delta_changes_bytes_not_pixels(self, store):
        key, image = _seed(store, name="peppers")
        before = store.backend.get(key)
        row = compact_key(store, key, plane_delta=True)
        assert row.status == "swapped"
        assert store.backend.get(key) != before
        assert store.get(key) == image

    def test_pinned_key_is_refused(self, store):
        key, image = _seed(store)
        before = store.backend.get(key)
        with store._pin(key):
            row = compact_key(store, key, stripes=2)
        assert row.status == "pinned"
        assert store.backend.get(key) == before
        assert store.get(key) == image

    def test_corrupt_blob_fails_loudly_without_touching_original(self, store):
        key, _ = _seed(store)
        original = store.backend.get(key)
        # Flip one payload byte past the header+index so the CRC check
        # trips during decode rather than the header parse.
        doctored = bytearray(original)
        doctored[-1] ^= 0xFF
        store.backend.put(key, bytes(doctored))
        store._drop_cached(key)
        with pytest.raises(BitstreamError):
            compact_key(store, key, stripes=2)
        # Loud failure, and the (doctored) blob bytes were not replaced.
        assert store.backend.get(key) == bytes(doctored)


class _FailingPutWrapper:
    """Backend wrapper whose ``put`` dies — a compactor killed mid-swap."""

    def __init__(self, inner):
        self._inner = inner

    def put(self, key, data):
        raise OSError("simulated crash during swap")

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestCompactBatch:
    def test_batch_compacts_all_live_keys(self, store):
        keys = {}
        for name in ("lena", "boat", "barb"):
            key, image = _seed(store, name=name, stripes=4)
            keys[key] = image
        dead, _ = _seed(store, name="zelda")
        store.soft_delete(dead, ttl_seconds=3600.0)
        result = compact(store, stripes=2)
        assert result.swapped == len(keys)
        assert all(row.key != dead for row in result.rows)
        for key, image in keys.items():
            assert store.get(key) == image
            assert store.header(key).stripe_count == 2

    def test_min_age_skips_recent_keys(self, store):
        key, _ = _seed(store)
        moment = store.catalog.get(key).created_at
        result = compact(store, stripes=2, min_age_seconds=3600.0, now=moment + 60.0)
        assert result.swapped == 0 and not result.rows
        result = compact(store, stripes=2, min_age_seconds=3600.0, now=moment + 7200.0)
        assert result.swapped == 1

    def test_failed_swap_leaves_original_readable(self, store):
        key, image = _seed(store)
        original = store.backend.get(key)
        store.wrap_backend(_FailingPutWrapper)
        result = compact(store, keys=[key], stripes=2)
        assert result.failed == 1
        assert result.rows[0].status == "error"
        assert "simulated crash" in result.rows[0].error
        # The original blob still serves, byte-for-byte untouched.
        assert store.backend.get(key) == original
        assert store.get(key) == image

    def test_result_report_and_json(self, store):
        key, _ = _seed(store, stripes=4)
        result = compact(store, keys=[key], stripes=2)
        document = result.as_json()
        assert document["swapped"] == 1
        assert result.bytes_saved == result.rows[0].bytes_saved
        assert "compact" in result.format_report()


class TestCompactorDaemon:
    def test_run_once_records_results(self, store):
        key, image = _seed(store, stripes=4)
        daemon = Compactor(store, stripes=2)
        result = daemon.run_once()
        assert result.swapped == 1
        assert daemon.results[-1] is result
        assert store.get(key) == image

    def test_start_stop_lifecycle(self, store):
        _seed(store, stripes=4)
        with Compactor(store, interval_seconds=0.01, stripes=2) as daemon:
            time.sleep(0.05)
        assert len(daemon.results) >= 1

    def test_invalid_interval_rejected(self, store):
        with pytest.raises(StoreError):
            Compactor(store, interval_seconds=0.0)


class TestRecompactionProperty:
    @settings(max_examples=25, deadline=None)
    @given(image=planar_images(max_side=10, max_planes=3), stripes=st.integers(1, 4))
    def test_recompaction_is_byte_identical_on_decode(self, image, stripes):
        """The headline invariant: any recompaction decodes to the same pixels."""
        stripes = min(stripes, image.height)  # a stripe needs at least one row
        with tempfile.TemporaryDirectory() as root:
            with ImageStore.open(Path(root) / "blobs") as store:
                key = store.put(image, stripes=1)
                row = compact_key(store, key, stripes=stripes)
                assert row.status == "swapped"
                assert store.get(key) == image
