"""Property and race tests of the soft-delete → GC lifecycle.

The referenced invariant (see ``docs/operations.md``): **a key is never
unreachable unless it is expired *and* purged**.  Before expiry a
tombstoned key is always readable with ``include_deleted=True`` and
always restorable; concurrent sweeps can never make a read observe torn
or corrupt data — a racing reader sees either the intact image or a
clean :class:`BlobNotFoundError`.
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import BlobNotFoundError, ReproError
from repro.imaging.synthetic import generate_planar_image
from repro.store import FilesystemBackend, ImageStore, SQLiteBackend
from repro.store.gc import sweep


@pytest.fixture(params=["filesystem", "sqlite"])
def store(request, tmp_path):
    if request.param == "filesystem":
        backend = FilesystemBackend(tmp_path / "blobs")
    else:
        backend = SQLiteBackend(tmp_path / "blobs.sqlite")
    with ImageStore(backend) as instance:
        yield instance


class TestLifecycleProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        ttl=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        delay=st.floats(min_value=0.0, max_value=2e6, allow_nan=False),
    )
    def test_key_never_unreachable_unless_expired_and_purged(self, ttl, delay):
        """For any (ttl, sweep delay): the key is gone iff delay >= ttl."""
        base = 1_000_000.0  # fixed epoch so ttl/delay arithmetic is exact
        with tempfile.TemporaryDirectory() as root:
            with ImageStore.open(Path(root) / "blobs") as store:
                image = generate_planar_image("lena", size=16)
                key = store.put(image, stripes=1)
                store.soft_delete(key, ttl_seconds=ttl, now=base)
                result = sweep(store, now=base + delay)
                # Expiry compares against the *stored* horizon base + ttl,
                # where a denormal-tiny ttl is absorbed by the epoch
                # (base + 1e-171 == base); `delay >= ttl` alone would
                # disagree with float arithmetic on exactly those inputs.
                if base + delay >= base + ttl:
                    # Expired and purged: now, and only now, unreachable.
                    assert result.purged == 1
                    with pytest.raises(BlobNotFoundError):
                        store.get(key, include_deleted=True)
                else:
                    # Within TTL: still reachable for operators, and a
                    # restore brings back the identical pixels.
                    assert result.purged == 0
                    assert store.get(key, include_deleted=True) == image
                    store.restore(key)
                    assert store.get(key) == image


class TestGcRacingReads:
    def _race(self, store, key, image, expect_missing_ok, sweep_now):
        """N reader threads hammer ``key`` while sweeps run concurrently."""
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    got = store.get(key, include_deleted=True)
                    if got != image:
                        errors.append("read returned wrong pixels")
                        return
                except BlobNotFoundError:
                    if not expect_missing_ok:
                        errors.append("live-within-TTL key became unreachable")
                        return
                except ReproError as exc:
                    errors.append("torn read: %r" % exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(25):
                sweep(store, now=sweep_now)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        return errors

    def test_within_ttl_reads_always_succeed(self, store):
        image = generate_planar_image("boat", size=16)
        key = store.put(image, stripes=2)
        store.soft_delete(key, ttl_seconds=1e9)
        errors = self._race(
            store, key, image, expect_missing_ok=False, sweep_now=None
        )
        assert errors == []
        assert store.backend.contains(key)

    def test_expired_reads_see_image_or_clean_miss(self, store):
        image = generate_planar_image("goldhill", size=16)
        key = store.put(image, stripes=2)
        store.soft_delete(key, ttl_seconds=0.0)
        entry = store.catalog.get(key)
        errors = self._race(
            store,
            key,
            image,
            expect_missing_ok=True,
            sweep_now=entry.purge_after + 1.0,
        )
        assert errors == []
        # The sweeps eventually won: the key is purged once readers stop.
        sweep(store, now=entry.purge_after + 1.0)
        assert not store.backend.contains(key)
