"""The encoded-bytes cache tier: same machinery, ``bytes`` payloads.

Mirrors ``tests/store/test_cache.py`` for the LRU/admission behaviours the
subclass inherits, then pins down what is specific to the encoded tier:
byte-length accounting (``len``, not ``ndarray.nbytes``), memoryview
admission copying the bytes out (so a cached cell never pins an mmap), and
the store wiring — lookup order, stats plumbing and invalidation.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigError
from repro.store.cache import DEFAULT_ENCODED_CACHE_BYTES, EncodedCellCache


class TestLruSemantics:
    def test_evicts_least_recently_used_first(self):
        cache = EncodedCellCache(max_bytes=24)
        cache.put("a", b"x" * 8)
        cache.put("b", b"y" * 8)
        cache.put("c", b"z" * 8)
        cache.get("a")  # refresh a; b is now the LRU victim
        cache.put("d", b"w" * 8)
        assert cache.get("b") is None
        assert cache.get("a") == b"x" * 8
        assert cache.stats.evictions == 1

    def test_byte_budget_uses_len(self):
        cache = EncodedCellCache(max_bytes=10)
        cache.put("a", b"12345")
        cache.put("b", b"67890")
        assert cache.stats.current_bytes == 10
        cache.put("c", b"!")
        assert cache.stats.current_bytes <= 10
        assert cache.stats.evictions >= 1

    def test_oversized_entry_is_not_cached(self):
        cache = EncodedCellCache(max_bytes=4)
        cache.put("big", b"x" * 5)
        assert len(cache) == 0

    def test_zero_budget_disables_caching(self):
        cache = EncodedCellCache(max_bytes=0)
        cache.put("a", b"xy")
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_default_budget_is_disabled(self):
        assert DEFAULT_ENCODED_CACHE_BYTES == 0
        cache = EncodedCellCache()
        cache.put("a", b"xy")
        assert cache.get("a") is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigError):
            EncodedCellCache(max_bytes=-1)


class TestValueHandling:
    def test_memoryview_is_copied_out_as_bytes(self):
        # A view over an mmap'ed blob must not survive into the cache —
        # cached payloads outlive backend swaps and file mappings.
        backing = bytearray(b"payload-bytes")
        cache = EncodedCellCache(max_bytes=64)
        cache.put("k", memoryview(backing))
        backing[:] = b"XXXXXXXXXXXXX"
        cached = cache.get("k")
        assert isinstance(cached, bytes)
        assert cached == b"payload-bytes"

    def test_invalidate_and_clear(self):
        cache = EncodedCellCache(max_bytes=64)
        cache.put("k", b"abc")
        cache.invalidate("k")
        assert cache.get("k") is None
        cache.put("k", b"abc")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.current_bytes == 0


class TestAdmissionPolicy:
    def test_second_touch_rejects_first_offer_and_admits_the_second(self):
        cache = EncodedCellCache(max_bytes=64, admission="second-touch")
        cache.put("k", b"abc")
        assert cache.get("k") is None
        cache.put("k", b"abc")
        assert cache.get("k") == b"abc"
        assert cache.stats.rejected == 1

    def test_a_miss_is_not_an_admission_touch(self):
        cache = EncodedCellCache(max_bytes=64, admission="second-touch")
        cache.get("k")
        cache.put("k", b"abc")
        assert cache.get("k") is None  # first offer was still rejected

    def test_stats_carry_the_policy(self):
        cache = EncodedCellCache(max_bytes=64, admission="second-touch")
        assert cache.stats.admission == "second-touch"
        assert cache.stats.as_json()["admission"] == "second-touch"
