"""Unit tests for the decoded-cell LRU cache: eviction order, byte bound,
counters — the properties the store's latency claims rest on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.store.cache import CellCache


def _cell(value: int, samples: int = 8) -> np.ndarray:
    return np.full((1, samples), value, dtype=np.int64)  # 8 bytes per sample


class TestLruSemantics:
    def test_evicts_least_recently_used_first(self):
        cache = CellCache(max_bytes=3 * 64)
        for key in ("a", "b", "c"):
            cache.put(key, _cell(1))
        cache.get("a")  # refresh: now b is the LRU entry
        cache.put("d", _cell(2))
        assert "b" not in cache
        assert all(key in cache for key in ("a", "c", "d"))
        assert cache.stats.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = CellCache(max_bytes=2 * 64)
        cache.put("a", _cell(1))
        cache.put("b", _cell(2))
        cache.put("a", _cell(3))  # re-put refreshes recency, keeps budget
        cache.put("c", _cell(4))
        assert "b" not in cache
        assert (cache.get("a") == 3).all()

    def test_byte_budget_is_enforced(self):
        cache = CellCache(max_bytes=1000)
        for index in range(50):
            cache.put(index, _cell(index))  # 64 bytes each
        assert cache.stats.current_bytes <= 1000
        assert len(cache) == 1000 // 64
        # The survivors are exactly the most recently inserted keys.
        assert set(cache.keys()) == set(range(50 - 1000 // 64, 50))

    def test_oversized_entry_is_not_cached(self):
        cache = CellCache(max_bytes=100)
        cache.put("small", _cell(1))  # 64 bytes
        cache.put("huge", np.zeros((100, 100), dtype=np.int64))
        assert "huge" not in cache
        assert "small" in cache  # nothing was evicted for the oversized entry

    def test_zero_budget_disables_caching(self):
        cache = CellCache(max_bytes=0)
        cache.put("a", _cell(1))
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigError):
            CellCache(max_bytes=-1)


class TestCounters:
    def test_hit_miss_accounting(self):
        cache = CellCache(max_bytes=1024)
        assert cache.get("a") is None
        cache.put("a", _cell(1))
        assert cache.get("a") is not None
        assert cache.get("b") is None
        stats = cache.stats
        assert (stats.hits, stats.misses) == (1, 2)
        assert stats.hit_rate == pytest.approx(1 / 3)

    def test_clear_drops_entries_keeps_counters(self):
        cache = CellCache(max_bytes=1024)
        cache.put("a", _cell(1))
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.current_bytes == 0
        assert cache.stats.hits == 1

    def test_cached_arrays_are_read_only(self):
        cache = CellCache(max_bytes=1024)
        cache.put("a", _cell(1))
        array = cache.get("a")
        with pytest.raises(ValueError):
            array[0, 0] = 99

    def test_stats_as_json_round_trips(self):
        cache = CellCache(max_bytes=1024)
        cache.put("a", _cell(1))
        payload = cache.stats.as_json()
        assert payload["entries"] == 1
        assert payload["current_bytes"] == 64
        assert payload["max_bytes"] == 1024


class TestAdmissionPolicy:
    def test_always_is_the_default(self):
        cache = CellCache(max_bytes=1024)
        assert cache.admission == "always"
        cache.put("a", _cell(1))
        assert "a" in cache

    def test_unknown_policy_is_rejected(self):
        with pytest.raises(ConfigError):
            CellCache(max_bytes=1024, admission="sometimes")

    def test_second_touch_rejects_first_offer_and_admits_the_second(self):
        cache = CellCache(max_bytes=1024, admission="second-touch")
        cache.put("a", _cell(1))
        assert "a" not in cache
        assert cache.stats.rejected == 1
        cache.put("a", _cell(1))
        assert "a" in cache
        assert cache.get("a") is not None

    def test_a_miss_is_not_an_admission_touch(self):
        """The store's real shape is get-miss -> decode -> put on EVERY
        read, so the miss must not count as a touch — otherwise the first
        request would always self-admit and the policy would be a no-op."""
        cache = CellCache(max_bytes=1024, admission="second-touch")
        assert cache.get("a") is None
        cache.put("a", _cell(1))
        assert "a" not in cache
        assert cache.stats.rejected == 1
        # Second request cycle: miss again, decode again, offer again.
        assert cache.get("a") is None
        cache.put("a", _cell(1))
        assert "a" in cache

    def test_one_touch_scan_cannot_evict_the_hot_set(self):
        cache = CellCache(max_bytes=2 * 64, admission="second-touch")
        for key in ("hot-1", "hot-2"):
            cache.put(key, _cell(1))
            cache.put(key, _cell(1))
        assert len(cache) == 2
        for scan_key in range(50):  # a cold sweep, every key seen once
            cache.put(("scan", scan_key), _cell(2))
        assert all(key in cache for key in ("hot-1", "hot-2"))
        assert cache.stats.evictions == 0
        # 2 first-touch rejections for the hot keys, 50 for the scan.
        assert cache.stats.rejected == 52

    def test_invalidate_forgets_the_ghost_too(self):
        cache = CellCache(max_bytes=1024, admission="second-touch")
        cache.put("a", _cell(1))  # ghost recorded
        cache.invalidate("a")
        cache.put("a", _cell(1))  # first touch again
        assert "a" not in cache

    def test_stats_carry_the_policy(self):
        cache = CellCache(max_bytes=1024, admission="second-touch")
        payload = cache.stats.as_json()
        assert payload["admission"] == "second-touch"
        assert payload["rejected"] == 0
