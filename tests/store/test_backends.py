"""Unit tests for the blob backends: both implementations must be
observably interchangeable (same contract, same errors)."""

from __future__ import annotations

import pytest

from repro.exceptions import BlobNotFoundError, StoreError
from repro.store.backends import (
    FilesystemBackend,
    SQLiteBackend,
    open_backend,
)


@pytest.fixture(params=["filesystem", "sqlite"])
def backend(request, tmp_path):
    if request.param == "filesystem":
        instance = FilesystemBackend(tmp_path / "blobs")
    else:
        instance = SQLiteBackend(tmp_path / "blobs.sqlite")
    yield instance
    instance.close()


BLOB = bytes(range(256)) * 4


class TestContract:
    def test_round_trip(self, backend):
        backend.put("abc123", BLOB)
        assert backend.get("abc123") == BLOB
        assert backend.length("abc123") == len(BLOB)
        assert backend.contains("abc123")
        assert not backend.contains("missing")

    def test_range_reads(self, backend):
        backend.put("k1", BLOB)
        assert backend.read_range("k1", 0, 16) == BLOB[:16]
        assert backend.read_range("k1", 100, 50) == BLOB[100:150]
        # Reads past EOF clamp instead of erroring, like file reads do.
        assert backend.read_range("k1", len(BLOB) - 4, 100) == BLOB[-4:]

    def test_overwrite_is_idempotent(self, backend):
        backend.put("k1", b"old")
        backend.put("k1", b"newer")
        assert backend.get("k1") == b"newer"
        assert backend.length("k1") == 5

    def test_keys_and_delete(self, backend):
        for key in ("alpha", "beta", "gamma"):
            backend.put(key, key.encode())
        assert sorted(backend.keys()) == ["alpha", "beta", "gamma"]
        backend.delete("beta")
        assert sorted(backend.keys()) == ["alpha", "gamma"]

    def test_unknown_keys_raise(self, backend):
        for action in (
            lambda: backend.get("nope"),
            lambda: backend.read_range("nope", 0, 4),
            lambda: backend.length("nope"),
            lambda: backend.delete("nope"),
        ):
            with pytest.raises(BlobNotFoundError):
                action()

    def test_hostile_keys_rejected(self, backend):
        for bad in ("", "../escape", "a/b", "a b", "key\x00"):
            with pytest.raises(StoreError):
                backend.put(bad, b"x")

    def test_stats(self, backend):
        backend.put("k1", b"abcd")
        backend.put("k2", b"efgh" * 10)
        assert backend.stats() == {"blobs": 2, "bytes": 44}


class TestOpenBackend:
    def test_directory_opens_filesystem(self, tmp_path):
        backend = open_backend(tmp_path / "store-dir")
        assert isinstance(backend, FilesystemBackend)
        backend.close()

    @pytest.mark.parametrize("suffix", [".sqlite", ".sqlite3", ".db"])
    def test_sqlite_suffixes_open_sqlite(self, tmp_path, suffix):
        backend = open_backend(tmp_path / ("store" + suffix))
        assert isinstance(backend, SQLiteBackend)
        backend.close()

    def test_existing_sqlite_file_reopens_as_sqlite(self, tmp_path):
        path = tmp_path / "blobs.sqlite"
        first = open_backend(path)
        first.put("k1", b"persisted")
        first.close()
        second = open_backend(path)
        assert second.get("k1") == b"persisted"
        second.close()

    def test_filesystem_persists_across_opens(self, tmp_path):
        root = tmp_path / "store-dir"
        first = open_backend(root)
        first.put("deadbeef", b"payload")
        first.close()
        second = open_backend(root)
        assert list(second.keys()) == ["deadbeef"]
        second.close()
