"""Integration tests for :class:`repro.store.store.ImageStore`.

The acceptance-defining behaviours live here: serving paths read only the
bytes their query needs (never the whole blob), corrupt blobs are rejected
through the index CRC before any entropy decoding, and batched requests
are observably equivalent to sequential ones.
"""

from __future__ import annotations

import pytest

from repro.core.components import decode_plane, decode_region, encode_planar
from repro.core.bitstream import CodecId, pack_stream
from repro.exceptions import (
    BitstreamError,
    BlobNotFoundError,
    ConfigError,
    StoreError,
)
from repro.imaging.synthetic import generate_image, generate_planar_image
from repro.store import FilesystemBackend, ImageStore, SQLiteBackend


@pytest.fixture(scope="module")
def rgb_image():
    return generate_planar_image("lena", size=24)


@pytest.fixture(params=["filesystem", "sqlite"])
def store(request, tmp_path):
    if request.param == "filesystem":
        backend = FilesystemBackend(tmp_path / "blobs")
    else:
        backend = SQLiteBackend(tmp_path / "blobs.sqlite")
    with ImageStore(backend) as instance:
        yield instance


class TestIngest:
    def test_put_is_content_addressed(self, store, rgb_image):
        key = store.put(rgb_image, stripes=2)
        assert store.put(rgb_image, stripes=2) == key  # same bytes, same key
        assert store.put(rgb_image, stripes=3) != key  # different stream
        assert store.contains(key)

    def test_put_stream_matches_direct_encoding(self, store, rgb_image):
        stream = encode_planar(rgb_image, stripes=2)
        key = store.put_stream(stream)
        assert store.put(rgb_image, stripes=2) == key
        assert store.backend.get(key) == stream

    def test_put_stream_rejects_foreign_codecs(self, store):
        stream = pack_stream(CodecId.JPEG_LS, 4, 4, 8, b"xxxx")
        with pytest.raises(StoreError):
            store.put_stream(stream)

    def test_put_stream_rejects_corrupt_containers(self, store):
        with pytest.raises(BitstreamError):
            store.put_stream(b"RPLC garbage that is not a container")

    def test_gray_images_are_storable(self, store):
        gray = generate_image("boat", size=20)
        key = store.put(gray, stripes=2)
        assert store.get(key) == gray
        assert store.get_plane(key, 0) == gray


class TestServing:
    def test_get_round_trips(self, store, rgb_image):
        key = store.put(rgb_image, stripes=4, plane_delta=True)
        assert store.get(key) == rgb_image

    @pytest.mark.parametrize("plane_delta", [False, True])
    def test_get_plane_matches_in_memory_decoder(self, store, rgb_image, plane_delta):
        key = store.put(rgb_image, stripes=4, plane_delta=plane_delta)
        stream = store.backend.get(key)
        for plane in range(rgb_image.num_planes):
            assert store.get_plane(key, plane) == decode_plane(stream, plane)

    @pytest.mark.parametrize("plane_delta", [False, True])
    def test_get_region_matches_in_memory_decoder(self, store, rgb_image, plane_delta):
        key = store.put(rgb_image, stripes=4, plane_delta=plane_delta)
        stream = store.backend.get(key)
        for stripe_range in ((0, 1), (1, 3), (0, 4)):
            assert store.get_region(key, stripe_range) == decode_region(
                stream, stripe_range
            )

    def test_batched_requests_equal_sequential_gets(self, store, rgb_image):
        key = store.put(rgb_image, stripes=4)
        ranges = [(0, 2), (1, 4), (0, 2), (3, 4)]
        batched = store.get_regions(key, ranges)
        sequential = [store.get_region(key, r) for r in ranges]
        assert batched == sequential

    def test_batched_requests_decode_shared_cells_once(self, store, rgb_image):
        key = store.put(rgb_image, stripes=4)
        store.cache.clear()
        before = store.cache.stats.misses
        store.get_regions(key, [(0, 2), (1, 3), (0, 3), (0, 3)])
        # Distinct cells across the batch: stripes {0,1,2} x 3 planes.
        assert store.cache.stats.misses - before == 9

    def test_serving_never_fetches_the_whole_blob(self, store, rgb_image):
        key = store.put(rgb_image, stripes=4)
        store._headers.clear()
        store.cache.clear()
        store.backend.get = None  # poison the whole-blob path
        assert store.get_plane(key, 1) == rgb_image.plane(1)
        assert store.get_region(key, (1, 3)).plane(0) is not None
        store.get_regions(key, [(0, 2), (2, 4)])

    def test_out_of_range_requests_raise_config_error(self, store, rgb_image):
        key = store.put(rgb_image, stripes=2)
        with pytest.raises(ConfigError):
            store.get_plane(key, 3)
        with pytest.raises(ConfigError):
            store.get_region(key, (0, 5))
        with pytest.raises(ConfigError):
            store.get_regions(key, [(1, 1)])

    def test_unknown_key_raises(self, store):
        with pytest.raises(BlobNotFoundError):
            store.get("0" * 64)
        with pytest.raises(BlobNotFoundError):
            store.get_plane("0" * 64, 0)


class TestCorruption:
    def _corrupt_payload_byte(self, store, key):
        """Flip one payload byte of the stored blob, keeping the index."""
        data = bytearray(store.backend.get(key))
        header_end = store.header(key).payload_offset
        data[header_end + 5] ^= 0xFF
        store.backend.put(key, bytes(data))

    def test_crc_rejects_corrupt_cells_on_read(self, store, rgb_image):
        key = store.put(rgb_image, stripes=2)
        self._corrupt_payload_byte(store, key)
        store.cache.clear()
        with pytest.raises(BitstreamError, match="CRC mismatch"):
            store.get_region(key, (0, 1))

    def test_untouched_cells_still_serve_after_corruption(self, store, rgb_image):
        key = store.put(rgb_image, stripes=2)
        self._corrupt_payload_byte(store, key)  # corrupts plane 0, stripe 0
        store.cache.clear()
        # The last plane's cells are intact and independently coded.
        assert store.get_plane(key, 2) == rgb_image.plane(2)


class TestLifecycle:
    def test_delete_invalidates_cached_cells(self, store, rgb_image):
        key = store.put(rgb_image, stripes=2)
        store.get_region(key, (0, 2))
        assert any(cell_key[0] == key for cell_key in store.cache.keys())
        store.delete(key)
        assert not store.contains(key)
        assert not any(cell_key[0] == key for cell_key in store.cache.keys())
        with pytest.raises(BlobNotFoundError):
            store.get_plane(key, 0)

    def test_header_is_memoized(self, store, rgb_image):
        key = store.put(rgb_image, stripes=2)
        assert store.header(key) is store.header(key)

    def test_stats_shape(self, store, rgb_image):
        key = store.put(rgb_image, stripes=2)
        store.get_region(key, (0, 1))
        payload = store.stats()
        assert payload["backend"]["blobs"] == 1
        assert payload["cache"]["misses"] >= 1
        assert payload["engine"] == "reference"

    def test_engine_dispatch_serves_identically(self, tmp_path, rgb_image):
        with ImageStore(FilesystemBackend(tmp_path / "fast"), engine="fast") as fast:
            with ImageStore(
                FilesystemBackend(tmp_path / "ref"), engine="reference"
            ) as reference:
                fast_key = fast.put(rgb_image, stripes=2)
                reference_key = reference.put(rgb_image, stripes=2)
                # Registry engines are byte-identical, so the content hash agrees.
                assert fast_key == reference_key
                assert fast.get_region(fast_key, (0, 2)) == reference.get_region(
                    reference_key, (0, 2)
                )


class TestCacheAdmissionOnTheServingPath:
    """Regression: second-touch must engage on the REAL read path.

    Every store read performs cache.get (miss) -> decode -> cache.put; if
    the miss counted as a touch, the first request of any cell would
    self-admit and one-touch scans would evict the hot set the policy
    exists to protect.
    """

    def test_first_request_is_rejected_second_is_admitted(self, tmp_path, rgb_image):
        store = ImageStore.open(
            tmp_path / "admission", cache_admission="second-touch"
        )
        key = store.put(rgb_image, stripes=4)
        expected = store.get_region(key, (0, 1))  # request 1: decode, reject
        assert len(store.cache) == 0
        assert store.cache_stats.rejected > 0
        assert store.get_region(key, (0, 1)) == expected  # request 2: admit
        assert len(store.cache) > 0
        hits_before = store.cache_stats.hits
        assert store.get_region(key, (0, 1)) == expected  # request 3: hit
        assert store.cache_stats.hits > hits_before
        store.close()

    def test_one_touch_region_sweep_cannot_evict_the_hot_set(self, tmp_path, rgb_image):
        # A budget that fits exactly the hot region's cells: 3 planes of
        # one stripe, each (24/4 rows) x 24 width x 8-byte samples.
        cell_bytes = 6 * 24 * 8
        store = ImageStore.open(
            tmp_path / "scan",
            cache_bytes=3 * cell_bytes,
            cache_admission="second-touch",
        )
        key = store.put(rgb_image, stripes=4)
        for _ in range(2):  # two touches: the hot region earns residency
            store.get_region(key, (1, 2))
        hot_keys = set(store.cache.keys())
        assert len(hot_keys) == 3
        for stripe in (0, 2, 3):  # a one-touch sweep over the cold regions
            store.get_region(key, (stripe, stripe + 1))
        assert set(store.cache.keys()) == hot_keys
        assert store.cache_stats.evictions == 0
        store.close()
