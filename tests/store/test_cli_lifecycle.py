"""The ``repro-store`` data-plane subcommands, driven end to end.

Exercises the put → ls → rm → gc → compact lifecycle on both backends
through the real CLI entry point, plus the error convention the issue
asks for: failures exit non-zero with exactly one ``ExceptionName:
message`` line on stderr.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.imaging.pnm import write_ppm
from repro.imaging.synthetic import generate_planar_image
from repro.store.cli import store_main


@pytest.fixture(params=["filesystem", "sqlite"])
def root(request, tmp_path):
    if request.param == "filesystem":
        return str(tmp_path / "blobs")
    return str(tmp_path / "blobs.sqlite")


def _ppm(tmp_path, name="lena", size=16):
    image = generate_planar_image(name, size=size)
    buffer = io.BytesIO()
    write_ppm(image, buffer)
    path = tmp_path / ("%s.ppm" % name)
    path.write_bytes(buffer.getvalue())
    return path, image


def _put(root, tmp_path, capsys, name="lena", tags=()):
    path, _ = _ppm(tmp_path, name=name)
    argv = ["put", root, str(path), "--stripes", "2"]
    for tag in tags:
        argv += ["--tag", tag]
    assert store_main(argv) == 0
    return capsys.readouterr().out.split()[0]


class TestLifecycle:
    def test_put_ls_rm_gc_roundtrip(self, root, tmp_path, capsys):
        key = _put(root, tmp_path, capsys, tags=["set=bench", "subject=lena"])

        # ls shows the live entry, and --json carries the pagination shape.
        assert store_main(["ls", root]) == 0
        assert key in capsys.readouterr().out
        assert store_main(["ls", root, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["total"] == 1
        assert document["entries"][0]["key"] == key
        assert document["entries"][0]["tags"] == {
            "set": "bench", "subject": "lena"
        }

        # Filters: matching tag hits, missing tag misses, offset past end.
        assert store_main(["ls", root, "--tag", "set=bench", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["total"] == 1
        assert store_main(["ls", root, "--tag", "no-such-tag", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["total"] == 0
        assert store_main(["ls", root, "--offset", "10", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["entries"] == [] and document["total"] == 1

        # rm tombstones; the key leaves ls but shows in --deleted-only.
        assert store_main(["rm", root, key, "--ttl", "0"]) == 0
        capsys.readouterr()
        assert store_main(["ls", root, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["total"] == 0
        assert store_main(["ls", root, "--deleted-only", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["total"] == 1

        # gc --dry-run reports the candidate without purging it ...
        assert store_main(["gc", root, "--dry-run", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["dry_run"] is True and report["purged"] == 1
        assert store_main(["ls", root, "--deleted-only", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["total"] == 1

        # ... and the real sweep reclaims it.
        assert store_main(["gc", root, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["purged"] == 1 and report["purged_keys"] == [key]
        assert store_main(["ls", root, "--include-deleted", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["total"] == 0

    def test_compact_restripes_in_place(self, root, tmp_path, capsys):
        key = _put(root, tmp_path, capsys, name="boat")
        assert store_main(["compact", root, "--stripes", "4", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["swapped"] == 1
        assert store_main(["ls", root, "--json"]) == 0
        entry = json.loads(capsys.readouterr().out)["entries"][0]
        assert entry["key"] == key and entry["stripes"] == 4
        assert entry["compacted_at"] is not None

    def test_stats_includes_catalog_counts(self, root, tmp_path, capsys):
        _put(root, tmp_path, capsys)
        assert store_main(["stats", root]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["catalog"]["live"] == 1


class TestErrorConvention:
    def _assert_one_line_error(self, capsys, exception_name):
        captured = capsys.readouterr()
        lines = captured.err.strip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("%s:" % exception_name)

    def test_rm_unknown_key_is_one_line(self, root, capsys):
        assert store_main(["rm", root, "0" * 64]) == 1
        self._assert_one_line_error(capsys, "BlobNotFoundError")

    def test_get_soft_deleted_key_is_one_line(self, root, tmp_path, capsys):
        key = _put(root, tmp_path, capsys)
        assert store_main(["rm", root, key]) == 0
        capsys.readouterr()
        out_path = str(tmp_path / "out.ppm")
        assert store_main(["get", root, key, out_path]) == 1
        self._assert_one_line_error(capsys, "BlobNotFoundError")

    def test_stats_on_non_database_file_is_one_line(self, tmp_path, capsys):
        junk = tmp_path / "junk.sqlite"
        junk.write_bytes(b"this is not a database")
        assert store_main(["stats", str(junk)]) == 1
        self._assert_one_line_error(capsys, "StoreError")

    def test_bad_tag_filter_is_usage_error(self, root, capsys):
        with pytest.raises(SystemExit) as excinfo:
            store_main(["ls", root, "--tag", "=value"])
        assert excinfo.value.code == 2
