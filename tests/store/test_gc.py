"""The tombstone GC sweep: safety first, reclamation second.

The invariants under test mirror the module contract: a sweep never
collects a live key, never collects a tombstone still inside its TTL,
never collects a key a reader currently pins, and a dry run reports what
a real sweep would do without touching anything.
"""

from __future__ import annotations

import time

import pytest

from repro.exceptions import BlobNotFoundError, StoreError
from repro.imaging.synthetic import generate_planar_image
from repro.store import FilesystemBackend, ImageStore, SQLiteBackend
from repro.store.gc import GcDaemon, sweep


@pytest.fixture(params=["filesystem", "sqlite"])
def store(request, tmp_path):
    if request.param == "filesystem":
        backend = FilesystemBackend(tmp_path / "blobs")
    else:
        backend = SQLiteBackend(tmp_path / "blobs.sqlite")
    with ImageStore(backend) as instance:
        yield instance


def _seed(store, name="lena"):
    image = generate_planar_image(name, size=16)
    return store.put(image, stripes=2), image


class TestSweep:
    def test_live_keys_are_never_scanned(self, store):
        key, image = _seed(store)
        result = sweep(store)
        assert result.scanned == 0 and result.purged == 0
        assert store.get(key) == image

    def test_expired_tombstone_is_purged(self, store):
        key, _ = _seed(store)
        store.soft_delete(key, ttl_seconds=0.0)
        blob_bytes = store.backend.length(key)
        result = sweep(store, now=time.time() + 1.0)
        assert result.scanned == 1 and result.expired == 1
        assert result.purged == 1 and list(result.purged_keys) == [key]
        assert result.bytes_reclaimed == blob_bytes
        assert not store.backend.contains(key)
        assert store.catalog.get(key) is None
        with pytest.raises(BlobNotFoundError):
            store.get(key, include_deleted=True)

    def test_tombstone_within_ttl_is_left_alone(self, store):
        key, image = _seed(store)
        store.soft_delete(key, ttl_seconds=3600.0)
        result = sweep(store)
        assert result.scanned == 1 and result.within_ttl == 1
        assert result.purged == 0
        # Still readable for operators until the TTL elapses.
        assert store.get(key, include_deleted=True) == image
        with pytest.raises(BlobNotFoundError):
            store.get(key)

    def test_pinned_key_is_skipped_then_purged_after_unpin(self, store):
        key, _ = _seed(store)
        store.soft_delete(key, ttl_seconds=0.0)
        later = time.time() + 1.0
        with store._pin(key):
            result = sweep(store, now=later)
            assert result.skipped_pinned == 1 and result.purged == 0
            assert store.backend.contains(key)
        result = sweep(store, now=later)
        assert result.purged == 1
        assert not store.backend.contains(key)

    def test_dry_run_reports_without_touching(self, store):
        key, image = _seed(store)
        store.soft_delete(key, ttl_seconds=0.0)
        result = sweep(store, now=time.time() + 1.0, dry_run=True)
        assert result.dry_run and result.purged == 1
        assert result.bytes_reclaimed == store.backend.length(key)
        # Nothing actually moved: blob and tombstone both intact.
        assert store.backend.contains(key)
        assert store.catalog.get(key) is not None
        assert store.get(key, include_deleted=True) == image

    def test_sweep_is_idempotent(self, store):
        key, _ = _seed(store)
        store.soft_delete(key, ttl_seconds=0.0)
        later = time.time() + 1.0
        assert sweep(store, now=later).purged == 1
        again = sweep(store, now=later)
        assert again.scanned == 0 and again.purged == 0

    def test_restore_before_expiry_keeps_the_key(self, store):
        key, image = _seed(store)
        store.soft_delete(key, ttl_seconds=3600.0)
        store.restore(key)
        result = sweep(store, now=time.time() + 7200.0)
        assert result.scanned == 0 and result.purged == 0
        assert store.get(key) == image

    def test_report_and_json(self, store):
        key, _ = _seed(store)
        store.soft_delete(key, ttl_seconds=0.0)
        result = sweep(store, now=time.time() + 1.0)
        document = result.as_json()
        assert document["purged"] == 1 and document["purged_keys"] == [key]
        assert "tombstone(s) scanned" in result.format_report()


class TestDaemon:
    def test_run_once_records_results(self, store):
        key, _ = _seed(store)
        store.soft_delete(key, ttl_seconds=0.0)
        daemon = GcDaemon(store, interval_seconds=60.0)
        result = daemon.run_once(now=time.time() + 1.0)
        assert result.purged == 1
        assert daemon.results[-1] is result

    def test_start_stop_lifecycle(self, store):
        with GcDaemon(store, interval_seconds=0.01) as daemon:
            time.sleep(0.05)
        assert len(daemon.results) >= 1

    def test_invalid_configuration_rejected(self, store):
        with pytest.raises(StoreError):
            GcDaemon(store, interval_seconds=0.0)
        daemon = GcDaemon(store, interval_seconds=60.0)
        daemon.start()
        try:
            with pytest.raises(StoreError):
                daemon.start()
        finally:
            daemon.stop()
