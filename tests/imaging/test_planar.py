"""Tests for the multi-component image container and PPM/PAM I/O."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.exceptions import ImageFormatError
from repro.imaging.image import GrayImage
from repro.imaging.planar import PlanarImage
from repro.imaging.pnm import (
    read_image,
    read_pam,
    read_ppm,
    write_image,
    write_pam,
    write_ppm,
)
from repro.imaging.synthetic import generate_image, generate_planar_image


@pytest.fixture(scope="module")
def rgb() -> PlanarImage:
    return generate_planar_image("peppers", size=16)


class TestPlanarImage:
    def test_basic_accessors(self, rgb):
        assert rgb.width == 16 and rgb.height == 16
        assert rgb.num_planes == 3
        assert rgb.bit_depth == 8
        assert rgb.sample_count == 3 * rgb.pixel_count
        assert rgb.plane_names == ("R", "G", "B")
        assert rgb.max_value == 255

    def test_plane_bounds_checked(self, rgb):
        with pytest.raises(ImageFormatError):
            rgb.plane(3)
        with pytest.raises(ImageFormatError):
            rgb.plane(-1)

    def test_mismatched_planes_rejected(self):
        a = GrayImage.constant(4, 4, 1)
        for bad in (
            GrayImage.constant(5, 4, 1),
            GrayImage.constant(4, 5, 1),
            GrayImage.constant(4, 4, 1, bit_depth=10),
        ):
            with pytest.raises(ImageFormatError):
                PlanarImage([a, bad])

    def test_zero_planes_rejected(self):
        with pytest.raises(ImageFormatError):
            PlanarImage([])

    def test_array_roundtrip(self, rgb):
        array = rgb.to_array()
        assert array.shape == (16, 16, 3)
        assert PlanarImage.from_array(array) == rgb

    def test_interleaved_order(self):
        image = PlanarImage.rgb(
            GrayImage.constant(2, 1, 10),
            GrayImage.constant(2, 1, 20),
            GrayImage.constant(2, 1, 30),
        )
        assert image.interleaved_samples() == [10, 20, 30, 10, 20, 30]

    def test_gray_unwrap(self):
        gray = generate_image("lena", size=16)
        wrapped = PlanarImage.from_gray(gray)
        assert wrapped.gray() == gray
        with pytest.raises(ImageFormatError):
            PlanarImage([gray, gray]).gray()

    def test_equality_ignores_names(self, rgb):
        renamed = PlanarImage(
            [plane.with_name("x%d" % k) for k, plane in enumerate(rgb.planes())],
            name="other",
        )
        assert renamed == rgb
        assert hash(renamed) != hash(None)

    def test_repr_mentions_geometry(self, rgb):
        assert "16x16x3" in repr(rgb)


class TestPpmIo:
    @pytest.mark.parametrize("binary", [True, False])
    def test_roundtrip(self, rgb, binary, tmp_path):
        path = tmp_path / "image.ppm"
        write_ppm(rgb, path, binary=binary)
        assert read_ppm(path) == rgb

    def test_16bit_roundtrip(self, tmp_path):
        rng = np.random.default_rng(5)
        image = PlanarImage.from_array(
            rng.integers(0, 1 << 12, size=(6, 7, 3)), bit_depth=12
        )
        path = tmp_path / "deep.ppm"
        write_ppm(image, path)
        assert read_ppm(path) == image

    def test_rejects_wrong_plane_count(self, tmp_path):
        image = generate_planar_image("lena", size=16, planes=2)
        with pytest.raises(ImageFormatError):
            write_ppm(image, tmp_path / "bad.ppm")

    def test_truncated_payload(self, rgb):
        buffer = io.BytesIO()
        write_ppm(rgb, buffer)
        data = buffer.getvalue()
        with pytest.raises(ImageFormatError):
            read_ppm(io.BytesIO(data[:-5]))

    def test_bad_magic(self):
        with pytest.raises(ImageFormatError):
            read_ppm(io.BytesIO(b"P5\n2 2\n255\n----"))


class TestPamIo:
    @pytest.mark.parametrize("planes", [1, 2, 3, 5])
    def test_roundtrip(self, planes, tmp_path):
        image = generate_planar_image("boat", size=16, planes=planes)
        path = tmp_path / "image.pam"
        write_pam(image, path)
        assert read_pam(path) == image

    def test_header_fields_required(self):
        with pytest.raises(ImageFormatError):
            read_pam(io.BytesIO(b"P7\nWIDTH 2\nHEIGHT 2\nENDHDR\n\x00" * 1))

    def test_missing_endhdr(self):
        with pytest.raises(ImageFormatError):
            read_pam(io.BytesIO(b"P7\nWIDTH 2\nHEIGHT 2\nDEPTH 1\nMAXVAL 255\n"))


class TestAutoDetection:
    def test_read_image_dispatches(self, rgb, tmp_path):
        gray = generate_image("zelda", size=16)
        gray_path = tmp_path / "g.pgm"
        rgb_path = tmp_path / "c.ppm"
        band_path = tmp_path / "b.pam"
        bands = generate_planar_image("barb", size=16, planes=4)
        write_image(gray, gray_path)
        write_image(rgb, rgb_path)
        write_image(bands, band_path)
        assert read_image(gray_path) == gray
        assert read_image(rgb_path) == rgb
        assert read_image(band_path) == bands

    def test_write_image_pam_suffix_forces_pam(self, rgb, tmp_path):
        path = tmp_path / "forced.pam"
        write_image(rgb, path)
        assert read_pam(path) == rgb

    def test_write_image_pam_suffix_forces_pam_for_gray(self, tmp_path):
        gray = generate_image("boat", size=16)
        path = tmp_path / "forced-gray.pam"
        write_image(gray, path)
        assert read_pam(path).gray() == gray

    def test_unknown_magic(self):
        with pytest.raises(ImageFormatError):
            read_image(io.BytesIO(b"GIF89a..."))
