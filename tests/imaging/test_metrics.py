"""Tests for the image/bitstream metrics."""

import pytest

from repro.exceptions import ImageFormatError
from repro.imaging.image import GrayImage
from repro.imaging.metrics import (
    average_bits_per_pixel,
    bits_per_pixel,
    compression_ratio,
    first_order_entropy,
    gradient_statistics,
    histogram,
    images_identical,
    mean_absolute_error,
    residual_entropy,
)


class TestEntropy:
    def test_constant_image_has_zero_entropy(self):
        assert first_order_entropy(GrayImage.constant(8, 8, 42)) == 0.0

    def test_two_equally_likely_values_give_one_bit(self):
        image = GrayImage(2, 1, [0, 255])
        assert abs(first_order_entropy(image) - 1.0) < 1e-12

    def test_uniform_histogram_gives_log2_levels(self):
        image = GrayImage(4, 1, [0, 1, 2, 3])
        assert abs(first_order_entropy(image) - 2.0) < 1e-12

    def test_residual_entropy_of_ramp_is_near_zero(self):
        image = GrayImage.from_rows([[0, 1, 2, 3, 4, 5, 6, 7]] * 4)
        assert residual_entropy(image) < 0.6

    def test_histogram_counts(self):
        image = GrayImage(3, 1, [5, 5, 9])
        assert histogram(image) == {5: 2, 9: 1}


class TestRates:
    def test_bits_per_pixel(self):
        image = GrayImage.constant(10, 10, 0)
        assert bits_per_pixel(b"\x00" * 25, image) == 2.0

    def test_compression_ratio(self):
        image = GrayImage.constant(10, 10, 0)  # 100 pixels x 8 bits = 800 bits
        assert compression_ratio(b"\x00" * 25, image) == 4.0

    def test_ratio_of_empty_stream_rejected(self):
        with pytest.raises(ImageFormatError):
            compression_ratio(b"", GrayImage.constant(2, 2, 0))

    def test_average(self):
        assert average_bits_per_pixel([4.0, 5.0, 6.0]) == 5.0

    def test_average_of_empty_rejected(self):
        with pytest.raises(ImageFormatError):
            average_bits_per_pixel([])


class TestComparisons:
    def test_identical_images(self):
        a = GrayImage.constant(4, 4, 7)
        b = GrayImage.constant(4, 4, 7)
        assert images_identical(a, b)
        assert mean_absolute_error(a, b) == 0.0

    def test_different_images(self):
        a = GrayImage.constant(4, 4, 7)
        b = GrayImage.constant(4, 4, 8)
        assert not images_identical(a, b)
        assert mean_absolute_error(a, b) == 1.0

    def test_mismatched_geometry_rejected(self):
        with pytest.raises(ImageFormatError):
            mean_absolute_error(GrayImage.constant(2, 2, 0), GrayImage.constant(3, 2, 0))

    def test_gradient_statistics_of_flat_image(self):
        stats = gradient_statistics(GrayImage.constant(8, 8, 100))
        assert stats["mean_abs_dh"] == 0.0
        assert stats["mean_abs_dv"] == 0.0
        assert stats["std"] == 0.0
