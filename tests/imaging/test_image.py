"""Tests for the GrayImage container."""

import numpy as np
import pytest

from repro.exceptions import ImageFormatError
from repro.imaging.image import GrayImage


class TestConstruction:
    def test_basic_construction(self):
        image = GrayImage(2, 3, [0, 1, 2, 3, 4, 5])
        assert image.width == 2
        assert image.height == 3
        assert image.pixel_count == 6
        assert image.bit_depth == 8
        assert image.max_value == 255

    def test_pixel_count_mismatch_rejected(self):
        with pytest.raises(ImageFormatError):
            GrayImage(2, 2, [1, 2, 3])

    def test_out_of_range_pixel_rejected(self):
        with pytest.raises(ImageFormatError):
            GrayImage(1, 1, [256])
        with pytest.raises(ImageFormatError):
            GrayImage(1, 1, [-1])

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ImageFormatError):
            GrayImage(0, 5, [])
        with pytest.raises(ImageFormatError):
            GrayImage(5, -1, [])

    def test_invalid_bit_depth_rejected(self):
        with pytest.raises(ImageFormatError):
            GrayImage(1, 1, [0], bit_depth=0)
        with pytest.raises(ImageFormatError):
            GrayImage(1, 1, [0], bit_depth=17)

    def test_16_bit_samples(self):
        image = GrayImage(2, 1, [0, 65535], bit_depth=16)
        assert image.max_value == 65535

    def test_from_rows(self):
        image = GrayImage.from_rows([[1, 2], [3, 4]])
        assert image.pixels() == [1, 2, 3, 4]

    def test_from_rows_ragged_rejected(self):
        with pytest.raises(ImageFormatError):
            GrayImage.from_rows([[1, 2], [3]])

    def test_from_rows_empty_rejected(self):
        with pytest.raises(ImageFormatError):
            GrayImage.from_rows([])

    def test_from_array_clips_and_rounds(self):
        array = np.array([[255.7, -3.0], [12.4, 12.6]])
        image = GrayImage.from_array(array)
        assert image.pixels() == [255, 0, 12, 13]

    def test_from_array_requires_2d(self):
        with pytest.raises(ImageFormatError):
            GrayImage.from_array(np.zeros(5))

    def test_constant(self):
        image = GrayImage.constant(3, 2, 9)
        assert image.pixels() == [9] * 6


class TestAccessors:
    def test_get_and_row(self):
        image = GrayImage.from_rows([[1, 2, 3], [4, 5, 6]])
        assert image.get(0, 0) == 1
        assert image.get(2, 1) == 6
        assert image.row(1) == [4, 5, 6]

    def test_get_out_of_bounds(self):
        image = GrayImage.constant(2, 2, 0)
        with pytest.raises(ImageFormatError):
            image.get(2, 0)
        with pytest.raises(ImageFormatError):
            image.get(0, -1)

    def test_row_out_of_bounds(self):
        with pytest.raises(ImageFormatError):
            GrayImage.constant(2, 2, 0).row(2)

    def test_to_array_round_trips(self):
        image = GrayImage.from_rows([[1, 2], [3, 4]])
        assert GrayImage.from_array(image.to_array()) == image

    def test_to_bytes_8bit(self):
        image = GrayImage(2, 1, [1, 255])
        assert image.to_bytes() == bytes([1, 255])

    def test_to_bytes_16bit_big_endian(self):
        image = GrayImage(1, 1, [0x0102], bit_depth=16)
        assert image.to_bytes() == bytes([0x01, 0x02])

    def test_pixels_returns_copy(self):
        image = GrayImage.constant(2, 2, 5)
        pixels = image.pixels()
        pixels[0] = 99
        assert image.get(0, 0) == 5

    def test_with_name(self):
        image = GrayImage.constant(2, 2, 5).with_name("label")
        assert image.name == "label"


class TestEquality:
    def test_equal_images(self):
        a = GrayImage(2, 1, [1, 2])
        b = GrayImage(2, 1, [1, 2])
        assert a == b
        assert hash(a) == hash(b)

    def test_different_pixels(self):
        assert GrayImage(2, 1, [1, 2]) != GrayImage(2, 1, [1, 3])

    def test_different_geometry(self):
        assert GrayImage(2, 1, [1, 2]) != GrayImage(1, 2, [1, 2])

    def test_non_image_comparison(self):
        assert GrayImage(1, 1, [0]) != "not an image"

    def test_repr_contains_geometry(self):
        assert "3x2" in repr(GrayImage.constant(3, 2, 0))
