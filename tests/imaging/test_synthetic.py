"""Tests for the synthetic corpus generators."""

import pytest

from repro.exceptions import CorpusError
from repro.imaging.metrics import first_order_entropy, gradient_statistics, residual_entropy
from repro.imaging.synthetic import (
    CORPUS_IMAGE_NAMES,
    CORPUS_SPECS,
    generate_corpus,
    generate_gradient_image,
    generate_image,
    generate_noise_image,
    generate_text_like_image,
)


class TestCorpusGenerators:
    def test_all_seven_names_exist(self):
        assert set(CORPUS_IMAGE_NAMES) == set(CORPUS_SPECS)
        assert len(CORPUS_IMAGE_NAMES) == 7

    def test_generation_is_deterministic(self):
        a = generate_image("lena", size=48, seed=123)
        b = generate_image("lena", size=48, seed=123)
        assert a == b

    def test_different_seeds_differ(self):
        assert generate_image("lena", size=48, seed=1) != generate_image("lena", size=48, seed=2)

    def test_different_names_differ(self):
        assert generate_image("lena", size=48) != generate_image("boat", size=48)

    def test_geometry_and_depth(self):
        image = generate_image("peppers", size=40)
        assert image.width == image.height == 40
        assert image.bit_depth == 8
        assert image.name == "peppers"

    def test_unknown_name_rejected(self):
        with pytest.raises(CorpusError):
            generate_image("does-not-exist", size=32)

    def test_too_small_size_rejected(self):
        with pytest.raises(CorpusError):
            generate_image("lena", size=8)

    def test_custom_spec_allows_new_names(self):
        spec = CORPUS_SPECS["lena"]
        image = generate_image("my-image", size=32, spec=spec)
        assert image.name == "my-image"

    def test_generate_corpus_default(self):
        corpus = generate_corpus(size=32)
        assert [image.name for image in corpus] == list(CORPUS_IMAGE_NAMES)

    def test_generate_corpus_subset(self):
        corpus = generate_corpus(size=32, names=("zelda", "barb"))
        assert [image.name for image in corpus] == ["zelda", "barb"]

    def test_difficulty_ordering_matches_paper(self):
        """The corpus must preserve the paper's compressibility ordering at the
        extremes: mandrill (texture) hardest, zelda (smooth) easiest."""
        size = 96
        residuals = {
            name: residual_entropy(generate_image(name, size=size))
            for name in ("mandrill", "zelda", "lena", "barb")
        }
        assert residuals["mandrill"] > residuals["barb"]
        assert residuals["mandrill"] > residuals["lena"]
        assert residuals["zelda"] < residuals["barb"]
        assert residuals["zelda"] < residuals["mandrill"]

    def test_entropy_in_plausible_band(self):
        for name in CORPUS_IMAGE_NAMES:
            entropy = first_order_entropy(generate_image(name, size=64))
            assert 4.0 < entropy <= 8.0, name

    def test_texture_images_have_larger_gradients(self):
        mandrill = gradient_statistics(generate_image("mandrill", size=64))
        zelda = gradient_statistics(generate_image("zelda", size=64))
        assert mandrill["mean_abs_dh"] > zelda["mean_abs_dh"]


class TestGenericGenerators:
    @pytest.mark.parametrize("direction", ["horizontal", "vertical", "diagonal"])
    def test_gradient_directions(self, direction):
        image = generate_gradient_image(24, direction=direction)
        assert image.width == 24
        assert min(image.iter_pixels()) == 0
        assert max(image.iter_pixels()) == 255

    def test_gradient_unknown_direction(self):
        with pytest.raises(CorpusError):
            generate_gradient_image(24, direction="sideways")

    def test_noise_image_covers_range(self):
        image = generate_noise_image(48, seed=0)
        assert first_order_entropy(image) > 7.5

    def test_noise_image_deterministic(self):
        assert generate_noise_image(24, seed=3) == generate_noise_image(24, seed=3)

    def test_text_image_is_mostly_bi_level(self):
        image = generate_text_like_image(48)
        values = set(image.iter_pixels())
        assert values <= {25, 235}
