"""Tests for PGM reading and writing."""

import io

import pytest

from repro.exceptions import ImageFormatError
from repro.imaging.image import GrayImage
from repro.imaging.pnm import read_pgm, write_pgm


class TestWriteRead:
    def test_binary_roundtrip(self, tmp_path):
        image = GrayImage.from_rows([[0, 128, 255], [1, 2, 3]])
        path = tmp_path / "test.pgm"
        write_pgm(image, path)
        assert read_pgm(path) == image

    def test_ascii_roundtrip(self, tmp_path):
        image = GrayImage.from_rows([[10, 20], [30, 40], [50, 60]])
        path = tmp_path / "test_ascii.pgm"
        write_pgm(image, path, binary=False)
        assert read_pgm(path) == image

    def test_16bit_roundtrip(self, tmp_path):
        image = GrayImage(2, 2, [0, 1000, 65535, 42], bit_depth=16)
        path = tmp_path / "deep.pgm"
        write_pgm(image, path)
        assert read_pgm(path) == image

    def test_roundtrip_via_file_objects(self):
        image = GrayImage.from_rows([[7, 8], [9, 10]])
        buffer = io.BytesIO()
        write_pgm(image, buffer)
        buffer.seek(0)
        assert read_pgm(buffer) == image

    def test_comment_lines_are_skipped(self):
        payload = b"P5\n# a comment line\n2 2\n255\n" + bytes([1, 2, 3, 4])
        assert read_pgm(io.BytesIO(payload)).pixels() == [1, 2, 3, 4]

    def test_p2_whitespace_layout_is_free_form(self):
        payload = b"P2\n3 1\n255\n1   2\n3\n"
        assert read_pgm(io.BytesIO(payload)).pixels() == [1, 2, 3]


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(ImageFormatError):
            read_pgm(io.BytesIO(b"P6\n1 1\n255\n\x00\x00\x00"))

    def test_truncated_header(self):
        with pytest.raises(ImageFormatError):
            read_pgm(io.BytesIO(b"P5\n2 2"))

    def test_truncated_payload(self):
        with pytest.raises(ImageFormatError):
            read_pgm(io.BytesIO(b"P5\n2 2\n255\n\x00\x00"))

    def test_truncated_16bit_payload(self):
        with pytest.raises(ImageFormatError):
            read_pgm(io.BytesIO(b"P5\n2 1\n65535\n\x00\x01\x00"))

    def test_non_numeric_header(self):
        with pytest.raises(ImageFormatError):
            read_pgm(io.BytesIO(b"P5\nx 2\n255\n\x00\x00"))

    def test_invalid_maxval(self):
        with pytest.raises(ImageFormatError):
            read_pgm(io.BytesIO(b"P5\n1 1\n0\n\x00"))
        with pytest.raises(ImageFormatError):
            read_pgm(io.BytesIO(b"P5\n1 1\n70000\n\x00\x00"))

    def test_ascii_sample_overflow(self):
        with pytest.raises(ImageFormatError):
            read_pgm(io.BytesIO(b"P2\n1 1\n255\n300\n"))

    def test_ascii_non_numeric_sample(self):
        with pytest.raises(ImageFormatError):
            read_pgm(io.BytesIO(b"P2\n1 1\n255\nabc\n"))

    def test_ascii_truncated_samples(self):
        with pytest.raises(ImageFormatError):
            read_pgm(io.BytesIO(b"P2\n2 2\n255\n1 2 3\n"))
