"""Pixel-level parity of the vectorized modelling front-end.

:func:`repro.fast.rowmodel.model_image` must derive exactly the neighbour
values, gradients, GAP predictions and texture patterns that the reference
:class:`~repro.core.modeling.ImageModeler` produces when driven with the
same pixels — that equivalence is what lets the fast engine precompute them
for the whole image.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CodecConfig
from repro.core.context import ContextModeler
from repro.core.modeling import ImageModeler
from repro.core.neighborhood import ThreeRowWindow
from repro.core.predictor import GradientAdjustedPredictor
from repro.fast.rowmodel import model_image
from repro.imaging.image import GrayImage
from repro.imaging.synthetic import generate_image, generate_noise_image


def _reference_arrays(image: GrayImage, config: CodecConfig):
    """Drive the scalar window/predictor/context chain over real pixels."""
    window = ThreeRowWindow(image.width, default=(config.max_sample + 1) // 2)
    predictor = GradientAdjustedPredictor(config)
    contexts = ContextModeler(config)
    predicted = np.zeros((image.height, image.width), dtype=np.int64)
    texture = np.zeros_like(predicted)
    gradient = np.zeros_like(predicted)
    for y in range(image.height):
        row = image.row(y)
        for x in range(image.width):
            neighbors = window.neighborhood(x)
            prediction = predictor.predict(neighbors)
            predicted[y, x] = prediction.predicted
            texture[y, x] = contexts.texture_pattern(neighbors, prediction.predicted)
            gradient[y, x] = prediction.dh + prediction.dv
            window.push(row[x])
        window.end_row()
    return predicted, texture, gradient


@pytest.mark.parametrize(
    "image",
    [
        generate_image("lena", size=24),
        generate_image("mandrill", size=24),
        generate_noise_image(size=16, seed=5),
        GrayImage(1, 1, [77]),
        GrayImage(1, 6, [0, 255, 1, 254, 2, 253]),
        GrayImage(6, 1, [0, 255, 1, 254, 2, 253]),
        GrayImage(2, 3, [10, 240, 20, 230, 30, 220]),
    ],
    ids=["lena", "mandrill", "noise", "1x1", "1x6", "6x1", "2x3"],
)
def test_model_image_matches_scalar_pipeline(image):
    config = CodecConfig.hardware(bit_depth=image.bit_depth)
    px = np.asarray(image.pixels(), dtype=np.int64).reshape(image.height, image.width)
    model = model_image(px, config)
    predicted, texture, gradient = _reference_arrays(image, config)
    np.testing.assert_array_equal(model.predicted, predicted)
    np.testing.assert_array_equal(model.texture, texture)
    np.testing.assert_array_equal(model.gradient, gradient)


def test_neighbour_planes_match_window():
    image = generate_image("boat", size=16)
    config = CodecConfig.hardware()
    px = np.asarray(image.pixels(), dtype=np.int64).reshape(16, 16)
    model = model_image(px, config)
    window = ThreeRowWindow(16, default=(config.max_sample + 1) // 2)
    for y in range(16):
        for x in range(16):
            neighbors = window.neighborhood(x)
            assert model.w[y, x] == neighbors.w
            assert model.ww[y, x] == neighbors.ww
            assert model.n[y, x] == neighbors.n
            assert model.nn[y, x] == neighbors.nn
            assert model.ne[y, x] == neighbors.ne
            assert model.nw[y, x] == neighbors.nw
            assert model.nne[y, x] == neighbors.nne
            window.push(int(px[y, x]))
        window.end_row()


def test_modeler_and_rowmodel_agree_on_energy_quantiser():
    """Both engines must share one definition of the QE quantiser."""
    config = CodecConfig.hardware()
    contexts = ContextModeler(config)
    from repro.core.tables import ModelingTables

    tables = ModelingTables(config)
    for energy in range(0, 400):
        assert contexts.quantize_energy(energy) == tables.quantize_energy(energy)


def test_modeler_bias_matches_tables_rom():
    """The fast engine's inlined division uses the divider's own ROM."""
    from repro.core.bias import ReciprocalDivider
    from repro.core.tables import ModelingTables

    tables = ModelingTables(CodecConfig.hardware())
    divider = ReciprocalDivider()
    assert tables.reciprocal_rom is not None
    for divisor in range(1, 32):
        for dividend in (-1023, -500, -31, 0, 17, 500, 1023):
            inline = (
                abs(dividend) * tables.reciprocal_rom[divisor] + tables.reciprocal_rounding
            ) >> tables.reciprocal_shift
            if dividend < 0:
                inline = -inline
            assert inline == divider.divide(dividend, divisor)

    assert ModelingTables(CodecConfig.reference()).reciprocal_rom is None
