"""Property-based reference <-> fast engine parity.

The fast engine's licence to exist is byte identity with the reference
engine; the hand-picked sweeps in ``test_engine_parity.py`` are here
extended to the full random input distribution of the shared strategy
module: on every draw both engines must emit the identical payload and both
must decode it back to the identical pixels — including through the
multi-component path, where the plane loop composes with the engine.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st
from strategies import gray_images, planar_images

from repro.core.components import decode_planar, encode_planar
from repro.core.config import CodecConfig
from repro.core.decoder import decode_payload
from repro.core.encoder import encode_payload


def _config_for(image) -> CodecConfig:
    return CodecConfig.hardware(bit_depth=image.bit_depth)


class TestEngineParity:
    @given(image=gray_images())
    def test_payloads_byte_identical(self, image):
        config = _config_for(image)
        reference, _ = encode_payload(image, config, engine="reference")
        fast, _ = encode_payload(image, config, engine="fast")
        assert fast == reference

    @given(image=gray_images())
    def test_cross_engine_decode(self, image):
        config = _config_for(image)
        payload, _ = encode_payload(image, config, engine="reference")
        pixels = image.pixels()
        assert (
            decode_payload(payload, image.width, image.height, config, engine="fast")
            == pixels
        )
        assert (
            decode_payload(payload, image.width, image.height, config, engine="reference")
            == pixels
        )

    @given(image=planar_images(), plane_delta=st.booleans())
    def test_planar_streams_byte_identical(self, image, plane_delta):
        config = _config_for(image)
        reference = encode_planar(
            image, config, engine="reference", plane_delta=plane_delta
        )
        fast = encode_planar(image, config, engine="fast", plane_delta=plane_delta)
        assert fast == reference
        assert decode_planar(reference, config, engine="fast") == image
