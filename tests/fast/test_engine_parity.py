"""Byte-identity and round-trip parity of the fast coding engine.

The fast engine is only allowed to exist because its streams are
byte-identical to the reference engine's.  These tests sweep the synthetic
corpus, bit depths, degenerate geometries and both configuration presets,
and check every cross-engine combination (fast encode -> reference decode
and vice versa) plus the stripe-parallel composition.
"""

from __future__ import annotations

import pytest

from repro.core.codec import ProposedCodec
from repro.core.config import CodecConfig
from repro.core.decoder import decode_image, decode_payload
from repro.core.encoder import encode_image_with_statistics, encode_payload
from repro.exceptions import BitstreamError, ConfigError
from repro.imaging.image import GrayImage
from repro.imaging.synthetic import (
    CORPUS_IMAGE_NAMES,
    generate_image,
    generate_noise_image,
)
from repro.parallel.codec import ParallelCodec
from repro.parallel.executor import SerialExecutor


class TestByteIdentity:
    @pytest.mark.parametrize("name", CORPUS_IMAGE_NAMES)
    def test_corpus_streams_identical(self, name):
        image = generate_image(name, size=48)
        config = CodecConfig.hardware()
        reference, _ = encode_payload(image, config, engine="reference")
        fast, _ = encode_payload(image, config, engine="fast")
        assert fast == reference

    @pytest.mark.parametrize("preset", ["hardware", "reference"])
    def test_both_presets_identical(self, preset, lena_small):
        config = getattr(CodecConfig, preset)()
        reference, _ = encode_payload(lena_small, config, engine="reference")
        fast, _ = encode_payload(lena_small, config, engine="fast")
        assert fast == reference

    @pytest.mark.parametrize("bit_depth", [1, 2, 4, 8, 10, 12])
    def test_bit_depth_sweep(self, bit_depth):
        image = generate_noise_image(size=20, seed=11, bit_depth=bit_depth)
        config = CodecConfig.hardware(bit_depth=bit_depth)
        reference, _ = encode_payload(image, config, engine="reference")
        fast, _ = encode_payload(image, config, engine="fast")
        assert fast == reference
        assert decode_payload(fast, 20, 20, config, engine="fast") == image.pixels()

    @pytest.mark.parametrize(
        "width,height",
        [(1, 1), (1, 9), (9, 1), (2, 2), (1, 2), (2, 1), (3, 5), (2, 17)],
    )
    def test_degenerate_geometries(self, width, height):
        pixels = [(i * 37 + 11) % 256 for i in range(width * height)]
        image = GrayImage(width, height, pixels)
        config = CodecConfig.hardware()
        reference, _ = encode_payload(image, config, engine="reference")
        fast, _ = encode_payload(image, config, engine="fast")
        assert fast == reference
        assert decode_payload(fast, width, height, config, engine="fast") == pixels

    def test_ablation_configs_identical(self, text_image):
        for config in (
            CodecConfig.hardware(use_overflow_guard_aging=False),
            CodecConfig.hardware(use_error_feedback=False),
            CodecConfig.hardware(use_lut_division=False),
            CodecConfig.hardware(count_bits=10),
            CodecConfig.hardware(estimator_increment=1),
        ):
            reference, _ = encode_payload(text_image, config, engine="reference")
            fast, _ = encode_payload(text_image, config, engine="fast")
            assert fast == reference

    def test_escape_and_rescale_paths(self):
        # Narrow frequency counters make the trees rescale quickly, which
        # zeroes once-seen leaves and forces escape coding — the rarest code
        # path and the one a size-reduced corpus sweep never reaches.  This
        # exact configuration caught a fast-decoder escape bug once.
        image = generate_noise_image(size=40, seed=23)
        config = CodecConfig.hardware(count_bits=6)
        reference, stats_reference = encode_payload(image, config, engine="reference")
        fast, stats_fast = encode_payload(image, config, engine="fast")
        assert stats_reference.escapes > 0
        assert stats_reference.tree_rescales > 0
        assert fast == reference
        assert stats_fast.escapes == stats_reference.escapes
        for engine in ("reference", "fast"):
            assert decode_payload(fast, 40, 40, config, engine=engine) == image.pixels()

    def test_statistics_match(self, mandrill_small):
        config = CodecConfig.hardware()
        _, reference = encode_image_with_statistics(
            mandrill_small, config, engine="reference"
        )
        _, fast = encode_image_with_statistics(mandrill_small, config, engine="fast")
        assert fast.payload_bytes == reference.payload_bytes
        assert fast.total_bytes == reference.total_bytes
        assert fast.bits_per_pixel == reference.bits_per_pixel
        assert fast.escapes == reference.escapes
        assert fast.tree_rescales == reference.tree_rescales
        assert fast.binary_decisions == reference.binary_decisions
        assert fast.context_usage == reference.context_usage
        assert fast.bias_saturations == reference.bias_saturations


class TestCrossEngineRoundtrip:
    @pytest.mark.parametrize("encode_engine", ["reference", "fast"])
    @pytest.mark.parametrize("decode_engine", ["reference", "fast"])
    def test_all_engine_pairs(self, roundtrip_images, encode_engine, decode_engine):
        for image in roundtrip_images:
            config = CodecConfig.hardware(bit_depth=image.bit_depth)
            codec_in = ProposedCodec(config, engine=encode_engine)
            codec_out = ProposedCodec(config, engine=decode_engine)
            assert codec_out.decode(codec_in.encode(image)) == image

    def test_decode_image_fast_engine(self, lena_small):
        stream = ProposedCodec(engine="fast").encode(lena_small)
        assert decode_image(stream, engine="fast") == lena_small
        assert decode_image(stream) == lena_small

    def test_fast_decoder_rejects_truncation(self, lena_small):
        config = CodecConfig.hardware()
        payload, _ = encode_payload(lena_small, config, engine="fast")
        with pytest.raises(BitstreamError):
            decode_payload(
                payload[: max(1, len(payload) // 4)],
                lena_small.width,
                lena_small.height,
                config,
                engine="fast",
            )


class TestParallelComposition:
    @pytest.mark.parametrize("cores", [1, 2])
    def test_striped_streams_identical(self, cores, lena_small):
        reference = ParallelCodec(
            cores=cores, executor=SerialExecutor(), engine="reference"
        )
        fast = ParallelCodec(cores=cores, executor=SerialExecutor(), engine="fast")
        stream_reference = reference.encode(lena_small)
        stream_fast = fast.encode(lena_small)
        assert stream_fast == stream_reference
        assert fast.decode(stream_fast) == lena_small
        assert reference.decode(stream_fast) == lena_small

    @pytest.mark.parametrize("cores", [1, 2])
    def test_degenerate_images_through_parallel_fast(self, cores):
        image = GrayImage(1, 3, [7, 200, 13])
        codec = ParallelCodec(cores=cores, executor=SerialExecutor(), engine="fast")
        assert codec.decode(codec.encode(image)) == image

    def test_classmethod_passes_engine(self):
        codec = ProposedCodec.parallel(cores=2, engine="fast")
        assert codec.engine == "fast"


class TestEngineValidation:
    def test_unknown_engine_rejected(self, lena_small):
        with pytest.raises(ConfigError):
            ProposedCodec(engine="warp")
        with pytest.raises(ConfigError):
            ParallelCodec(cores=1, engine="warp")
        with pytest.raises(ConfigError):
            encode_payload(lena_small, CodecConfig.hardware(), engine="warp")
        with pytest.raises(ConfigError):
            decode_payload(b"", 1, 1, CodecConfig.hardware(), engine="warp")

    def test_out_of_range_pixels_raise_like_reference(self):
        from repro.exceptions import ModelStateError

        image = GrayImage(4, 4, [0, 255, 17, 3] * 4, bit_depth=8)
        narrow = CodecConfig.hardware(bit_depth=4)
        for engine in ("reference", "fast"):
            with pytest.raises(ModelStateError):
                encode_payload(image, narrow, engine=engine)

    def test_fast_classmethod(self, lena_small):
        codec = ProposedCodec.fast(count_bits=12)
        assert codec.engine == "fast"
        assert codec.name == "proposed-fast"
        assert codec.config.count_bits == 12
        reference = ProposedCodec(CodecConfig.hardware(count_bits=12))
        assert codec.encode(lena_small) == reference.encode(lena_small)
