"""Unit tests of the admission-control primitives (fake clocks, no I/O)."""

import pytest

from repro.exceptions import ConfigError
from repro.serve.admission import (
    DEFAULT_MAX_INFLIGHT,
    AdmissionController,
    ClientLimiter,
    TokenBucket,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert bucket.available == 3.0
        assert all(bucket.try_acquire() for _ in range(3))
        assert not bucket.try_acquire()

    def test_refills_at_rate_up_to_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            assert bucket.try_acquire()
        clock.advance(1.0)  # +2 tokens
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(100.0)  # refill clamps at burst
        assert bucket.available == 4.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ConfigError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_admits_until_high_watermark(self):
        admission = AdmissionController(high=3)
        assert all(admission.try_admit() for _ in range(3))
        assert not admission.try_admit()
        assert admission.active == 3

    def test_hysteresis_sheds_until_low_watermark(self):
        admission = AdmissionController(high=4, low=2)
        for _ in range(4):
            assert admission.try_admit()
        assert not admission.try_admit()
        assert admission.shedding
        # Still above low: keeps shedding even though active < high.
        admission.release()
        assert not admission.try_admit()
        assert admission.active == 3
        admission.release()  # active == 2 == low: shedding clears
        assert admission.try_admit()
        assert not admission.shedding

    def test_release_without_admit_is_an_error(self):
        admission = AdmissionController(high=2)
        with pytest.raises(ConfigError):
            admission.release()

    def test_stats_track_peaks_and_sheds(self):
        admission = AdmissionController(high=2, retry_after=0.5)
        assert admission.try_admit() and admission.try_admit()
        assert not admission.try_admit()
        stats = admission.stats()
        assert stats["high_watermark"] == 2
        assert stats["high_water"] == 2
        assert stats["admitted"] == 2
        assert stats["shed"] == 1
        assert stats["shedding"] is True
        assert stats["retry_after_seconds"] == 0.5

    def test_defaults(self):
        admission = AdmissionController()
        assert admission.high == DEFAULT_MAX_INFLIGHT
        assert admission.low == DEFAULT_MAX_INFLIGHT // 2

    def test_rejects_bad_watermarks(self):
        with pytest.raises(ConfigError):
            AdmissionController(high=0)
        with pytest.raises(ConfigError):
            AdmissionController(high=4, low=5)
        with pytest.raises(ConfigError):
            AdmissionController(high=4, retry_after=0.0)


class TestClientLimiter:
    def test_disabled_by_default(self):
        limiter = ClientLimiter()
        assert not limiter.enabled
        for _ in range(100):
            assert limiter.connect("10.0.0.1")
        assert all(limiter.allow_request("10.0.0.1") for _ in range(100))

    def test_connection_cap_per_host(self):
        limiter = ClientLimiter(max_connections=2)
        assert limiter.connect("a") and limiter.connect("a")
        assert not limiter.connect("a")
        assert limiter.connect("b")  # other hosts unaffected
        limiter.disconnect("a")
        assert limiter.connect("a")
        assert limiter.connections("a") == 2

    def test_rate_limit_per_host(self):
        clock = FakeClock()
        limiter = ClientLimiter(rate=1.0, burst=2.0, clock=clock)
        assert limiter.allow_request("a")
        assert limiter.allow_request("a")
        assert not limiter.allow_request("a")
        assert limiter.allow_request("b")  # separate bucket
        clock.advance(1.0)
        assert limiter.allow_request("a")

    def test_stats_and_counters(self):
        limiter = ClientLimiter(max_connections=1, rate=1.0, burst=1.0,
                                clock=FakeClock())
        assert limiter.connect("a")
        assert not limiter.connect("a")
        assert limiter.allow_request("a")
        assert not limiter.allow_request("a")
        stats = limiter.stats()
        assert stats["rejected_connections"] == 1
        assert stats["rate_limited"] == 1
        assert stats["tracked_clients"] == 1
        assert stats["open_connections"] == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            ClientLimiter(max_connections=-1)
        with pytest.raises(ConfigError):
            ClientLimiter(rate=-1.0)
