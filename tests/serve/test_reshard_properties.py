"""Live-reshard safety properties: no key is ever unreachable mid-migration.

The central claim of :mod:`repro.serve.reshard` — copy-before-delete under
the union owner set — is checked *at every intermediate state* of a
hypothesis-driven N -> N+1 migration: after each single-key step every key
must be readable through the service, and (with R=2) killing any one shard
must still never fail a read.  The deterministic tests below pin the
individual mechanisms: fault-interrupted copies, pinned sources, and the
commit guard that refuses to strand a key.
"""

from __future__ import annotations

import hashlib
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cellgrid import encode_grid
from repro.core.config import CodecConfig
from repro.exceptions import ConfigError
from repro.imaging.synthetic import generate_image
from repro.serve.app import ImageService
from repro.serve.chaos import FaultInjector
from repro.serve.reshard import Resharder
from repro.serve.router import StoreRouter
from repro.store.store import ImageStore

_STREAMS = None


def _streams():
    """Six tiny pre-encoded containers, built once (encoding dominates)."""
    global _STREAMS
    if _STREAMS is None:
        streams = {}
        for seed in range(6):
            image = generate_image("lena", size=16, seed=seed)
            stream, _ = encode_grid(
                image, CodecConfig.hardware(bit_depth=image.bit_depth), stripes=2
            )
            streams[hashlib.sha256(stream).hexdigest()] = stream
        _STREAMS = streams
    return _STREAMS


class TestMigrationReachabilityProperty:
    def _assert_all_readable(self, service, injectors, keys):
        """Every key decodes, including with any single shard killed."""
        victims = [None] + list(injectors)
        for victim in victims:
            for store in service.router.stores:
                # Warm caches never touch the backend, so they would let a
                # read "succeed" against a killed holder; drop them first.
                store.cache.clear()
                store._headers.clear()
            if victim is not None:
                injectors[victim].kill()
            try:
                for key in keys:
                    body, _ = service.get_region(key, 0, 1)
                    assert body, "key %s unreadable (victim=%r)" % (key, victim)
            finally:
                if victim is not None:
                    injectors[victim].revive()

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_every_key_readable_at_every_migration_point(self, data):
        streams = _streams()
        chosen = data.draw(
            st.lists(
                st.sampled_from(sorted(streams)), unique=True, min_size=2, max_size=4
            )
        )
        with tempfile.TemporaryDirectory(prefix="repro-reshard-prop-") as root:
            stores = [
                ImageStore.open(Path(root) / ("shard-%02d" % index))
                for index in range(2)
            ]
            service = ImageService(stores, replication=2)
            injectors = dict(
                zip(
                    service.router.names,
                    (store.wrap_backend(FaultInjector) for store in stores),
                )
            )
            try:
                for key in chosen:
                    outcome = service.put_image(streams[key])
                    # Two shards, R=2: both replicas hold every key, so any
                    # single kill leaves a live holder throughout.
                    assert sorted(outcome["replicas"]) == sorted(service.router.names)

                joining = ImageStore.open(Path(root) / "shard-02")
                injectors["shard-02"] = joining.wrap_backend(FaultInjector)
                resharder = service.begin_reshard(joining, "shard-02")
                order = data.draw(st.permutations(sorted(resharder.moved_keys())))

                self._assert_all_readable(service, injectors, chosen)
                for key in order:
                    resharder.migrate_key(key)
                    self._assert_all_readable(service, injectors, chosen)
                report = resharder.run(complete=True)
                assert report.completed, report.errors
                assert service.router.joining is None
                self._assert_all_readable(service, injectors, chosen)
                # Settled layout: exactly the final top-2 owners hold each key.
                for key in chosen:
                    holders = {
                        name
                        for name, store in zip(
                            service.router.names, service.router.stores
                        )
                        if store.contains(key)
                    }
                    expected = {
                        service.router.names[index]
                        for index in service.router.shards_for(key)
                    }
                    assert holders == expected
            finally:
                for injector in injectors.values():
                    injector.revive()
                service.close()


class TestResharderMechanisms:
    def _single_owner_router(self, tmp_path):
        store = ImageStore.open(tmp_path / "shard-00")
        return StoreRouter([store])

    def _moved_key(self, router, joining_name):
        """A stored key the new membership hands to the joining shard."""
        names = router.names
        for key, stream in _streams().items():
            if names[router.shards_for(key, r=1)[0]] == joining_name:
                return key, stream
        raise AssertionError("no corpus key moves to %s" % joining_name)

    def test_requires_a_reshard_in_progress(self, tmp_path):
        router = self._single_owner_router(tmp_path)
        with pytest.raises(ConfigError):
            Resharder(router)
        router.close()

    def test_copy_failure_never_deletes_the_source(self, tmp_path):
        router = self._single_owner_router(tmp_path)
        source = router.stores[0]
        joining = ImageStore.open(tmp_path / "shard-01")
        injector = joining.wrap_backend(FaultInjector)
        router.begin_reshard(joining, "shard-01")
        resharder = Resharder(router, max_passes=1)
        key, stream = self._moved_key(router, "shard-01")
        source.put_stream(stream)

        injector.kill()
        assert resharder.migrate_key(key) is False
        # Copy-before-delete: the failed copy cost nothing — the source
        # still holds the only replica and the key stays readable.
        assert source.contains(key)
        assert resharder.report.deletions == 0
        assert resharder.report.errors

        # The commit guard refuses while the key has no final-owner replica.
        report = resharder.run(complete=True)
        assert report.completed is False
        assert router.joining == "shard-01"
        assert any("not committing" in error for error in report.errors)

        # Clear the fault; the next run copies, deletes and commits.
        injector.revive()
        retry = Resharder(router, max_passes=2)
        report = retry.run(complete=True)
        assert report.completed, report.errors
        assert router.joining is None
        assert joining.contains(key)
        assert not source.contains(key)
        router.close()

    def test_pinned_source_is_skipped_not_yanked(self, tmp_path):
        router = self._single_owner_router(tmp_path)
        source = router.stores[0]
        joining = ImageStore.open(tmp_path / "shard-01")
        router.begin_reshard(joining, "shard-01")
        resharder = Resharder(router, max_passes=1)
        key, stream = self._moved_key(router, "shard-01")
        source.put_stream(stream)

        with source._pin(key):  # an in-flight read holds the blob
            assert resharder.migrate_key(key) is False
            assert resharder.report.copies == 1  # the copy still landed
            assert resharder.report.pinned_skips == 1
            assert source.contains(key)
        # Pin released: the retry pass settles the key.
        assert resharder.migrate_key(key) is True
        assert not source.contains(key)
        router.close()

    def test_tombstones_travel_with_the_migration(self, tmp_path):
        router = self._single_owner_router(tmp_path)
        source = router.stores[0]
        joining = ImageStore.open(tmp_path / "shard-01")
        router.begin_reshard(joining, "shard-01")
        resharder = Resharder(router)
        key, stream = self._moved_key(router, "shard-01")
        source.put_stream(stream)
        entry = source.soft_delete(key, ttl_seconds=3600.0)

        assert resharder.migrate_key(key) is True
        migrated = joining.catalog.get(key)
        assert migrated.deleted_at == entry.deleted_at
        assert migrated.purge_after == pytest.approx(entry.purge_after)
        router.close()

    def test_report_counts_a_clean_run(self, tmp_path):
        stores = [
            ImageStore.open(tmp_path / ("shard-%02d" % index)) for index in range(2)
        ]
        router = StoreRouter(stores, replication=2)
        for stream in _streams().values():
            for store in stores:  # R=2 over 2 shards: both hold everything
                store.put_stream(stream)
        joining = ImageStore.open(tmp_path / "shard-02")
        router.begin_reshard(joining, "shard-02")
        resharder = Resharder(router)
        moved = set(resharder.moved_keys())
        report = resharder.run(complete=True)
        assert report.completed
        assert report.moved == len(moved)
        assert report.copies == len(moved)  # each moved key copied once
        assert report.errors == []
        as_json = report.as_json()
        assert as_json["joining"] == "shard-02"
        assert as_json["completed"] is True
        router.close()
