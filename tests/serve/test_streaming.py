"""Streaming region responses: chunked framing, byte identity, semantics.

The streamed endpoints are only allowed to exist because their reassembled
bodies are byte-identical to the buffered ones.  These tests drive real
sockets end-to-end: raw chunked framing on the wire, gray and colour
regions, NDJSON batches, error parity before the status line commits,
deadline aborts mid-stream, and the admission watermark returning to zero
after streams finish or die.
"""

from __future__ import annotations

import http.client
import io
import json

import pytest

from repro.exceptions import ServeError
from repro.imaging.image import GrayImage
from repro.imaging.pnm import write_pgm, write_ppm
from repro.imaging.synthetic import generate_image, generate_planar_image
from repro.serve.app import ImageService, start_server_thread
from repro.serve.client import ServeClient
from repro.store.store import ImageStore


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-streaming")
    store = ImageStore.open(
        root / "shard-00", use_mmap=True, encoded_cache_bytes=1 << 20
    )
    service = ImageService([store], default_stripes=6)
    handle = start_server_thread(service)
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    with ServeClient(*server.address) as active:
        yield active


@pytest.fixture(scope="module")
def gray_key(server):
    image = generate_image("lena", size=36, seed=4)
    buffer = io.BytesIO()
    write_pgm(image, buffer)
    with ServeClient(*server.address) as client:
        return client.put_image(buffer.getvalue(), stripes=6)["key"]


@pytest.fixture(scope="module")
def color_key(server):
    image = generate_planar_image("peppers", size=30, seed=9, planes=3)
    buffer = io.BytesIO()
    write_ppm(image, buffer)
    with ServeClient(*server.address) as client:
        return client.put_image(buffer.getvalue(), stripes=6)["key"]


def _same(a, b):
    if isinstance(a, GrayImage):
        return a.to_bytes() == b.to_bytes()
    return a.interleaved_samples() == b.interleaved_samples()


class TestRegionStream:
    @pytest.mark.parametrize("fixture", ["gray_key", "color_key"])
    def test_streamed_equals_buffered(self, request, client, fixture):
        key = request.getfixturevalue(fixture)
        buffered = client.get_region(key, 1, 5)
        streamed, timings = client.get_region_stream(key, 1, 5)
        assert type(streamed) is type(buffered)
        assert _same(streamed, buffered)
        assert timings["ttfb_ms"] <= timings["total_ms"]

    def test_raw_bodies_are_byte_identical(self, server, gray_key):
        connection = http.client.HTTPConnection(*server.address)
        try:
            connection.request("GET", "/images/%s/region/0-6" % gray_key)
            plain = connection.getresponse().read()
            connection.request("GET", "/images/%s/region/0-6?stream=1" % gray_key)
            response = connection.getresponse()
            assert response.getheader("Transfer-Encoding") == "chunked"
            assert response.getheader("Content-Length") is None
            assert response.read() == plain
        finally:
            connection.close()

    def test_header_arrives_as_its_own_chunk(self, server, gray_key):
        # Read the raw socket: the first chunk must be the Netpbm header,
        # available before the stripe decodes stream in behind it.
        connection = http.client.HTTPConnection(*server.address)
        try:
            connection.request("GET", "/images/%s/region/0-6?stream=1" % gray_key)
            response = connection.getresponse()
            first = response.read1(4096)
            assert first.startswith(b"P5\n")
            rest = response.read()
            assert rest  # the sample chunks follow
        finally:
            connection.close()

    def test_error_parity_before_status_commits(self, client, gray_key):
        with pytest.raises(ServeError) as bad_range:
            client.get_region_stream(gray_key, 5, 99)
        assert bad_range.value.status == 400
        with pytest.raises(ServeError) as missing:
            client.get_region_stream("no-such-key", 0, 1)
        assert missing.value.status == 404
        # The connection survives both error responses.
        assert client.healthz()["status"] == "ok"

    def test_deadline_abort_truncates_the_stream(self, server, gray_key):
        with ServeClient(*server.address, deadline_ms=1) as tight:
            with pytest.raises(ServeError):
                tight.get_region_stream(gray_key, 0, 6)
        with ServeClient(*server.address) as observer:
            stats = observer.stats()
        # Either the plan offload answered 504 before the status line, or
        # the stream aborted mid-flight; both paths count the deadline.
        assert stats["server"]["counters"].get("deadline_exceeded", 0) >= 1


class TestRegionsStream:
    def test_ndjson_entries_match_buffered_batch(self, client, color_key):
        ranges = [(0, 2), (2, 6), (1, 3)]
        streamed = list(client.iter_regions(color_key, ranges))
        buffered = client.get_regions(color_key, ranges)
        assert [(e["start"], e["stop"]) for e, _ in streamed] == ranges
        for (entry, image), reference in zip(streamed, buffered):
            assert entry["key"] == color_key
            assert _same(image, reference)

    def test_bad_ranges_rejected_before_the_stream_starts(self, client, color_key):
        with pytest.raises(ServeError) as bad:
            list(client.iter_regions(color_key, [(0, 99)]))
        assert bad.value.status == 400
        with pytest.raises(ServeError) as missing:
            list(client.iter_regions("no-such-key", [(0, 1)]))
        assert missing.value.status == 404
        assert client.healthz()["status"] == "ok"

    def test_abandoned_stream_leaves_client_usable(self, client, color_key):
        generator = client.iter_regions(color_key, [(0, 2), (2, 6)])
        next(generator)
        generator.close()  # drops the connection mid-stream
        assert client.healthz()["status"] == "ok"

    def test_raw_wire_format_is_ndjson(self, server, color_key):
        connection = http.client.HTTPConnection(*server.address)
        try:
            body = json.dumps({"ranges": [[0, 2], [2, 4]]}).encode()
            connection.request(
                "POST",
                "/images/%s/regions?stream=1" % color_key,
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.getheader("Content-Type") == "application/x-ndjson"
            assert response.getheader("Transfer-Encoding") == "chunked"
            lines = response.read().decode("utf-8").splitlines()
            assert len(lines) == 2
            for line in lines:
                entry = json.loads(line)
                assert entry["key"] == color_key
        finally:
            connection.close()


class TestStreamingAccounting:
    def test_admission_slots_drain_to_zero(self, server, client, gray_key, color_key):
        client.get_region_stream(gray_key, 0, 3)
        list(client.iter_regions(color_key, [(0, 2)]))
        with pytest.raises(ServeError):
            client.get_region_stream(gray_key, 3, 99)
        stats = client.stats()
        assert stats["admission"]["active"] == 0

    def test_single_flight_covers_streamed_stripes(self, server, gray_key):
        # A streamed stripe fetch and a buffered single-stripe GET share
        # the same flight key, so the flight stats keep accounting.
        with ServeClient(*server.address) as client:
            client.get_region_stream(gray_key, 0, 2)
            before = client.stats()["flight"]
            client.get_region(gray_key, 0, 1)
            after = client.stats()["flight"]
        assert after["leaders"] >= before["leaders"]
        assert before["leaders"] >= 2  # one flight per streamed stripe
