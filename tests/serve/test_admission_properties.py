"""Property-based conformance of the admission-control primitives.

Two invariants the serving tier's overload story rests on, checked over
arbitrary interleavings:

* the admission gauge never exceeds the high watermark, and every admit
  the controller grants is balanced by exactly one release — so bounding
  admissions really does bound the decode backlog;
* a token bucket never hands out more tokens than ``burst + rate * t``
  over any interval ``t`` — the rate limit cannot be tricked into
  over-issuing by any request/clock interleaving.
"""

from hypothesis import given, strategies as st

from repro.serve.admission import AdmissionController, TokenBucket


class _Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@given(
    high=st.integers(min_value=1, max_value=16),
    low=st.none() | st.integers(min_value=1, max_value=16),
    actions=st.lists(st.booleans(), max_size=200),
)
def test_gauge_never_exceeds_high_watermark(high, low, actions):
    """True = try_admit, False = release one held slot (if any)."""
    if low is not None and low > high:
        low = high
    admission = AdmissionController(high=high, low=low)
    held = 0
    for is_admit in actions:
        if is_admit:
            if admission.try_admit():
                held += 1
        elif held > 0:
            admission.release()
            held -= 1
        assert 0 <= admission.active <= high
        assert admission.active == held
    stats = admission.stats()
    assert stats["high_water"] <= high
    assert stats["admitted"] >= held


@given(
    high=st.integers(min_value=2, max_value=16),
    seed=st.randoms(use_true_random=False),
    count=st.integers(min_value=0, max_value=300),
)
def test_shedding_always_recovers(high, seed, count):
    """After every slot is released an idle controller admits again."""
    admission = AdmissionController(high=high)
    held = 0
    for _ in range(count):
        if seed.random() < 0.6:
            if admission.try_admit():
                held += 1
        elif held:
            admission.release()
            held -= 1
    for _ in range(held):
        admission.release()
    assert admission.active == 0
    assert admission.try_admit()


@given(
    rate=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    burst=st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
    steps=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            st.integers(min_value=0, max_value=20),
        ),
        max_size=50,
    ),
)
def test_bucket_never_over_issues(rate, burst, steps):
    clock = _Clock()
    bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
    granted = 0
    for advance, attempts in steps:
        clock.now += advance
        for _ in range(attempts):
            if bucket.try_acquire():
                granted += 1
        # Over [0, now] at most burst + rate * now tokens ever existed.
        ceiling = burst + rate * clock.now
        assert granted <= ceiling + 1e-6
    assert 0.0 <= bucket.available <= burst
