"""Unit tests for the declarative route table and the error envelope."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import (
    BlobNotFoundError,
    ConfigError,
    DeadlineExceededError,
    ModelStateError,
    OverloadedError,
    StoreError,
)
from repro.serve.http import HttpProtocolError
from repro.serve.routes import (
    ERROR_CODES,
    ROUTES,
    classify_error,
    error_payload,
    match_route,
    new_request_id,
    route_templates,
    split_path,
    version_payload,
)


class TestMatcher:
    def test_every_route_matches_its_own_template_shape(self):
        for route in ROUTES:
            parts = [
                "7" if segment == "{plane}"
                else "0-2" if segment == "{range}"
                else "k" * 8 if segment.startswith("{")
                else segment
                for segment in route.pattern
            ]
            matched, params = match_route(route.method, parts)
            assert matched is route

    def test_catalog_and_images_routes_capture_parameters(self):
        route, params = match_route("GET", split_path("/images/abc/region/3-9"))
        assert route.endpoint == "get_region"
        assert params == {"key": "abc", "range": (3, 9)}
        route, params = match_route("GET", split_path("/images/abc/plane/2"))
        assert params == {"key": "abc", "plane": 2}

    def test_unknown_path_is_not_found(self):
        with pytest.raises(BlobNotFoundError):
            match_route("GET", split_path("/nope"))
        with pytest.raises(BlobNotFoundError):
            match_route("GET", split_path("/images/k/extra/deep/path"))

    def test_known_shape_wrong_method_is_405(self):
        with pytest.raises(HttpProtocolError) as caught:
            match_route("POST", split_path("/healthz"))
        assert caught.value.status == 405
        with pytest.raises(HttpProtocolError) as caught:
            match_route("PATCH", split_path("/images/somekey"))
        assert caught.value.status == 405

    def test_wrong_method_wins_over_bad_parameter(self):
        # The path shape matches GET /images/{key}/plane/{plane}; under
        # POST the answer must be 405 even though the plane is not an int.
        with pytest.raises(HttpProtocolError) as caught:
            match_route("POST", split_path("/images/k/plane/xyz"))
        assert caught.value.status == 405

    def test_bad_parameter_under_right_method_is_config_error(self):
        with pytest.raises(ConfigError):
            match_route("GET", split_path("/images/k/plane/xyz"))
        with pytest.raises(ConfigError):
            match_route("GET", split_path("/images/k/region/banana"))
        with pytest.raises(ConfigError):
            match_route("GET", split_path("/images/k/region/3"))

    def test_templates_render_for_docs(self):
        templates = route_templates()
        assert "GET /healthz" in templates
        assert "GET /images/{key}/region/{range}" in templates
        assert len(templates) == len(ROUTES)

    def test_admission_exempt_is_observability_only(self):
        exempt = {route.template for route in ROUTES if route.admission_exempt}
        assert exempt == {"GET /healthz", "GET /stats", "GET /version"}


class TestEnvelope:
    def test_every_code_has_a_status(self):
        for code, status in ERROR_CODES.items():
            assert 400 <= status < 600, code

    def test_classify_prefers_exception_type_over_status(self):
        assert classify_error(500, StoreError("backend gone")) == "upstream_unhealthy"
        assert classify_error(400, OverloadedError("shed")) == "shed"
        assert classify_error(200, DeadlineExceededError("late")) == "deadline"
        assert classify_error(400, BlobNotFoundError("missing")) == "not_found"
        assert classify_error(500, ConfigError("bad")) == "bad_request"
        assert classify_error(200, ModelStateError("broken")) == "internal"

    def test_classify_falls_back_on_status(self):
        assert classify_error(404) == "not_found"
        assert classify_error(405) == "method_not_allowed"
        assert classify_error(429) == "shed"
        assert classify_error(503) == "draining"
        assert classify_error(504) == "deadline"
        assert classify_error(418) == "internal"

    def test_payload_shape(self):
        body = json.loads(error_payload("TypeError: boom", "internal", "abc123"))
        assert body == {
            "error": "TypeError: boom",
            "code": "internal",
            "request_id": "abc123",
        }

    def test_request_ids_are_unique_hex(self):
        ids = {new_request_id() for _ in range(64)}
        assert len(ids) == 64
        for request_id in ids:
            int(request_id, 16)
            assert len(request_id) == 12


class TestVersion:
    def test_version_payload_names_the_surface(self):
        import repro

        payload = version_payload()
        assert payload["version"] == repro.__version__
        assert payload["container_versions"]
        assert "reference" in payload["engines"]
