"""End-to-end graceful-drain and request-deadline behaviour.

Covers the two remaining production-hardening contracts over real
sockets: a draining server finishes admitted work (and answers new work
with ``503``) before its handle returns, and a request whose deadline
lapses on a stalled shard yields a fast ``504`` without poisoning the
cell cache or the single-flight map for the requests that follow.
"""

from __future__ import annotations

import io
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.exceptions import ServeError
from repro.imaging.pnm import write_ppm
from repro.imaging.synthetic import generate_planar_image
from repro.serve.app import ImageService, start_server_thread
from repro.serve.chaos import FaultInjector
from repro.serve.client import ServeClient
from repro.store.store import ImageStore


def _ppm_bytes(image):
    buffer = io.BytesIO()
    write_ppm(image, buffer)
    return buffer.getvalue()


def _boot(tmp_path, **service_kwargs):
    stores = [ImageStore.open(tmp_path / ("shard-%02d" % i)) for i in range(2)]
    service = ImageService(stores, **service_kwargs)
    return service, start_server_thread(service)


def _ingest(handle, size=24, stripes=4, seed=31):
    with ServeClient(*handle.address) as client:
        image = generate_planar_image("lena", size=size, seed=seed, planes=3)
        document = client.put_image(_ppm_bytes(image), stripes=stripes)
    return str(document["key"]), str(document["shard"])


class TestDrain:
    def test_drain_finishes_inflight_and_rejects_new_work(self, tmp_path):
        service, handle = _boot(tmp_path)
        try:
            key, _ = _ingest(handle)
            injectors = [
                store.wrap_backend(FaultInjector) for store in service.router.stores
            ]
            for injector in injectors:
                injector.add_latency(0.6)
            for store in service.router.stores:
                store.cache.clear()

            # A keep-alive connection opened before the drain begins: the
            # listening socket closes, but established peers get answers.
            survivor = ServeClient(*handle.address)
            assert survivor.healthz()["status"] == "ok"

            outcome = {}

            def slow_request():
                with ServeClient(*handle.address, timeout=30.0) as client:
                    outcome["region"] = client.get_region(key, 0, 1)

            worker = threading.Thread(target=slow_request)
            worker.start()
            time.sleep(0.2)  # let the decode reach the executor
            assert service.stats.in_flight >= 1

            drained = {}
            drainer = threading.Thread(
                target=lambda: drained.setdefault("ok", handle.drain(budget=10.0))
            )
            drainer.start()
            time.sleep(0.1)
            assert handle.draining

            # New work on the surviving connection is refused, not queued.
            with pytest.raises(ServeError) as info:
                survivor.healthz()
            assert info.value.status == 503
            survivor.close()

            drainer.join(timeout=15.0)
            worker.join(timeout=15.0)
            assert drained["ok"] is True
            assert outcome["region"].height == 6  # in-flight work completed
            assert service.stats.in_flight == 0
        finally:
            handle.stop()

    def test_drain_gives_up_after_its_budget(self, tmp_path):
        service, handle = _boot(tmp_path)
        try:
            key, _ = _ingest(handle)
            for store in service.router.stores:
                store.wrap_backend(FaultInjector).add_latency(1.5)
                store.cache.clear()

            def slow_request():
                try:
                    with ServeClient(*handle.address, timeout=30.0) as client:
                        client.get_region(key, 0, 1)
                except Exception:
                    pass  # the forced close below severs this request

            worker = threading.Thread(target=slow_request)
            worker.start()
            time.sleep(0.2)
            assert service.stats.in_flight >= 1
            begin = time.monotonic()
            assert handle.drain(budget=0.2) is False
            assert time.monotonic() - begin < 5.0
            worker.join(timeout=15.0)
        finally:
            handle.stop()

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """The operator-facing contract: SIGTERM -> drain -> exit code 0."""
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve.cli",
                "--port",
                "0",
                "--shards",
                "2",
                "--root",
                str(tmp_path / "shards"),
                "--drain-budget",
                "5",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "listening on http://" in banner
            address = banner.split("http://", 1)[1].split(" ", 1)[0]
            host, port_text = address.rsplit(":", 1)
            with ServeClient(host, int(port_text)) as client:
                assert client.healthz()["status"] == "ok"
            process.send_signal(signal.SIGTERM)
            returncode = process.wait(timeout=15.0)
            assert returncode == 0
            remainder = process.stderr.read()
            assert "draining" in remainder
            assert "drained" in remainder
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)
            process.stdout.close()
            process.stderr.close()

        # The socket really is gone.
        with pytest.raises(OSError):
            socket.create_connection((host, int(port_text)), timeout=1.0).close()


class TestDeadlines:
    def test_stalled_shard_times_out_without_poisoning_caches(self, tmp_path):
        service, handle = _boot(tmp_path)
        try:
            key, shard = _ingest(handle)
            injectors = dict(
                zip(
                    service.router.names,
                    (store.wrap_backend(FaultInjector) for store in service.router.stores),
                )
            )
            for store in service.router.stores:
                store.cache.clear()
            injectors[shard].stall()
            try:
                begin = time.monotonic()
                with ServeClient(*handle.address, deadline_ms=200) as client:
                    with pytest.raises(ServeError) as info:
                        client.get_region(key, 0, 1)
                assert info.value.status == 504
                assert time.monotonic() - begin < 5.0
                assert service.stats.counter("deadline_exceeded") == 1
            finally:
                injectors[shard].clear_stall()

            # The abandoned leader leaves the single-flight map; the same
            # region then decodes cleanly -- twice, to prove nothing broken
            # was cached in its place.
            deadline = time.monotonic() + 5.0
            while service.flight.in_flight and time.monotonic() < deadline:
                time.sleep(0.02)
            assert service.flight.in_flight == 0
            with ServeClient(*handle.address) as client:
                assert client.get_region(key, 0, 1).height == 6
                assert client.get_region(key, 0, 1).height == 6
        finally:
            handle.stop()

    def test_header_deadline_tightens_the_server_budget(self, tmp_path):
        service, handle = _boot(tmp_path, default_deadline=30.0)
        try:
            key, shard = _ingest(handle)
            injectors = dict(
                zip(
                    service.router.names,
                    (store.wrap_backend(FaultInjector) for store in service.router.stores),
                )
            )
            for store in service.router.stores:
                store.cache.clear()
            injectors[shard].stall()
            try:
                begin = time.monotonic()
                with ServeClient(*handle.address, deadline_ms=150) as client:
                    with pytest.raises(ServeError) as info:
                        client.get_region(key, 0, 1)
                elapsed = time.monotonic() - begin
                assert info.value.status == 504
                # The 150 ms header won over the 30 s server default.
                assert elapsed < 10.0
            finally:
                injectors[shard].clear_stall()
        finally:
            handle.stop()

    def test_bad_deadline_header_is_a_400(self, tmp_path):
        service, handle = _boot(tmp_path)
        try:
            import http.client

            connection = http.client.HTTPConnection(*handle.address, timeout=10)
            connection.request(
                "GET", "/healthz", headers={"x-deadline-ms": "soon"}
            )
            response = connection.getresponse()
            response.read()
            connection.close()
            assert response.status == 400
        finally:
            handle.stop()
