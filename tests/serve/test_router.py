"""Unit tests of rendezvous shard routing."""

from __future__ import annotations

import hashlib

import pytest

from repro.exceptions import ConfigError
from repro.serve.router import (
    StoreRouter,
    _ranked,
    rendezvous_shard,
    rendezvous_score,
)
from repro.store.store import ImageStore


def _keys(count: int):
    """Deterministic content-hash-shaped keys."""
    return [hashlib.sha256(b"key-%d" % index).hexdigest() for index in range(count)]


class TestRendezvousFunction:
    def test_scores_are_deterministic(self):
        assert rendezvous_score("shard-00", "abc") == rendezvous_score("shard-00", "abc")
        assert rendezvous_score("shard-00", "abc") != rendezvous_score("shard-01", "abc")

    def test_pick_is_stable(self):
        names = ["shard-%02d" % index for index in range(4)]
        for key in _keys(50):
            assert rendezvous_shard(names, key) == rendezvous_shard(names, key)

    def test_no_shards_raises(self):
        with pytest.raises(ConfigError):
            rendezvous_shard([], "abc")

    def test_distribution_is_roughly_balanced(self):
        names = ["shard-%02d" % index for index in range(4)]
        counts = [0] * 4
        for key in _keys(2000):
            counts[rendezvous_shard(names, key)] += 1
        # SHA-256 scores: each shard expects ~500 of 2000; 2x slack is far
        # beyond any statistically plausible excursion.
        assert min(counts) > 250
        assert max(counts) < 1000

    def test_adding_a_shard_moves_only_keys_it_wins(self):
        """The rendezvous property: resharding N -> N+1 never moves a key
        between *old* shards — keys either stay put or move to the new one."""
        old_names = ["shard-%02d" % index for index in range(3)]
        new_names = old_names + ["shard-03"]
        keys = _keys(1000)
        moved = 0
        for key in keys:
            before = rendezvous_shard(old_names, key)
            after = rendezvous_shard(new_names, key)
            if after != before:
                assert new_names[after] == "shard-03"
                moved += 1
        # Expected moved fraction is 1/4; give it generous slack.
        assert 0.10 < moved / len(keys) < 0.40


class TestStoreRouter:
    def _router(self, tmp_path, shards=3):
        stores = [
            ImageStore.open(tmp_path / ("shard-%02d" % index))
            for index in range(shards)
        ]
        return StoreRouter(stores)

    def test_default_names_and_len(self, tmp_path):
        router = self._router(tmp_path)
        assert len(router) == 3
        assert router.names == ["shard-00", "shard-01", "shard-02"]
        router.close()

    def test_store_for_matches_shard_name(self, tmp_path):
        router = self._router(tmp_path)
        for key in _keys(20):
            index = router.shard_index(key)
            assert router.store_for(key) is router.stores[index]
            assert router.shard_name(key) == router.names[index]
        router.close()

    def test_stats_reports_every_shard(self, tmp_path):
        router = self._router(tmp_path)
        stats = router.stats()
        assert [entry["name"] for entry in stats] == router.names
        for entry in stats:
            assert entry["cache"]["current_bytes"] == 0
        router.close()

    def test_keys_spans_all_shards(self, tmp_path):
        from repro.imaging.synthetic import generate_image

        router = self._router(tmp_path, shards=2)
        stored = set()
        for seed in range(4):
            image = generate_image("lena", size=16, seed=seed)
            from repro.core.cellgrid import encode_grid
            from repro.core.config import CodecConfig

            stream, _ = encode_grid(
                image, CodecConfig.hardware(bit_depth=image.bit_depth), stripes=2
            )
            import hashlib as _hashlib

            key = _hashlib.sha256(stream).hexdigest()
            router.store_for(key).put_stream(stream)
            stored.add(key)
        assert set(router.keys()) == stored
        router.close()

    def test_rejects_bad_configurations(self, tmp_path):
        store = ImageStore.open(tmp_path / "only")
        with pytest.raises(ConfigError):
            StoreRouter([])
        with pytest.raises(ConfigError):
            StoreRouter([store], names=["a", "b"])
        with pytest.raises(ConfigError):
            StoreRouter([store, store], names=["same", "same"])
        with pytest.raises(ConfigError):
            StoreRouter([store], replication=0)
        store.close()


class TestReplicatedRouting:
    def _router(self, tmp_path, shards=3, replication=2):
        stores = [
            ImageStore.open(tmp_path / ("shard-%02d" % index))
            for index in range(shards)
        ]
        return StoreRouter(stores, replication=replication)

    def test_shards_for_returns_top_r_best_first(self, tmp_path):
        router = self._router(tmp_path)
        names = router.names
        for key in _keys(30):
            picked = router.shards_for(key)
            assert len(picked) == 2
            # Index 0 is the primary the single-owner API names.
            assert picked[0] == router.shard_index(key)
            # The selection and its order match the full rendezvous ranking.
            assert [names[index] for index in picked] == _ranked(names, key)[:2]
        router.close()

    def test_shards_for_clamps_and_validates_r(self, tmp_path):
        router = self._router(tmp_path, shards=2, replication=1)
        key = _keys(1)[0]
        assert len(router.shards_for(key, r=1)) == 1
        # r beyond the shard count degrades to "every shard".
        assert sorted(router.shards_for(key, r=99)) == [0, 1]
        with pytest.raises(ConfigError):
            router.shards_for(key, r=0)
        router.close()

    def test_replication_beyond_shard_count_degrades_to_all(self, tmp_path):
        router = self._router(tmp_path, shards=2, replication=5)
        assert router.replication == 5
        for key in _keys(10):
            assert sorted(router.shards_for(key)) == [0, 1]
            assert {name for name, _ in router.owners(key)} == set(router.names)
        router.close()

    def test_owners_are_the_top_r_in_rank_order(self, tmp_path):
        router = self._router(tmp_path)
        names = router.names
        for key in _keys(30):
            owners = router.owners(key)
            assert [name for name, _ in owners] == _ranked(names, key)[:2]
            for name, store in owners:
                assert store is router.stores[names.index(name)]
        router.close()

    def test_keys_deduplicates_replicated_content(self, tmp_path):
        from repro.core.cellgrid import encode_grid
        from repro.core.config import CodecConfig
        from repro.imaging.synthetic import generate_image

        router = self._router(tmp_path, shards=2, replication=2)
        image = generate_image("lena", size=16, seed=1)
        stream, _ = encode_grid(
            image, CodecConfig.hardware(bit_depth=image.bit_depth), stripes=2
        )
        key = hashlib.sha256(stream).hexdigest()
        # Replication puts the same key on both shards; keys() must still
        # yield it exactly once.
        for store in router.stores:
            store.put_stream(stream)
        assert list(router.keys()) == [key]
        router.close()


class TestJoiningMembership:
    def _router(self, tmp_path, shards=2, replication=2):
        stores = [
            ImageStore.open(tmp_path / ("shard-%02d" % index))
            for index in range(shards)
        ]
        return StoreRouter(stores, replication=replication)

    def test_owners_union_old_and_new_memberships(self, tmp_path):
        router = self._router(tmp_path)
        old_names = router.names
        joining = ImageStore.open(tmp_path / "shard-02")
        router.begin_reshard(joining, "shard-02")
        assert router.joining == "shard-02"
        assert len(router) == 3
        new_names = router.names
        for key in _keys(50):
            owner_names = {name for name, _ in router.owners(key)}
            expected = set(_ranked(new_names, key)[:2]) | set(
                _ranked(old_names, key)[:2]
            )
            assert owner_names == expected
            # The union is presented in full-membership rank order.
            ranked = _ranked(new_names, key)
            listed = [name for name, _ in router.owners(key)]
            assert listed == [name for name in ranked if name in owner_names]
        router.close()

    def test_stats_flags_the_joining_shard(self, tmp_path):
        router = self._router(tmp_path)
        joining = ImageStore.open(tmp_path / "shard-02")
        router.begin_reshard(joining, "shard-02")
        flags = {entry["name"]: entry["joining"] for entry in router.stats()}
        assert flags == {"shard-00": False, "shard-01": False, "shard-02": True}
        router.close()

    def test_complete_reshard_commits_the_membership(self, tmp_path):
        router = self._router(tmp_path)
        joining = ImageStore.open(tmp_path / "shard-02")
        router.begin_reshard(joining, "shard-02")
        assert router.complete_reshard() == "shard-02"
        assert router.joining is None
        assert router.names == ["shard-00", "shard-01", "shard-02"]
        # After commit, owners are the plain top-R of the new membership.
        for key in _keys(20):
            assert [name for name, _ in router.owners(key)] == _ranked(
                router.names, key
            )[:2]
        router.close()

    def test_reshard_state_machine_rejects_misuse(self, tmp_path):
        router = self._router(tmp_path)
        with pytest.raises(ConfigError):
            router.complete_reshard()  # nothing in progress
        joining = ImageStore.open(tmp_path / "shard-02")
        with pytest.raises(ConfigError):
            router.begin_reshard(joining, "shard-00")  # duplicate name
        router.begin_reshard(joining, "shard-02")
        other = ImageStore.open(tmp_path / "shard-03")
        with pytest.raises(ConfigError):
            router.begin_reshard(other, "shard-03")  # one reshard at a time
        other.close()
        router.close()
