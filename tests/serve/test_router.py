"""Unit tests of rendezvous shard routing."""

from __future__ import annotations

import hashlib

import pytest

from repro.exceptions import ConfigError
from repro.serve.router import StoreRouter, rendezvous_shard, rendezvous_score
from repro.store.store import ImageStore


def _keys(count: int):
    """Deterministic content-hash-shaped keys."""
    return [hashlib.sha256(b"key-%d" % index).hexdigest() for index in range(count)]


class TestRendezvousFunction:
    def test_scores_are_deterministic(self):
        assert rendezvous_score("shard-00", "abc") == rendezvous_score("shard-00", "abc")
        assert rendezvous_score("shard-00", "abc") != rendezvous_score("shard-01", "abc")

    def test_pick_is_stable(self):
        names = ["shard-%02d" % index for index in range(4)]
        for key in _keys(50):
            assert rendezvous_shard(names, key) == rendezvous_shard(names, key)

    def test_no_shards_raises(self):
        with pytest.raises(ConfigError):
            rendezvous_shard([], "abc")

    def test_distribution_is_roughly_balanced(self):
        names = ["shard-%02d" % index for index in range(4)]
        counts = [0] * 4
        for key in _keys(2000):
            counts[rendezvous_shard(names, key)] += 1
        # SHA-256 scores: each shard expects ~500 of 2000; 2x slack is far
        # beyond any statistically plausible excursion.
        assert min(counts) > 250
        assert max(counts) < 1000

    def test_adding_a_shard_moves_only_keys_it_wins(self):
        """The rendezvous property: resharding N -> N+1 never moves a key
        between *old* shards — keys either stay put or move to the new one."""
        old_names = ["shard-%02d" % index for index in range(3)]
        new_names = old_names + ["shard-03"]
        keys = _keys(1000)
        moved = 0
        for key in keys:
            before = rendezvous_shard(old_names, key)
            after = rendezvous_shard(new_names, key)
            if after != before:
                assert new_names[after] == "shard-03"
                moved += 1
        # Expected moved fraction is 1/4; give it generous slack.
        assert 0.10 < moved / len(keys) < 0.40


class TestStoreRouter:
    def _router(self, tmp_path, shards=3):
        stores = [
            ImageStore.open(tmp_path / ("shard-%02d" % index))
            for index in range(shards)
        ]
        return StoreRouter(stores)

    def test_default_names_and_len(self, tmp_path):
        router = self._router(tmp_path)
        assert len(router) == 3
        assert router.names == ["shard-00", "shard-01", "shard-02"]
        router.close()

    def test_store_for_matches_shard_name(self, tmp_path):
        router = self._router(tmp_path)
        for key in _keys(20):
            index = router.shard_index(key)
            assert router.store_for(key) is router.stores[index]
            assert router.shard_name(key) == router.names[index]
        router.close()

    def test_stats_reports_every_shard(self, tmp_path):
        router = self._router(tmp_path)
        stats = router.stats()
        assert [entry["name"] for entry in stats] == router.names
        for entry in stats:
            assert entry["cache"]["current_bytes"] == 0
        router.close()

    def test_keys_spans_all_shards(self, tmp_path):
        from repro.imaging.synthetic import generate_image

        router = self._router(tmp_path, shards=2)
        stored = set()
        for seed in range(4):
            image = generate_image("lena", size=16, seed=seed)
            from repro.core.cellgrid import encode_grid
            from repro.core.config import CodecConfig

            stream, _ = encode_grid(
                image, CodecConfig.hardware(bit_depth=image.bit_depth), stripes=2
            )
            import hashlib as _hashlib

            key = _hashlib.sha256(stream).hexdigest()
            router.store_for(key).put_stream(stream)
            stored.add(key)
        assert set(router.keys()) == stored
        router.close()

    def test_rejects_bad_configurations(self, tmp_path):
        store = ImageStore.open(tmp_path / "only")
        with pytest.raises(ConfigError):
            StoreRouter([])
        with pytest.raises(ConfigError):
            StoreRouter([store], names=["a", "b"])
        with pytest.raises(ConfigError):
            StoreRouter([store, store], names=["same", "same"])
        store.close()
