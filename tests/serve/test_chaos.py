"""Tests of the fault-injection harness, standalone and through the store."""

import threading
import time

import pytest

from repro.exceptions import StoreError
from repro.imaging.synthetic import generate_planar_image
from repro.serve.chaos import FaultInjector
from repro.serve.deadline import Deadline, RequestContext, bind_context
from repro.store.backends import FilesystemBackend
from repro.store.store import ImageStore


@pytest.fixture()
def backend(tmp_path):
    inner = FilesystemBackend(tmp_path / "blobs")
    injector = FaultInjector(inner)
    injector.put("k", b"0123456789")
    yield injector
    injector.close()


class TestFaultSwitches:
    def test_kill_and_revive(self, backend):
        backend.kill()
        with pytest.raises(StoreError, match="killed"):
            backend.get("k")
        with pytest.raises(StoreError, match="killed"):
            backend.read_range("k", 0, 4)
        backend.revive()
        assert backend.get("k") == b"0123456789"
        assert backend.stats()["chaos"]["kills"] == 2

    def test_fail_next_is_transient(self, backend):
        backend.fail_next(2)
        for _ in range(2):
            with pytest.raises(StoreError, match="injected"):
                backend.length("k")
        assert backend.length("k") == 10
        assert backend.stats()["chaos"]["errors"] == 2

    def test_latency_delays_every_operation(self, tmp_path):
        slept = []
        inner = FilesystemBackend(tmp_path / "blobs2")
        injector = FaultInjector(inner, sleeper=slept.append)
        injector.put("k", b"abc")
        injector.add_latency(0.25)
        assert injector.get("k") == b"abc"
        assert 0.25 in slept
        injector.add_latency(0.0)
        slept.clear()
        injector.get("k")
        assert slept == []

    def test_timed_stall_completes(self, backend):
        backend.stall(0.05)
        begin = time.monotonic()
        assert backend.read_range("k", 0, 4) == b"0123"
        assert time.monotonic() - begin >= 0.04
        assert backend.stats()["chaos"]["stalls"] == 1

    def test_indefinite_stall_until_cleared(self, backend):
        backend.stall()
        timer = threading.Timer(0.1, backend.clear_stall)
        timer.start()
        try:
            assert backend.get("k") == b"0123456789"
        finally:
            timer.cancel()

    def test_stall_aborts_an_abandoned_request(self, backend):
        """The worker-thread escape hatch: a cancelled request frees fast."""
        backend.stall()
        context = RequestContext(Deadline(100.0))
        context.cancel()
        bind_context(context)
        begin = time.monotonic()
        try:
            with pytest.raises(StoreError, match="abandoned"):
                backend.get("k")
        finally:
            bind_context(None)
            backend.clear_stall()
        assert time.monotonic() - begin < 5.0

    def test_faults_snapshot(self, backend):
        backend.stall(1.5)
        backend.fail_next(3)
        faults = backend.faults
        assert faults["stalled"] and faults["stall_seconds"] == 1.5
        assert faults["fail_next"] == 3
        assert not faults["killed"]

    def test_observability_is_never_faulted(self, backend):
        backend.kill()
        stats = backend.stats()  # must not raise
        assert "chaos" in stats

    def test_rejects_bad_arguments(self, backend):
        with pytest.raises(StoreError):
            backend.stall(-1.0)
        with pytest.raises(StoreError):
            backend.fail_next(-1)
        with pytest.raises(StoreError):
            backend.add_latency(-0.1)


class TestThroughTheStore:
    def test_wrap_backend_installs_the_proxy(self, tmp_path):
        store = ImageStore.open(tmp_path / "store")
        try:
            key = store.put(generate_planar_image("lena", size=16), stripes=2)
            injector = store.wrap_backend(FaultInjector)
            assert store.backend is injector
            # Cached artefacts survive the wrap: the region still serves.
            assert store.get_region(key, (0, 1)).height == 8
            injector.kill()
            store.cache.clear()
            store._headers.clear()
            with pytest.raises(StoreError, match="killed"):
                store.get_region(key, (0, 1))
            injector.revive()
            assert store.get_region(key, (0, 1)).height == 8
        finally:
            store.close()
