"""End-to-end overload behaviour: shedding, per-client limits, slow peers.

Every test boots its own small server (tight watermarks make the failure
modes deterministic) and asserts the degraded-mode contract over real
sockets: a saturated server answers ``429`` + ``Retry-After`` instead of
queueing without bound, abusive peers are capped, and a client that goes
quiet mid-request cannot park a connection handler forever.
"""

from __future__ import annotations

import http.client
import io
import socket
import threading
import time

import pytest

from repro.exceptions import ServeError
from repro.imaging.pnm import write_ppm
from repro.imaging.synthetic import generate_planar_image
from repro.serve.app import ImageService, start_server_thread
from repro.serve.chaos import FaultInjector
from repro.serve.client import ServeClient
from repro.store.store import ImageStore


def _ppm_bytes(image):
    buffer = io.BytesIO()
    write_ppm(image, buffer)
    return buffer.getvalue()


def _boot(tmp_path, **service_kwargs):
    stores = [ImageStore.open(tmp_path / ("shard-%02d" % i)) for i in range(2)]
    service = ImageService(stores, **service_kwargs)
    return service, start_server_thread(service)


def _ingest(handle, size=24, stripes=4, seed=29):
    with ServeClient(*handle.address) as client:
        image = generate_planar_image("lena", size=size, seed=seed, planes=3)
        key = str(client.put_image(_ppm_bytes(image), stripes=stripes)["key"])
        client.get_region(key, 0, 1)  # warm the first region
    return key


class TestShedding:
    def test_saturated_server_sheds_with_retry_after(self, tmp_path):
        """Past the watermark: 429 + Retry-After, gauge bounded, no queue."""
        service, handle = _boot(tmp_path, max_inflight=2, retry_after=3.0)
        try:
            key = _ingest(handle)
            injector = service.router.stores[0].wrap_backend(FaultInjector)
            service.router.stores[1].wrap_backend(FaultInjector).add_latency(0.3)
            injector.add_latency(0.3)
            for store in service.router.stores:
                store.cache.clear()  # every request must take the slow path

            statuses = []
            retry_afters = []
            lock = threading.Lock()

            def hammer(stripe):
                connection = http.client.HTTPConnection(*handle.address, timeout=10)
                try:
                    connection.request(
                        "GET", "/images/%s/region/%d-%d" % (key, stripe, stripe + 1)
                    )
                    response = connection.getresponse()
                    response.read()
                    with lock:
                        statuses.append(response.status)
                        retry_afters.append(response.getheader("Retry-After"))
                finally:
                    connection.close()

            # Distinct stripes so single-flight cannot collapse the herd.
            threads = [
                threading.Thread(target=hammer, args=(stripe % 4,))
                for stripe in range(10)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert statuses.count(200) >= 1
            shed = [
                header
                for status, header in zip(statuses, retry_afters)
                if status == 429
            ]
            assert shed, "a 2-slot server under 10 concurrent decodes must shed"
            assert all(header == "3" for header in shed)
            stats = service.stats.as_json()
            assert stats["counters"]["shed"] == len(shed)
            # The never-unbounded claim: admitted concurrency stayed at the
            # watermark even though 10 requests arrived at once.
            assert service.admission.stats()["high_water"] <= 2
        finally:
            handle.stop()

    def test_healthz_and_stats_bypass_admission(self, tmp_path):
        service, handle = _boot(tmp_path, max_inflight=1)
        try:
            # Exhaust the only slot out-of-band.
            assert service.admission.try_admit()
            with ServeClient(*handle.address) as client:
                assert client.healthz()["status"] == "ok"
                assert client.stats()["admission"]["active"] == 1
            service.admission.release()
        finally:
            handle.stop()

    def test_client_retries_sheds_with_backoff(self, tmp_path):
        service, handle = _boot(tmp_path, max_inflight=1, retry_after=0.05)
        try:
            key = _ingest(handle)
            assert service.admission.try_admit()  # saturate
            release = threading.Timer(0.3, service.admission.release)
            release.start()
            client = ServeClient(
                *handle.address, shed_retries=20, backoff=0.05, max_backoff=0.2
            )
            try:
                region = client.get_region(key, 0, 1)  # retries until released
                assert region.height == 6
                assert client.shed_seen > 0
            finally:
                client.close()
                release.cancel()
        finally:
            handle.stop()

    def test_exhausted_retries_surface_the_429(self, tmp_path):
        service, handle = _boot(tmp_path, max_inflight=1, retry_after=0.05)
        try:
            key = _ingest(handle)
            assert service.admission.try_admit()
            try:
                client = ServeClient(
                    *handle.address, shed_retries=1, backoff=0.01, max_backoff=0.05
                )
                with pytest.raises(ServeError) as info:
                    client.get_region(key, 0, 1)
                assert info.value.status == 429
                assert client.shed_seen == 2  # initial try + one retry
                client.close()
            finally:
                service.admission.release()
        finally:
            handle.stop()


class TestPerClientLimits:
    def test_connection_cap_rejects_the_second_connection(self, tmp_path):
        service, handle = _boot(tmp_path, max_connections_per_client=1)
        try:
            first = http.client.HTTPConnection(*handle.address, timeout=10)
            first.request("GET", "/healthz")
            assert first.getresponse().status == 200

            second = http.client.HTTPConnection(*handle.address, timeout=10)
            second.request("GET", "/healthz")
            response = second.getresponse()
            assert response.status == 429
            assert response.getheader("Retry-After") is not None
            second.close()

            first.close()
            time.sleep(0.1)  # let the server account the disconnect
            third = http.client.HTTPConnection(*handle.address, timeout=10)
            third.request("GET", "/healthz")
            assert third.getresponse().status == 200
            third.close()
            assert service.stats.counter("connections_rejected") == 1
        finally:
            handle.stop()

    def test_rate_limit_sheds_excess_requests(self, tmp_path):
        service, handle = _boot(tmp_path, client_rate=1.0, client_burst=2.0)
        try:
            connection = http.client.HTTPConnection(*handle.address, timeout=10)
            statuses = []
            for _ in range(4):
                connection.request("GET", "/images/missing")
                response = connection.getresponse()
                response.read()
                statuses.append(response.status)
            connection.close()
            # Burst of 2 is spent on the first two (404s: still charged),
            # then the bucket is empty and the rest shed.
            assert statuses[:2] == [404, 404]
            assert 429 in statuses[2:]
            assert service.stats.counter("rate_limited") >= 1

            # Exempt endpoints never charge the bucket.
            with ServeClient(*handle.address) as client:
                for _ in range(5):
                    assert client.healthz()["shards"] == 2
        finally:
            handle.stop()


class TestSlowPeers:
    def test_half_sent_request_gets_a_408(self, tmp_path):
        """The read-loop bugfix: a stalled body read must not park forever."""
        service, handle = _boot(tmp_path, read_timeout=0.2)
        try:
            raw = socket.create_connection(handle.address, timeout=10)
            try:
                raw.sendall(b"PUT /images HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc")
                raw.settimeout(5.0)
                begin = time.monotonic()
                payload = raw.recv(65536)
                elapsed = time.monotonic() - begin
            finally:
                raw.close()
            assert b"408" in payload.split(b"\r\n", 1)[0]
            assert elapsed < 4.0
        finally:
            handle.stop()

    def test_stalled_header_block_gets_a_408(self, tmp_path):
        service, handle = _boot(tmp_path, read_timeout=0.2)
        try:
            raw = socket.create_connection(handle.address, timeout=10)
            try:
                raw.sendall(b"GET /healthz HTTP/1.1\r\nx-half: yes")  # no terminator
                raw.settimeout(5.0)
                payload = raw.recv(65536)
            finally:
                raw.close()
            assert b"408" in payload.split(b"\r\n", 1)[0]
        finally:
            handle.stop()

    def test_idle_keepalive_connection_is_closed_quietly(self, tmp_path):
        service, handle = _boot(tmp_path, idle_timeout=0.2)
        try:
            raw = socket.create_connection(handle.address, timeout=10)
            try:
                raw.sendall(b"GET /healthz HTTP/1.1\r\n\r\n")
                raw.settimeout(5.0)
                first = raw.recv(65536)
                assert first.startswith(b"HTTP/1.1 200")
                # Then go idle: the server closes with no error response.
                tail = raw.recv(65536)
            finally:
                raw.close()
            assert tail == b""
        finally:
            handle.stop()
