"""Unit tests of the deadline/cancellation machinery (fake clocks)."""

import threading

import pytest

from repro.exceptions import DeadlineExceededError, ServeError
from repro.serve.deadline import (
    Deadline,
    RequestContext,
    bind_context,
    context_cell_hook,
    current_context,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestDeadline:
    def test_remaining_counts_down_and_clamps(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining == 2.0
        clock.now = 1.5
        assert deadline.remaining == pytest.approx(0.5)
        clock.now = 5.0
        assert deadline.remaining == 0.0
        assert deadline.expired

    def test_check_raises_a_504_typed_error(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        deadline.check("decode")  # within budget: no raise
        clock.now = 1.0
        with pytest.raises(DeadlineExceededError) as info:
            deadline.check("decode")
        assert info.value.status == 504
        assert isinstance(info.value, ServeError)

    def test_infinite_budget_never_expires(self):
        deadline = Deadline(float("inf"))
        assert not deadline.expired
        assert deadline.remaining == float("inf")
        deadline.check()


class TestRequestContext:
    def test_cancel_latches_and_check_raises(self):
        context = RequestContext(Deadline(100.0))
        assert not context.should_abort
        context.check()
        context.cancel()
        assert context.cancelled
        assert context.should_abort
        with pytest.raises(DeadlineExceededError):
            context.check()

    def test_expiry_also_aborts(self):
        clock = FakeClock()
        context = RequestContext(Deadline(1.0, clock=clock))
        clock.now = 2.0
        assert context.should_abort
        with pytest.raises(DeadlineExceededError):
            context.check("cell")

    def test_admitted_flag_defaults_true(self):
        assert RequestContext(Deadline(1.0)).admitted
        assert not RequestContext(Deadline(1.0), admitted=False).admitted


class TestThreadLocalBinding:
    def test_bind_and_unbind(self):
        assert current_context() is None
        context = RequestContext(Deadline(1.0))
        bind_context(context)
        try:
            assert current_context() is context
        finally:
            bind_context(None)
        assert current_context() is None

    def test_binding_is_per_thread(self):
        context = RequestContext(Deadline(1.0))
        bind_context(context)
        seen = []

        def other_thread():
            seen.append(current_context())

        try:
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
        finally:
            bind_context(None)
        assert seen == [None]


class TestCellHook:
    def test_noop_without_a_bound_context(self):
        assert current_context() is None
        context_cell_hook()  # must not raise

    def test_raises_once_the_bound_request_is_cancelled(self):
        context = RequestContext(Deadline(100.0))
        bind_context(context)
        try:
            context_cell_hook()  # healthy: no raise
            context.cancel()
            with pytest.raises(DeadlineExceededError):
                context_cell_hook()
        finally:
            bind_context(None)
