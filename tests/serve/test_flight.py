"""Unit and concurrency tests of the single-flight coalescing map."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.flight import SingleFlight


class TestSingleThreaded:
    def test_runs_and_returns(self):
        flight = SingleFlight()
        assert flight.run("k", lambda: 41 + 1) == 42
        stats = flight.stats()
        assert stats == {"leaders": 1, "coalesced": 0, "timeouts": 0, "in_flight": 0}

    def test_sequential_calls_are_separate_flights(self):
        flight = SingleFlight()
        calls = []
        for _ in range(3):
            flight.run("k", lambda: calls.append(None))
        assert len(calls) == 3
        assert flight.stats()["leaders"] == 3

    def test_exception_propagates_and_clears_the_flight(self):
        flight = SingleFlight()
        with pytest.raises(RuntimeError):
            flight.run("k", self._boom)
        assert flight.in_flight == 0
        # The key is usable again afterwards.
        assert flight.run("k", lambda: "fine") == "fine"

    @staticmethod
    def _boom():
        raise RuntimeError("supplier failed")


class TestConcurrent:
    def test_herd_on_one_key_executes_supplier_once(self):
        """While a leader is in flight, every other caller coalesces.

        The leader's supplier blocks until the test has *observed* all 15
        followers in the coalesced counter, so the herd is guaranteed to
        be parked — no timing assumptions, no flakiness.
        """
        flight = SingleFlight()
        executions = []
        release = threading.Event()
        results = []
        lock = threading.Lock()

        def slow_supplier():
            executions.append(threading.get_ident())
            release.wait(timeout=10)
            return "payload"

        def caller():
            value = flight.run("hot", slow_supplier)
            with lock:
                results.append(value)

        leader = threading.Thread(target=caller)
        leader.start()
        deadline = time.monotonic() + 5
        while not executions and time.monotonic() < deadline:
            time.sleep(0.001)
        assert executions, "leader never entered the supplier"

        followers = [threading.Thread(target=caller) for _ in range(15)]
        for thread in followers:
            thread.start()
        while flight.stats()["coalesced"] < 15 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert flight.stats()["coalesced"] == 15, "followers failed to coalesce"
        release.set()

        leader.join(timeout=10)
        for thread in followers:
            thread.join(timeout=10)
        assert len(executions) == 1, "coalescing must decode exactly once"
        assert results == ["payload"] * 16
        stats = flight.stats()
        assert stats["leaders"] == 1
        assert stats["coalesced"] == 15
        assert stats["in_flight"] == 0

    def test_distinct_keys_run_concurrently(self):
        flight = SingleFlight()
        started = threading.Barrier(2, timeout=5)

        def supplier(tag):
            # Both suppliers must be inside run() at once for the barrier
            # to release — proof that key isolation does not serialise.
            started.wait()
            return tag

        outcomes = {}

        def caller(key):
            outcomes[key] = flight.run(key, lambda: supplier(key))

        threads = [threading.Thread(target=caller, args=(k,)) for k in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert outcomes == {"a": "a", "b": "b"}

    def test_herd_shares_the_leaders_exception(self):
        flight = SingleFlight()
        barrier = threading.Barrier(8)
        errors = []
        lock = threading.Lock()

        def failing_supplier():
            time.sleep(0.05)  # hold the flight open for the herd
            raise ValueError("decode failed")

        def caller():
            barrier.wait()
            try:
                flight.run("k", failing_supplier)
            except ValueError as error:
                with lock:
                    errors.append(error)

        threads = [threading.Thread(target=caller) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(errors) == 8
        assert flight.in_flight == 0

    def test_late_arrival_starts_a_fresh_flight(self):
        flight = SingleFlight()
        flight.run("k", lambda: "first")
        assert flight.run("k", lambda: "second") == "second"
        assert flight.stats()["leaders"] == 2
        assert flight.stats()["coalesced"] == 0
