"""Unit tests of the hand-rolled HTTP/1.1 parser and response writer."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.http import (
    HttpProtocolError,
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    json_payload,
    read_request,
    render_response,
)


def _parse(raw: bytes):
    """Feed raw bytes to the parser through a real StreamReader."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestRequestParsing:
    def test_get_with_query_and_headers(self):
        request = _parse(
            b"GET /images/abc/plane/2?verbose=1&name=a%20b HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"X-Custom: value\r\n"
            b"\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/images/abc/plane/2"
        assert request.query == {"verbose": "1", "name": "a b"}
        assert request.headers["host"] == "localhost"
        assert request.headers["x-custom"] == "value"
        assert request.body == b""
        assert request.keep_alive

    def test_put_with_body(self):
        request = _parse(
            b"PUT /images?stripes=8 HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"
        )
        assert request.method == "PUT"
        assert request.body == b"hello"
        assert request.query == {"stripes": "8"}

    def test_connection_close_disables_keep_alive(self):
        request = _parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_eof_before_any_bytes_is_none(self):
        assert _parse(b"") is None

    def test_percent_escapes_in_path_are_decoded(self):
        request = _parse(b"GET /images/a%2Db HTTP/1.1\r\n\r\n")
        assert request.path == "/images/a-b"

    @pytest.mark.parametrize(
        "raw",
        [
            b"GARBAGE\r\n\r\n",  # not METHOD TARGET VERSION
            b"GET /x SPDY/3\r\n\r\n",  # unsupported protocol
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",  # no colon
            b"PUT /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",  # bad length
            b"PUT /x HTTP/1.1\r\nContent-Length: -4\r\n\r\n",  # negative
            b"PUT /x HTTP/1.1\r\n\r\n",  # body verb without a length
            b"GET /x HTTP/1.1\r\nHost",  # EOF inside headers
        ],
    )
    def test_malformed_requests_raise_protocol_errors(self, raw):
        with pytest.raises(HttpProtocolError):
            _parse(raw)

    def test_truncated_body_raises(self):
        with pytest.raises(HttpProtocolError):
            _parse(b"PUT /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")

    def test_oversized_body_is_rejected_before_buffering(self):
        raw = b"PUT /x HTTP/1.1\r\nContent-Length: %d\r\n\r\n" % (MAX_BODY_BYTES + 1)
        with pytest.raises(HttpProtocolError) as excinfo:
            _parse(raw)
        assert excinfo.value.status == 413

    def test_oversized_header_block_is_rejected(self):
        filler = b"X-Pad: " + b"a" * 1024 + b"\r\n"
        raw = b"GET /x HTTP/1.1\r\n" + filler * (MAX_HEADER_BYTES // len(filler) + 2)
        with pytest.raises(HttpProtocolError) as excinfo:
            _parse(raw + b"\r\n")
        assert excinfo.value.status == 431

    def test_transfer_encoding_is_refused(self):
        with pytest.raises(HttpProtocolError) as excinfo:
            _parse(b"PUT /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert excinfo.value.status == 501


class TestResponseRendering:
    def test_response_shape(self):
        body = json_payload({"status": "ok"})
        raw = render_response(200, body)
        head, _, payload = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Content-Length: %d" % len(body) in lines
        assert "Content-Type: application/json" in lines
        assert "Connection: keep-alive" in lines
        assert payload == body

    def test_close_and_extra_headers(self):
        raw = render_response(
            404,
            b"{}",
            keep_alive=False,
            extra_headers=[("X-Trace", "t1")],
        )
        head = raw.split(b"\r\n\r\n")[0].decode("latin-1")
        assert "HTTP/1.1 404 Not Found" in head
        assert "Connection: close" in head
        assert "X-Trace: t1" in head
