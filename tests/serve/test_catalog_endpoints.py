"""The data-plane HTTP surface: ``GET /catalog`` and ``DELETE /images/{key}``.

Real sockets against a two-shard server; the shard stores are kept in
reach so the tests can drive the GC sweep directly and observe the
two-phase deletion from the client's side of the wire.
"""

from __future__ import annotations

import dataclasses
import io

import pytest

from repro.exceptions import ServeError
from repro.imaging.pnm import write_ppm
from repro.imaging.synthetic import generate_planar_image
from repro.serve.app import ImageService, start_server_thread
from repro.serve.client import ServeClient
from repro.store.gc import sweep
from repro.store.store import ImageStore


@pytest.fixture(scope="module")
def shards(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-catalog")
    stores = [ImageStore.open(root / ("shard-%02d" % index)) for index in range(2)]
    yield stores
    for store in stores:
        store.close()


@pytest.fixture(scope="module")
def server(shards):
    handle = start_server_thread(ImageService(shards))
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    with ServeClient(*server.address) as active:
        yield active


def _ppm_bytes(image):
    buffer = io.BytesIO()
    write_ppm(image, buffer)
    return buffer.getvalue()


@pytest.fixture(scope="module")
def corpus(server, shards):
    """Five tagged images put through the HTTP front door."""
    keys = {}
    with ServeClient(*server.address) as loader:
        for index, name in enumerate(
            ("lena", "boat", "peppers", "mandrill", "zelda")
        ):
            image = generate_planar_image(name, size=16, seed=index)
            outcome = loader.put_image(_ppm_bytes(image), stripes=2)
            keys[name] = outcome["key"]
    # Tags ride the store API (the HTTP put has no tag channel): label
    # one entry directly on its owning shard so tag filters have a target.
    lena = keys["lena"]
    owner = next(s for s in shards if s.catalog.get(lena) is not None)
    entry = owner.catalog.get(lena)
    owner.catalog.record_put(dataclasses.replace(entry, tags=(("subject", "lena"),)))
    return keys


class TestCatalogEndpoint:
    def test_merged_across_shards_newest_first(self, client, corpus):
        document = client.catalog()
        assert document["total"] == len(corpus)
        assert set(row["key"] for row in document["entries"]) == set(corpus.values())
        stamps = [row["created_at"] for row in document["entries"]]
        assert stamps == sorted(stamps, reverse=True)
        assert all(row["shard"].startswith("shard-") for row in document["entries"])

    def test_pagination_is_stable_and_past_end_is_empty(self, client, corpus):
        first = client.catalog(limit=2, offset=0)
        second = client.catalog(limit=2, offset=2)
        assert first["total"] == second["total"] == len(corpus)
        page_keys = [row["key"] for row in first["entries"] + second["entries"]]
        assert len(page_keys) == len(set(page_keys)) == 4
        past = client.catalog(limit=5, offset=100)
        assert past["entries"] == [] and past["total"] == len(corpus)

    def test_field_filters(self, client, corpus):
        assert client.catalog(planes=3)["total"] == len(corpus)
        assert client.catalog(planes=1)["total"] == 0
        assert client.catalog(engine="reference")["total"] == len(corpus)
        assert client.catalog(engine="fast")["total"] == 0

    def test_tag_filters(self, client, corpus):
        document = client.catalog(tag="subject=lena")
        assert document["total"] == 1
        assert document["entries"][0]["key"] == corpus["lena"]
        assert client.catalog(tag="subject")["total"] == 1
        assert client.catalog(tag="subject=boat")["total"] == 0

    def test_tag_filter_on_missing_tag_is_empty(self, client, corpus):
        document = client.catalog(tag="no-such-tag")
        assert document["entries"] == [] and document["total"] == 0


class TestDeleteEndpoint:
    def test_delete_tombstones_then_gc_reclaims(self, client, shards):
        image = generate_planar_image("goldhill", size=16)
        key = client.put_image(_ppm_bytes(image), stripes=2)["key"]

        outcome = client.delete_image(key, ttl=0.0)
        assert outcome["key"] == key and outcome["shard"].startswith("shard-")
        assert outcome["purge_after"] == outcome["deleted_at"]

        # Tombstoned: reads 404, but the catalog still shows the entry.
        with pytest.raises(ServeError) as excinfo:
            client.get_image(key)
        assert excinfo.value.status == 404
        visible = client.catalog(include_deleted=True)
        assert any(row["key"] == key for row in visible["entries"])
        tombstones = client.catalog(deleted_only=True)
        assert any(row["key"] == key for row in tombstones["entries"])
        assert all(row["key"] != key for row in client.catalog()["entries"])

        # The sweep on the owning shard purges it for good.
        owner = next(
            store for store in shards if store.catalog.get(key) is not None
        )
        result = sweep(owner)
        assert key in list(result.purged_keys)
        with pytest.raises(ServeError) as excinfo:
            client.get_image(key)
        assert excinfo.value.status == 404
        assert all(
            row["key"] != key
            for row in client.catalog(include_deleted=True)["entries"]
        )

    def test_delete_unknown_key_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.delete_image("0" * 64)
        assert excinfo.value.status == 404

    def test_negative_ttl_is_400(self, client):
        image = generate_planar_image("barb", size=16)
        key = client.put_image(_ppm_bytes(image), stripes=2)["key"]
        with pytest.raises(ServeError) as excinfo:
            client.delete_image(key, ttl=-1.0)
        assert excinfo.value.status == 400

    def test_endpoints_show_up_in_server_stats(self, client, corpus):
        client.catalog()
        endpoints = client.stats()["server"]["endpoints"]
        assert "catalog" in endpoints
        assert "delete_image" in endpoints
