"""Replicated serving: health hysteresis, read/write failover, probing.

The service half is exercised directly (no sockets) — :class:`ImageService`
is the synchronous layer the HTTP front-end merely transports for, and the
fault injectors need in-process handles on the shard backends anyway.
"""

from __future__ import annotations

import io

import pytest

from repro.exceptions import (
    BlobNotFoundError,
    ConfigError,
    ServeError,
    StoreError,
)
from repro.imaging.pnm import write_ppm
from repro.imaging.synthetic import generate_planar_image
from repro.serve.app import ImageService
from repro.serve.chaos import FaultInjector
from repro.serve.client import ServeClient
from repro.serve.health import HealthProber, HealthTracker
from repro.store.catalog import CatalogFilter
from repro.store.store import ImageStore


def _ppm_bytes(image):
    buffer = io.BytesIO()
    write_ppm(image, buffer)
    return buffer.getvalue()


@pytest.fixture()
def service(tmp_path):
    """A two-shard R=2 service with a fault injector on every backend."""
    stores = [
        ImageStore.open(tmp_path / ("shard-%02d" % index)) for index in range(2)
    ]
    active = ImageService(stores, replication=2)
    injectors = dict(
        zip(active.router.names, (s.wrap_backend(FaultInjector) for s in stores))
    )
    yield active, injectors
    for injector in injectors.values():
        injector.revive()
    active.close()


def _drop_caches(service):
    """Warm decoded-cell caches never touch the backend, so a fault drill
    must empty them or reads bypass the injector entirely."""
    for store in service.router.stores:
        store.cache.clear()
        store._headers.clear()


class TestHealthTracker:
    def test_down_after_consecutive_failures_only(self):
        tracker = HealthTracker(["a"], down_after=3, up_after=2)
        tracker.record_failure("a")
        tracker.record_failure("a")
        tracker.record_success("a")  # breaks the streak
        tracker.record_failure("a")
        tracker.record_failure("a")
        assert tracker.is_up("a")
        tracker.record_failure("a")
        assert not tracker.is_up("a")
        assert tracker.down_shards() == ["a"]

    def test_up_after_consecutive_successes_only(self):
        tracker = HealthTracker(["a"], down_after=1, up_after=2)
        tracker.record_failure("a")
        assert not tracker.is_up("a")
        tracker.record_success("a")
        tracker.record_failure("a")  # breaks the recovery streak
        tracker.record_success("a")
        assert not tracker.is_up("a")
        tracker.record_success("a")
        assert tracker.is_up("a")
        # Down once, up once — the mid-recovery failure hit an already-down
        # shard, which is not a transition.
        assert tracker.snapshot()["a"]["transitions"] == 2

    def test_unknown_shards_default_up_and_register_lazily(self):
        tracker = HealthTracker(down_after=1)
        assert tracker.is_up("never-seen")
        tracker.record_failure("joiner")  # a resharding shard, first report
        assert tracker.down_shards() == ["joiner"]

    def test_prefer_healthy_reorders_but_never_drops(self):
        tracker = HealthTracker(["a", "b", "c"], down_after=1)
        tracker.record_failure("a")
        candidates = [("a", 1), ("b", 2), ("c", 3)]
        assert tracker.prefer_healthy(candidates) == [("b", 2), ("c", 3), ("a", 1)]
        # The partition is stable: healthy order and sick order survive.
        tracker.record_failure("b")
        assert tracker.prefer_healthy(candidates) == [("c", 3), ("a", 1), ("b", 2)]

    def test_rejects_bad_hysteresis(self):
        with pytest.raises(ConfigError):
            HealthTracker(down_after=0)
        with pytest.raises(ConfigError):
            HealthTracker(up_after=0)


class TestReplicatedWrites:
    def test_put_fans_out_to_every_owner(self, service):
        active, _ = service
        image = generate_planar_image("lena", size=16, seed=1, planes=3)
        outcome = active.put_image(_ppm_bytes(image), stripes=2)
        # Two shards, R=2: every key lives on both.
        assert sorted(outcome["replicas"]) == sorted(active.router.names)
        for store in active.router.stores:
            assert store.contains(outcome["key"])

    def test_put_survives_one_dead_replica(self, service):
        active, injectors = service
        image = generate_planar_image("boat", size=16, seed=2, planes=3)
        victim = active.router.names[0]
        injectors[victim].kill()
        outcome = active.put_image(_ppm_bytes(image), stripes=2)
        assert outcome["replicas"] == [active.router.names[1]]
        assert active.stats.counter("write_failovers") == 1
        assert active.stats.shard_counter(victim, "write_failovers") == 1
        injectors[victim].revive()

    def test_put_fails_only_when_every_owner_is_down(self, service):
        active, injectors = service
        image = generate_planar_image("zelda", size=16, seed=3, planes=3)
        for injector in injectors.values():
            injector.kill()
        with pytest.raises(StoreError):
            active.put_image(_ppm_bytes(image), stripes=2)

    def test_delete_tombstones_every_replica(self, service):
        active, _ = service
        image = generate_planar_image("peppers", size=16, seed=4, planes=3)
        key = active.put_image(_ppm_bytes(image), stripes=2)["key"]
        outcome = active.delete_image(key, ttl=60.0)
        assert sorted(outcome["replicas"]) == sorted(active.router.names)
        for store in active.router.stores:
            entry = store.catalog.get(key)
            assert entry.deleted_at is not None

    def test_delete_unknown_key_is_not_found_across_replicas(self, service):
        active, _ = service
        with pytest.raises(BlobNotFoundError):
            active.delete_image("0" * 64)


class TestReadFailover:
    def test_reads_survive_a_dead_primary(self, service):
        active, injectors = service
        image = generate_planar_image("lena", size=32, seed=5, planes=3)
        outcome = active.put_image(_ppm_bytes(image), stripes=4)
        key, primary = outcome["key"], outcome["shard"]
        assert active.get_region(key, 0, 1)[0]  # warm path works
        _drop_caches(active)
        injectors[primary].kill()
        try:
            for stripe in range(4):
                body, content_type = active.get_region(key, stripe, stripe + 1)
                assert body and content_type.startswith("image/")
            payload, _ = active.get_image(key)
            assert payload
        finally:
            injectors[primary].revive()
        # Hysteresis flips the primary to down after 3 consecutive
        # failures, after which reads stop even trying it.
        assert active.stats.counter("failovers") >= 3
        assert active.stats.shard_counter(primary, "failovers") >= 3
        other = next(name for name in active.router.names if name != primary)
        assert active.stats.shard_counter(other, "failovers") == 0

    def test_failover_marks_health_down_then_probe_revives(self, service):
        active, injectors = service
        image = generate_planar_image("boat", size=16, seed=6, planes=3)
        key = active.put_image(_ppm_bytes(image), stripes=2)["key"]
        primary = active.router.shard_name(key)
        _drop_caches(active)
        injectors[primary].kill()
        for _ in range(3):  # down_after=3
            _drop_caches(active)
            active.get_region(key, 0, 1)
        assert active.health.down_shards() == [primary]
        assert active.healthz()["shards_down"] == [primary]
        # Passive reads now avoid the shard; only the prober notices the
        # recovery.
        injectors[primary].revive()
        prober = HealthProber(active.router, active.health, interval=60.0)
        prober.probe_once()
        prober.probe_once()  # up_after=2
        assert active.health.down_shards() == []
        assert "shards_down" not in active.healthz()

    def test_failover_does_not_poison_cache_or_flight(self, service):
        active, injectors = service
        image = generate_planar_image("mandrill", size=16, seed=7, planes=3)
        key = active.put_image(_ppm_bytes(image), stripes=2)["key"]
        primary = active.router.shard_name(key)
        _drop_caches(active)
        injectors[primary].kill()
        failed_over, _ = active.get_region(key, 0, 1)
        injectors[primary].revive()
        assert active.flight.in_flight == 0
        # The failed-over response and the healthy one are byte-identical.
        assert active.get_region(key, 0, 1)[0] == failed_over

    def test_missing_key_is_not_found_only_when_every_owner_answers(
        self, service
    ):
        active, injectors = service
        unknown = "f" * 64
        with pytest.raises(BlobNotFoundError):
            active.get_image(unknown)
        # With one owner unreadable a 404 would lie — the blob may live
        # there — so the store failure surfaces instead.
        victim = active.router.names[0]
        injectors[victim].kill()
        with pytest.raises(StoreError) as outcome:
            active.get_image(unknown)
        assert not isinstance(outcome.value, BlobNotFoundError)
        injectors[victim].revive()


class TestHealthProber:
    def test_probe_marks_killed_shards_down_and_revived_up(self, tmp_path):
        stores = [
            ImageStore.open(tmp_path / ("shard-%02d" % index)) for index in range(2)
        ]
        active = ImageService(stores, replication=2, health_down_after=1)
        injector = stores[0].wrap_backend(FaultInjector)
        prober = HealthProber(active.router, active.health, interval=60.0)
        try:
            assert prober.probe_once() == {"shard-00": True, "shard-01": True}
            injector.kill()
            assert prober.probe_once()["shard-00"] is False
            assert active.health.down_shards() == ["shard-00"]
            injector.revive()
            prober.probe_once()
            prober.probe_once()
            assert active.health.down_shards() == []
            assert prober.stats() == {"probes": 8, "probe_failures": 1}
        finally:
            active.close()

    def test_rejects_bad_cadence(self, tmp_path):
        store = ImageStore.open(tmp_path / "only")
        active = ImageService([store])
        try:
            with pytest.raises(ConfigError):
                HealthProber(active.router, active.health, interval=0.0)
            with pytest.raises(ConfigError):
                HealthProber(active.router, active.health, timeout=0.0)
        finally:
            active.close()


class TestClientReplay:
    """The transport bugfix: only idempotent GETs ride a reconnect."""

    class _DeadConnection:
        """Stub whose socket died before the response came back."""

        def __init__(self):
            self.requests = []

        def request(self, method, path, body=None, headers=None):
            self.requests.append((method, path))
            raise ConnectionError("peer reset")

        def close(self):
            pass

    def _client(self):
        client = ServeClient("localhost", 1)
        dead = self._DeadConnection()
        client._connection = dead
        return client, dead

    @pytest.mark.parametrize(
        "call",
        [
            lambda c: c.put_image(b"P6 1 1 255 abc"),
            lambda c: c.delete_image("0" * 64),
            lambda c: c.get_regions("0" * 64, [(0, 1)]),
        ],
        ids=["put", "delete", "regions-post"],
    )
    def test_mutating_methods_raise_instead_of_replaying(self, call):
        client, dead = self._client()
        with pytest.raises(ServeError, match="not replaying a mutating method"):
            call(client)
        assert len(dead.requests) == 1  # exactly one attempt, no replay
        # The dead socket was discarded so the next call starts clean.
        assert client._connection is None

    def test_get_replays_once_on_a_fresh_socket(self, tmp_path):
        from repro.serve.app import start_server_thread

        store = ImageStore.open(tmp_path / "only")
        handle = start_server_thread(ImageService([store]))
        try:
            client = ServeClient(*handle.address)
            # Seed a dead keep-alive connection; the GET must reconnect
            # transparently and succeed against the real server.
            client._connection = self._DeadConnection()
            assert client.healthz()["status"] == "ok"
            client.close()
        finally:
            handle.stop()


class TestClientPlaneGuard:
    def test_multi_plane_payload_raises_serve_error(self, monkeypatch):
        client = ServeClient("localhost", 1)
        ppm = _ppm_bytes(generate_planar_image("lena", size=16, seed=8, planes=3))
        monkeypatch.setattr(
            client, "_request", lambda *args, **kwargs: (200, ppm, "image/x-portable-pixmap")
        )
        with pytest.raises(ServeError, match="expected a single-plane image"):
            client.get_plane("0" * 64, 0)


class TestCatalogPushdown:
    def _populate(self, active, count):
        keys = []
        for seed in range(count):
            image = generate_planar_image("lena", size=16, seed=seed, planes=3)
            keys.append(active.put_image(_ppm_bytes(image), stripes=2)["key"])
        return keys

    def test_page_bound_is_pushed_into_every_shard_query(self, service, monkeypatch):
        active, _ = service
        self._populate(active, 6)
        seen = []
        for store in active.router.stores:
            original = store.catalog.query

            def spy(filter=None, limit=None, offset=0, _original=original):
                seen.append(limit)
                return _original(filter, limit=limit, offset=offset)

            monkeypatch.setattr(store.catalog, "query", spy)
        active.catalog_payload(CatalogFilter(), limit=2, offset=1)
        assert seen == [3, 3]  # offset + limit, on both shards
        seen.clear()
        active.catalog_payload(CatalogFilter(), limit=None)
        assert seen == [None, None]  # unbounded listing stays unbounded

    def test_truncated_merge_pages_match_the_unbounded_listing(self, service):
        active, _ = service
        self._populate(active, 6)
        unbounded = active.catalog_payload(CatalogFilter(), limit=None)
        assert unbounded["total"] >= 6
        pages = []
        for offset in range(0, unbounded["total"], 2):
            page = active.catalog_payload(CatalogFilter(), limit=2, offset=offset)
            assert page["total"] == unbounded["total"]  # exact despite pushdown
            pages.extend(page["entries"])
        assert pages == unbounded["entries"]
