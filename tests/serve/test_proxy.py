"""Proxy-specific behaviour: supervision, failover, drain, forwarding.

The parity/e2e suites (:mod:`tests.serve.test_topologies`) prove the proc
topology speaks the same API; this module exercises what only the proxy
does — worker crash recovery under replication, the SIGTERM drain
cascade, version-mismatch refusal, deadline-header forwarding and the
worker-affinity rotation.
"""

from __future__ import annotations

import io
import os
import signal
import time

import pytest

from repro.exceptions import ConfigError, DeadlineExceededError
from repro.imaging.pnm import write_ppm
from repro.imaging.synthetic import generate_planar_image
from repro.serve.cli import shard_paths
from repro.serve.client import ServeClient
from repro.serve.deadline import Deadline, RequestContext
from repro.serve.proxy import ProxyService, RemoteShard, start_proxy_thread
from repro.serve.worker import WorkerGroup, WorkerProcess, WorkerSpec, WorkerSupervisor

SHARDS = 2
WORKERS = 2


def _specs(root, shards=SHARDS):
    return [
        WorkerSpec(shard_name="shard-%02d" % index, store_path=path)
        for index, path in enumerate(shard_paths(root, shards, "fs"))
    ]


def _ppm_bytes(image):
    buffer = io.BytesIO()
    write_ppm(image, buffer)
    return buffer.getvalue()


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """2 shards x 2 workers behind one proxy, replication 2."""
    root = tmp_path_factory.mktemp("proxy-fleet")
    supervisor = WorkerSupervisor(
        _specs(root), workers_per_shard=WORKERS, restart_backoff=0.1
    ).start()
    service = ProxyService(supervisor, replication=2)
    handle = start_proxy_thread(service)
    yield handle, supervisor
    handle.stop()
    service.close()


@pytest.fixture()
def client(fleet):
    handle, _ = fleet
    with ServeClient(*handle.address) as active:
        yield active


class TestSupervision:
    def test_stats_reports_the_worker_fleet(self, client):
        workers = client.stats()["workers"]
        assert set(workers) == {"shard-00", "shard-01"}
        for rows in workers.values():
            assert len(rows) == WORKERS
            for row in rows:
                assert row["up"] is True
                assert isinstance(row["pid"], int)
                assert row["port"] > 0

    def test_put_fans_out_to_every_owner_shard(self, client, fleet):
        _, supervisor = fleet
        image = generate_planar_image("lena", size=24, seed=41, planes=3)
        outcome = client.put_image(_ppm_bytes(image), stripes=4)
        assert sorted(outcome["replicas"]) == ["shard-00", "shard-01"]
        # Every worker of every shard can serve the key: the blob landed
        # in each shard's shared backend, readable by all its workers.
        for group in supervisor.groups:
            for worker in group.workers:
                with ServeClient(worker.host, worker.port) as direct:
                    assert direct.get_image(outcome["key"]) == image

    def test_sigkilled_worker_zero_failed_reads_then_restart(self, client):
        images = [
            generate_planar_image("peppers", size=24, seed=seed, planes=3)
            for seed in range(50, 54)
        ]
        keys = [client.put_image(_ppm_bytes(i), stripes=4)["key"] for i in images]
        victim = client.stats()["workers"]["shard-00"][0]
        os.kill(victim["pid"], signal.SIGKILL)
        # Zero failed reads while the worker is down: sibling worker and
        # replica shard absorb everything the dead worker owned.
        for _ in range(6):
            for key, image in zip(keys, images):
                assert client.get_image(key) == image
        # The supervisor notices and respawns with backoff.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            row = client.stats()["workers"]["shard-00"][0]
            if row["restarts"] >= 1 and row["up"]:
                break
            time.sleep(0.1)
        else:
            pytest.fail("worker was not restarted within 30s")
        assert row["pid"] != victim["pid"]
        for key, image in zip(keys, images):
            assert client.get_image(key) == image

    def test_healthz_counts_the_shards(self, client):
        report = client.healthz()
        assert report["status"] == "ok"
        assert report["shards"] == SHARDS
        assert "shards_down" not in report


class TestLifecycle:
    def test_drain_cascade_stops_every_worker(self, tmp_path):
        supervisor = WorkerSupervisor(
            _specs(tmp_path, shards=1), workers_per_shard=2
        ).start()
        pids = [worker.pid for group in supervisor.groups for worker in group.workers]
        assert all(pids)
        service = ProxyService(supervisor)
        handle = start_proxy_thread(service)
        handle.stop()
        service.close()  # cascades SIGTERM through the supervisor
        for group in supervisor.groups:
            for worker in group.workers:
                assert worker.poll() is not None
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # the process must be fully gone

    def test_version_mismatch_is_refused(self, tmp_path):
        spec = _specs(tmp_path, shards=1)[0]
        worker = WorkerProcess(spec, index=0)
        with pytest.raises(ConfigError, match="refusing"):
            worker.spawn(expected_version="0.0.0-other")
        # The mismatched process was killed and never registered.
        assert worker.pid is None
        assert not worker.alive

    def test_crashed_spawn_reports_exit_status(self, tmp_path):
        spec = WorkerSpec(shard_name="s", store_path=tmp_path / "missing-parent")
        broken = WorkerSpec(
            shard_name="s", store_path=spec.store_path, engine="no-such-engine"
        )
        worker = WorkerProcess(broken, index=0)
        with pytest.raises(Exception, match="exited|not ready"):
            worker.spawn(timeout=20)


class TestAffinityAndForwarding:
    def test_candidates_rotate_by_key_and_prefer_live(self, tmp_path):
        spec = _specs(tmp_path, shards=1)[0]
        group = WorkerGroup(spec, count=3)

        class _StillRunning:
            def poll(self):
                return None

        for worker in group.workers:
            worker.ready = True  # pretend-live; no real processes needed
            worker._process = _StillRunning()
        order_a = [w.index for w in group.candidates("key-a")]
        assert sorted(order_a) == [0, 1, 2]
        # The same key always starts at the same worker.
        assert [w.index for w in group.candidates("key-a")] == order_a
        # A down worker sorts last regardless of affinity.
        group.workers[order_a[0]].ready = False
        rotated = [w.index for w in group.candidates("key-a")]
        assert rotated[-1] == order_a[0]

    def test_deadline_header_carries_remaining_budget(self, tmp_path):
        shard = RemoteShard(WorkerGroup(_specs(tmp_path, shards=1)[0], count=1))
        context = RequestContext(Deadline(2.0))
        headers = dict(shard._forward_headers(context))
        assert 0 < int(headers["x-deadline-ms"]) <= 2000
        lapsed = RequestContext(Deadline(0.0))
        with pytest.raises(DeadlineExceededError):
            shard._attempt_budget(lapsed)
