"""Both topologies, one API: e2e suite + route-table parity.

The same client-visible behaviour must hold whether the tier runs
in-process (``thread``) or as shard worker processes behind the routing
proxy (``proc``).  A parameterized fixture runs the e2e suite against
each topology, and the parity class drives *every* route of the table
against both servers at once, comparing status, envelope code and — for
deterministic routes — the exact body bytes.
"""

from __future__ import annotations

import http.client
import io
import json

import pytest

from repro.imaging.pnm import write_ppm
from repro.imaging.synthetic import generate_planar_image
from repro.serve.app import ImageService, start_server_thread
from repro.serve.cli import shard_paths
from repro.serve.client import ServeClient
from repro.serve.proxy import ProxyService, start_proxy_thread
from repro.serve.routes import ROUTES
from repro.serve.worker import WorkerSpec, WorkerSupervisor
from repro.store.store import ImageStore

SHARDS = 2


def _boot(topology, root):
    """One running server of the given topology over a fresh 2-shard root."""
    if topology == "thread":
        stores = [
            ImageStore.open(path) for path in shard_paths(root, SHARDS, "fs")
        ]
        service = ImageService(stores)
        return start_server_thread(service), None
    specs = [
        WorkerSpec(shard_name="shard-%02d" % index, store_path=path)
        for index, path in enumerate(shard_paths(root, SHARDS, "fs"))
    ]
    supervisor = WorkerSupervisor(specs, workers_per_shard=1).start()
    service = ProxyService(supervisor)
    return start_proxy_thread(service), supervisor


@pytest.fixture(scope="module", params=["thread", "proc"])
def server(request, tmp_path_factory):
    root = tmp_path_factory.mktemp("topo-%s" % request.param)
    handle, _supervisor = _boot(request.param, root)
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    with ServeClient(*server.address) as active:
        yield active


def _ppm_bytes(image):
    buffer = io.BytesIO()
    write_ppm(image, buffer)
    return buffer.getvalue()


def _raw(address, method, target, body=b"", headers=None):
    """One raw HTTP exchange: (status, headers-dict, body bytes)."""
    connection = http.client.HTTPConnection(*address, timeout=30)
    try:
        connection.request(method, target, body=body, headers=headers or {})
        response = connection.getresponse()
        payload = response.read()
        return response.status, dict(response.getheaders()), payload
    finally:
        connection.close()


class TestEndpointsBothTopologies:
    """The e2e surface, identical under thread and proc topologies."""

    def test_put_get_roundtrip(self, client):
        image = generate_planar_image("lena", size=24, seed=11, planes=3)
        outcome = client.put_image(_ppm_bytes(image), stripes=4)
        assert outcome["encoded"] is True
        assert client.get_image(outcome["key"]) == image

    def test_plane_region_and_batch(self, client):
        image = generate_planar_image("peppers", size=24, seed=3, planes=3)
        key = client.put_image(_ppm_bytes(image), stripes=4)["key"]
        plane = client.get_plane(key, 1)
        assert plane.height == image.height
        region = client.get_region(key, 1, 3)
        assert region.height < image.height
        batch = client.get_regions(key, [(0, 1), (1, 3)])
        assert len(batch) == 2
        assert batch[1] == region

    def test_region_stream_matches_buffered(self, client, server):
        image = generate_planar_image("mandrill", size=24, seed=9, planes=3)
        key = client.put_image(_ppm_bytes(image), stripes=4)["key"]
        target = "/images/%s/region/0-4" % key
        status, _, buffered = _raw(server.address, "GET", target)
        assert status == 200
        status, headers, streamed = _raw(server.address, "GET", target + "?stream=1")
        assert status == 200
        assert headers.get("Transfer-Encoding") == "chunked"
        assert streamed == buffered

    def test_catalog_lists_the_keys(self, client):
        image = generate_planar_image("lena", size=16, seed=21, planes=3)
        key = client.put_image(_ppm_bytes(image))["key"]
        listing = client.catalog()
        assert any(row["key"] == key for row in listing["entries"])

    def test_delete_tombstones_everywhere(self, client):
        image = generate_planar_image("lena", size=16, seed=22, planes=3)
        key = client.put_image(_ppm_bytes(image))["key"]
        outcome = client.delete_image(key)
        assert outcome["key"] == key
        assert outcome["replicas"]
        with pytest.raises(Exception) as caught:
            client.get_image(key)
        assert getattr(caught.value, "status", None) == 404

    def test_error_envelopes_carry_stable_codes(self, client, server):
        cases = [
            ("GET", "/images/%s" % ("0" * 64), b"", 404, "not_found"),
            ("GET", "/nope", b"", 404, "not_found"),
            ("POST", "/healthz", b"", 405, "method_allowed".replace("method_", "method_not_")),
            ("GET", "/images/k/plane/xyz", b"", 400, "bad_request"),
            ("GET", "/images/k/region/zz", b"", 400, "bad_request"),
            ("PUT", "/images", b"", 400, "bad_request"),
        ]
        for method, target, body, expected_status, expected_code in cases:
            status, headers, payload = _raw(server.address, method, target, body)
            assert status == expected_status, (method, target, payload)
            envelope = json.loads(payload)
            assert envelope["code"] == expected_code, (method, target, envelope)
            assert envelope["request_id"]
            assert "x-repro-version" in {name.lower() for name in headers}

    def test_version_endpoint_and_header(self, client, server):
        import repro

        assert client.version()["version"] == repro.__version__
        _, headers, _ = _raw(server.address, "GET", "/healthz")
        lowered = {name.lower(): value for name, value in headers.items()}
        assert lowered["x-repro-version"] == repro.__version__

    def test_tiny_deadline_answers_504_deadline(self, client, server):
        image = generate_planar_image("lena", size=32, seed=31, planes=3)
        key = client.put_image(_ppm_bytes(image), stripes=4)["key"]
        status, _, payload = _raw(
            server.address,
            "GET",
            "/images/%s" % key,
            headers={"x-deadline-ms": "1"},
        )
        assert status == 504
        assert json.loads(payload)["code"] == "deadline"

    def test_stats_exposes_flight_and_shards(self, client):
        stats = client.stats()
        assert "flight" in stats and "shards" in stats
        assert len(stats["shards"]) == SHARDS
        assert {section["name"] for section in stats["shards"]} == {
            "shard-00",
            "shard-01",
        }


# --------------------------------------------------------------------- #
# route-table parity: every route, both topologies, at once
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def paired(tmp_path_factory):
    """Both topologies over separate roots, seeded with identical data."""
    thread_handle, _ = _boot("thread", tmp_path_factory.mktemp("parity-thread"))
    proc_handle, supervisor = _boot("proc", tmp_path_factory.mktemp("parity-proc"))
    image = generate_planar_image("lena", size=24, seed=77, planes=3)
    body = _ppm_bytes(image)
    with ServeClient(*thread_handle.address) as seed:
        key = seed.put_image(body, stripes=4)["key"]
    with ServeClient(*proc_handle.address) as seed:
        assert seed.put_image(body, stripes=4)["key"] == key
    yield thread_handle, proc_handle, key, body
    thread_handle.stop()
    proc_handle.stop()


#: (endpoint, method, target, body, headers, compare) — ``target`` may hold
#: ``{key}``.  compare: "exact" = status + body bytes identical;
#: "envelope" = status + code + error text identical (request ids differ);
#: "shape" = status + document keys identical (timestamps/latencies differ).
PARITY_CASES = [
    ("healthz", "GET", "/healthz", b"", None, "exact"),
    ("version", "GET", "/version", b"", None, "exact"),
    ("stats", "GET", "/stats", b"", None, "shape"),
    ("catalog", "GET", "/catalog", b"", None, "shape"),
    ("put_image", "PUT", "/images", b"SEED", None, "exact"),
    ("get_image", "GET", "/images/{key}", b"", None, "exact"),
    ("get_plane", "GET", "/images/{key}/plane/0", b"", None, "exact"),
    ("get_region", "GET", "/images/{key}/region/0-2", b"", None, "exact"),
    ("get_region", "GET", "/images/{key}/region/0-2?stream=1", b"", None, "exact"),
    (
        "get_regions",
        "POST",
        "/images/{key}/regions",
        b'{"ranges": [[0, 1], [1, 2]]}',
        None,
        "exact",
    ),
    # error surface — identical status + code + message on both sides
    ("get_image", "GET", "/images/" + "0" * 64, b"", None, "envelope"),
    ("get_plane", "GET", "/images/{key}/plane/nine", b"", None, "envelope"),
    ("get_plane", "GET", "/images/{key}/plane/99", b"", None, "envelope"),
    ("get_region", "GET", "/images/{key}/region/banana", b"", None, "envelope"),
    ("get_regions", "POST", "/images/{key}/regions", b"not json", None, "envelope"),
    ("put_image", "PUT", "/images", b"", None, "envelope"),
    ("healthz", "POST", "/healthz", b"", None, "envelope"),
    ("*", "GET", "/definitely/not/a/route", b"", None, "envelope"),
    ("get_image", "GET", "/images/{key}", b"", {"x-deadline-ms": "soon"}, "envelope"),
    # mutation last: it tombstones the seeded key
    ("delete_image", "DELETE", "/images/{key}", b"", None, "shape"),
]


class TestRouteTableParity:
    def test_every_route_has_parity_coverage(self):
        covered = {case[0] for case in PARITY_CASES}
        assert {route.endpoint for route in ROUTES} <= covered

    def test_routes_answer_identically(self, paired):
        thread_handle, proc_handle, key, put_body = paired
        for endpoint, method, target, body, headers, compare in PARITY_CASES:
            target = target.replace("{key}", key)
            if body == b"SEED":
                body = put_body
            a = _raw(thread_handle.address, method, target, body, headers)
            b = _raw(proc_handle.address, method, target, body, headers)
            label = "%s %s" % (method, target)
            assert a[0] == b[0], (label, a[2], b[2])
            if compare == "exact":
                assert a[2] == b[2], label
                continue
            doc_a, doc_b = json.loads(a[2]), json.loads(b[2])
            if compare == "envelope":
                assert doc_a["code"] == doc_b["code"], label
                assert doc_a["error"] == doc_b["error"], label
            else:
                assert set(doc_a) <= set(doc_b), label
