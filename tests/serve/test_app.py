"""End-to-end tests: real sockets, real HTTP, the full serving pipeline."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.exceptions import ServeError
from repro.imaging.pnm import write_pgm, write_ppm
from repro.imaging.synthetic import generate_image, generate_planar_image
from repro.serve.app import ImageService, start_server_thread
from repro.serve.client import ServeClient
from repro.store.store import ImageStore


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One two-shard server reused by every test in the module."""
    root = tmp_path_factory.mktemp("serve-app")
    stores = [ImageStore.open(root / ("shard-%02d" % index)) for index in range(2)]
    service = ImageService(stores)
    handle = start_server_thread(service)
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    with ServeClient(*server.address) as active:
        yield active


def _ppm_bytes(image):
    buffer = io.BytesIO()
    write_ppm(image, buffer)
    return buffer.getvalue()


def _pgm_bytes(image):
    buffer = io.BytesIO()
    write_pgm(image, buffer)
    return buffer.getvalue()


class TestEndpoints:
    def test_put_then_full_get_round_trips(self, client):
        image = generate_planar_image("lena", size=24, seed=11, planes=3)
        outcome = client.put_image(_ppm_bytes(image), stripes=4)
        assert len(outcome["key"]) == 64
        assert outcome["encoded"] is True
        assert outcome["shard"] in ("shard-00", "shard-01")
        assert client.get_image(outcome["key"]) == image

    def test_put_is_idempotent_and_routes_consistently(self, client):
        image = generate_planar_image("peppers", size=24, seed=3, planes=3)
        first = client.put_image(_ppm_bytes(image), stripes=4)
        second = client.put_image(_ppm_bytes(image), stripes=4)
        assert first["key"] == second["key"]
        assert first["shard"] == second["shard"]

    def test_put_container_bytes_directly(self, client, server):
        from repro.core.cellgrid import encode_grid
        from repro.core.config import CodecConfig

        image = generate_image("lena", size=16, seed=5)
        stream, _ = encode_grid(
            image, CodecConfig.hardware(bit_depth=image.bit_depth), stripes=2
        )
        outcome = client.put_image(stream)
        assert outcome["encoded"] is False
        assert outcome["bytes"] == len(stream)
        assert client.get_image(outcome["key"]) == image

    def test_get_plane_matches_source(self, client):
        image = generate_planar_image("mandrill", size=24, seed=7, planes=3)
        key = client.put_image(_ppm_bytes(image), stripes=4)["key"]
        for plane_index in range(3):
            assert client.get_plane(key, plane_index) == image.plane(plane_index)

    def test_get_region_serves_exactly_the_rows(self, client):
        image = generate_planar_image("lena", size=32, seed=13, planes=3)
        key = client.put_image(_ppm_bytes(image), stripes=4)["key"]
        region = client.get_region(key, 1, 3)
        assert region.height == 16
        assert region.width == 32
        # Rows 8..24 of plane 0 must match the source exactly.
        source_rows = [image.plane(0).row(y) for y in range(8, 24)]
        served_rows = [region.plane(0).row(y) for y in range(16)]
        assert served_rows == source_rows

    def test_batched_regions_match_individual_gets(self, client):
        image = generate_planar_image("peppers", size=32, seed=17, planes=3)
        key = client.put_image(_ppm_bytes(image), stripes=4)["key"]
        ranges = [(0, 1), (1, 3), (0, 1)]
        batch = client.get_regions(key, ranges)
        assert len(batch) == 3
        assert batch[0] == batch[2]
        for (start, stop), got in zip(ranges, batch):
            assert got == client.get_region(key, start, stop)

    def test_healthz(self, client):
        assert client.healthz() == {"status": "ok", "shards": 2}

    def test_stats_exposes_histograms_flight_and_cache_bytes(self, client):
        image = generate_planar_image("lena", size=24, seed=19, planes=3)
        key = client.put_image(_ppm_bytes(image), stripes=4)["key"]
        client.get_region(key, 0, 1)
        client.get_region(key, 0, 1)
        stats = client.stats()
        assert stats["flight"]["leaders"] >= 1
        endpoints = stats["server"]["endpoints"]
        assert "get_region" in endpoints and "put_image" in endpoints
        region_stats = endpoints["get_region"]
        assert region_stats["requests"] >= 2
        assert region_stats["p50_ms"] > 0.0
        assert region_stats["p99_ms"] >= region_stats["p50_ms"]
        names = [shard["name"] for shard in stats["shards"]]
        assert names == ["shard-00", "shard-01"]
        # The satellite bugfix: byte occupancy travels with entry counts.
        total_entries = sum(s["cache"]["entries"] for s in stats["shards"])
        total_bytes = sum(s["cache"]["current_bytes"] for s in stats["shards"])
        assert total_entries > 0
        assert total_bytes > 0


class TestErrorPaths:
    def test_unknown_key_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.get_image("0" * 64)
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, server):
        client = ServeClient(*server.address)
        status, _, _ = client._request("GET", "/nothing/here")
        client.close()
        assert status == 404

    def test_wrong_method_is_405(self, server):
        client = ServeClient(*server.address)
        status, _, _ = client._request("DELETE", "/healthz")
        client.close()
        assert status == 405

    def test_out_of_range_region_is_400(self, client):
        image = generate_planar_image("lena", size=24, seed=23, planes=3)
        key = client.put_image(_ppm_bytes(image), stripes=4)["key"]
        with pytest.raises(ServeError) as excinfo:
            client.get_region(key, 7, 9)
        assert excinfo.value.status == 400

    def test_malformed_region_path_is_400(self, server, client):
        image = generate_planar_image("lena", size=24, seed=23, planes=3)
        key = client.put_image(_ppm_bytes(image), stripes=4)["key"]
        raw = ServeClient(*server.address)
        status, _, _ = raw._request("GET", "/images/%s/region/one-two" % key)
        raw.close()
        assert status == 400

    def test_garbage_put_body_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.put_image(b"definitely not an image or container")
        assert excinfo.value.status == 400

    def test_empty_regions_batch_is_400(self, server, client):
        image = generate_planar_image("lena", size=24, seed=23, planes=3)
        key = client.put_image(_ppm_bytes(image), stripes=4)["key"]
        raw = ServeClient(*server.address)
        status, _, _ = raw._request(
            "POST",
            "/images/%s/regions" % key,
            body=json.dumps({"ranges": []}).encode(),
            content_type="application/json",
        )
        raw.close()
        assert status == 400

    def test_non_integer_region_entries_are_400_not_a_dropped_connection(
        self, server, client
    ):
        """Regression: int(None) raised TypeError past the error mapping,
        killing the connection instead of answering 400."""
        image = generate_planar_image("lena", size=24, seed=23, planes=3)
        key = client.put_image(_ppm_bytes(image), stripes=4)["key"]
        raw = ServeClient(*server.address)
        for bad in ([[None, 1]], [[{}, 1]], [[[0], 1]], [["x", 1]]):
            status, _, _ = raw._request(
                "POST",
                "/images/%s/regions" % key,
                body=json.dumps({"ranges": bad}).encode(),
                content_type="application/json",
            )
            assert status == 400, "body %r got %d" % (bad, status)
        # The same connection keeps serving afterwards.
        status, _, _ = raw._request("GET", "/healthz")
        raw.close()
        assert status == 200

    def test_errors_do_not_poison_keep_alive(self, client):
        with pytest.raises(ServeError):
            client.get_image("f" * 64)
        # Same connection keeps serving.
        assert client.healthz()["status"] == "ok"

    def test_handler_bugs_answer_500_instead_of_dropping_the_connection(
        self, server
    ):
        """The dispatcher backstop: an unexpected exception in a handler
        (a TypeError, say) must produce an honest 500 and leave the
        connection serving, never a dropped socket."""
        original = server.service.healthz
        server.service.healthz = lambda: (_ for _ in ()).throw(TypeError("boom"))
        try:
            raw = ServeClient(*server.address)
            status, payload, _ = raw._request("GET", "/healthz")
            assert status == 500
            assert b"TypeError" in payload
            status, _, _ = raw._request("GET", "/stats")  # same connection
            raw.close()
            assert status == 200
        finally:
            server.service.healthz = original


class TestCoalescing:
    def test_stampede_on_a_cold_region_decodes_at_most_twice(self, server):
        """The acceptance shape: a herd on one region, <= 2 backend decodes."""
        admin = ServeClient(*server.address)
        # One big cell (96x96, 2 stripes -> 48 rows) keeps the leader's
        # decode in flight for tens of milliseconds — long enough that the
        # whole herd reliably piles onto it.
        gray = generate_image("mandrill", size=96, seed=29)
        key = admin.put_image(_pgm_bytes(gray), stripes=2)["key"]

        def shard_misses():
            return sum(s["cache"]["misses"] for s in admin.stats()["shards"])

        misses_before = shard_misses()
        coalesced_before = admin.stats()["flight"]["coalesced"]

        herd_size = 24
        barrier = threading.Barrier(herd_size)
        results = []
        failures = []
        lock = threading.Lock()

        def worker():
            worker_client = ServeClient(*server.address)
            try:
                barrier.wait()
                region = worker_client.get_region(key, 0, 1)
                with lock:
                    results.append(region)
            except BaseException as error:
                with lock:
                    failures.append(error)
            finally:
                worker_client.close()

        threads = [threading.Thread(target=worker) for _ in range(herd_size)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures, failures
        assert len(results) == herd_size
        assert all(region == results[0] for region in results)
        # One stripe of a grey stream is one cell; the herd may at worst
        # straddle one flight boundary, so two decodes are the ceiling.
        assert shard_misses() - misses_before <= 2
        assert admin.stats()["flight"]["coalesced"] > coalesced_before
        admin.close()
