"""Shared fixtures for the test-suite.

The codecs are pure Python, so the fixtures keep images small (16-64 pixels
per side); the integration tests that need statistically richer content use
the 64-pixel corpus images, everything else uses tiny synthetic patterns.

Hypothesis settings are profile-driven: the default ``dev`` profile keeps
the property suites fast for local runs, while CI selects the heavier
``ci`` profile (more examples, shared example database) through
``HYPOTHESIS_PROFILE=ci``.  Deadlines are disabled in both profiles — the
pure-Python codecs make per-example wall-clock far too noisy to gate on.
"""

from __future__ import annotations

import os
import sys

import pytest
from hypothesis import settings

from repro.imaging.image import GrayImage
from repro.imaging.synthetic import (
    generate_gradient_image,
    generate_image,
    generate_noise_image,
    generate_text_like_image,
)

# The shared strategy module (tests/strategies.py) is imported as plain
# ``strategies`` by the core/fast/parallel property suites; make sure the
# tests directory is importable from every rootdir pytest may run under.
sys.path.insert(0, os.path.dirname(__file__))

settings.register_profile("dev", max_examples=25, deadline=None)
settings.register_profile("ci", max_examples=120, deadline=None, print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def lena_small() -> GrayImage:
    """A 64x64 'lena'-class corpus image (smooth with a few edges)."""
    return generate_image("lena", size=64)


@pytest.fixture(scope="session")
def mandrill_small() -> GrayImage:
    """A 64x64 'mandrill'-class corpus image (heavy texture)."""
    return generate_image("mandrill", size=64)


@pytest.fixture(scope="session")
def zelda_small() -> GrayImage:
    """A 64x64 'zelda'-class corpus image (the smoothest of the corpus)."""
    return generate_image("zelda", size=64)


@pytest.fixture(scope="session")
def gradient_image() -> GrayImage:
    """A noiseless diagonal ramp (trivially predictable)."""
    return generate_gradient_image(32, direction="diagonal")


@pytest.fixture(scope="session")
def noise_image() -> GrayImage:
    """Uniform white noise (incompressible)."""
    return generate_noise_image(32, seed=7)


@pytest.fixture(scope="session")
def text_image() -> GrayImage:
    """A bi-level text-like image (exercises run modes and escapes)."""
    return generate_text_like_image(48, seed=3)


@pytest.fixture(scope="session")
def constant_image() -> GrayImage:
    """A constant mid-grey image with awkward (non-square) geometry."""
    return GrayImage.constant(37, 19, 200)


@pytest.fixture(scope="session")
def tiny_image() -> GrayImage:
    """A deliberately tiny 5x4 image with a mix of values."""
    rows = [
        [0, 255, 128, 17, 200],
        [3, 250, 131, 20, 199],
        [5, 240, 140, 25, 190],
        [9, 235, 142, 30, 180],
    ]
    return GrayImage.from_rows(rows)


@pytest.fixture(scope="session")
def roundtrip_images(
    lena_small, gradient_image, noise_image, text_image, constant_image, tiny_image
):
    """The standard set every codec must reconstruct exactly."""
    return [lena_small, gradient_image, noise_image, text_image, constant_image, tiny_image]
