"""Registry gating of the build-optional native engine.

The engine must be dispatchable exactly when it would work: listed and
resolvable when numba is importable (or the pure-Python opt-in is set),
and failing with an actionable :class:`ConfigError` — not an
``ImportError`` from deep inside a backend — otherwise.
"""

from __future__ import annotations

import pytest

from repro.core import interface
from repro.core.config import CodecConfig
from repro.core.encoder import encode_payload
from repro.exceptions import ConfigError
from repro.imaging.synthetic import generate_noise_image


class TestAvailableDispatch:
    def test_listed_when_available(self):
        assert "native" in interface.engine_names()
        assert "native" in interface.ENGINES

    def test_get_engine_resolves(self):
        backend = interface.get_engine("native")
        assert backend.name == "native"
        # Resolution is idempotent and cached in the registry.
        assert interface.get_engine("native") is backend

    def test_registered_backend_survives_env_removal(self, monkeypatch):
        # A runtime-registered engine keeps dispatching even if the
        # availability probe would now say no — registration is the
        # stronger signal (third-party backends rely on this).
        interface.get_engine("native")
        monkeypatch.delenv("REPRO_NATIVE_PURE_PYTHON")
        monkeypatch.setattr(interface, "_native_engine_available", lambda: False)
        assert "native" in interface.engine_names()
        assert interface.get_engine("native").name == "native"


class TestUnavailableDispatch:
    @pytest.fixture(autouse=True)
    def native_unavailable(self, monkeypatch):
        interface.unregister_engine("native")
        monkeypatch.setattr(interface, "_native_engine_available", lambda: False)

    def test_get_engine_raises_config_error(self):
        with pytest.raises(ConfigError, match="numba"):
            interface.get_engine("native")

    def test_error_points_at_the_fast_alternative(self):
        with pytest.raises(ConfigError, match="fast"):
            interface.get_engine("native")

    def test_not_listed(self):
        assert "native" not in interface.engine_names()
        assert "native" not in interface.ENGINES

    def test_encode_with_native_fails_loudly(self, lena_small):
        with pytest.raises(ConfigError, match="numba"):
            encode_payload(lena_small, CodecConfig.hardware(), engine="native")


class TestKernelBudgetGuard:
    def test_config_past_int64_budget_raises(self):
        # Valid for the arbitrary-precision reference engine, but
        # coder_precision + count_bits + tree depth no longer fits the
        # kernels' int64 arithmetic — the native engine must refuse
        # rather than silently overflow.
        config = CodecConfig.hardware(bit_depth=16, count_bits=14, coder_precision=34)
        image = generate_noise_image(size=4, seed=1, bit_depth=16)
        with pytest.raises(ConfigError, match="int64"):
            encode_payload(image, config, engine="native")
        reference, _ = encode_payload(image, config, engine="reference")
        assert reference  # the same config works on the reference engine
