"""Fixtures for the native-engine suite.

The native engine is build-optional: its kernels JIT-compile when numba
is importable and run interpreted otherwise.  Every test in this package
opts into the pure-Python fallback via ``REPRO_NATIVE_PURE_PYTHON=1`` so
the byte-identity contract is exercised on installs without numba (the
without-numba CI leg); with numba present the same tests run the compiled
kernels.  The registration is undone afterwards so the rest of the test
run sees the stock engine list.
"""

from __future__ import annotations

import pytest

from repro.core.interface import unregister_engine


@pytest.fixture(autouse=True)
def native_engine_enabled(monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE_PURE_PYTHON", "1")
    yield
    unregister_engine("native")
