"""Byte-identity and round-trip parity of the native (JIT) coding engine.

Same contract the fast engine lives under: the native engine may only
exist because its streams are byte-identical to the reference engine's.
The sweeps mirror ``tests/fast/test_engine_parity.py`` — corpus images,
bit depths 1-12, degenerate geometries, the escape/rescale stress
configuration — plus every cross-engine encode/decode pairing across all
three built-ins.
"""

from __future__ import annotations

import pytest

from repro.core.codec import ProposedCodec
from repro.core.config import CodecConfig
from repro.core.decoder import decode_payload
from repro.core.encoder import encode_image_with_statistics, encode_payload
from repro.exceptions import BitstreamError
from repro.imaging.image import GrayImage
from repro.imaging.synthetic import (
    CORPUS_IMAGE_NAMES,
    generate_image,
    generate_noise_image,
)


class TestByteIdentity:
    @pytest.mark.parametrize("name", CORPUS_IMAGE_NAMES)
    def test_corpus_streams_identical(self, name):
        image = generate_image(name, size=40)
        config = CodecConfig.hardware()
        reference, _ = encode_payload(image, config, engine="reference")
        native, _ = encode_payload(image, config, engine="native")
        assert native == reference

    @pytest.mark.parametrize("preset", ["hardware", "reference"])
    def test_both_presets_identical(self, preset, lena_small):
        config = getattr(CodecConfig, preset)()
        reference, _ = encode_payload(lena_small, config, engine="reference")
        native, _ = encode_payload(lena_small, config, engine="native")
        assert native == reference

    @pytest.mark.parametrize("bit_depth", list(range(1, 13)))
    def test_bit_depth_sweep(self, bit_depth):
        image = generate_noise_image(size=16, seed=11, bit_depth=bit_depth)
        config = CodecConfig.hardware(bit_depth=bit_depth)
        reference, _ = encode_payload(image, config, engine="reference")
        native, _ = encode_payload(image, config, engine="native")
        assert native == reference
        assert decode_payload(native, 16, 16, config, engine="native") == image.pixels()

    @pytest.mark.parametrize(
        "width,height",
        [(1, 1), (1, 9), (9, 1), (2, 2), (1, 2), (2, 1), (3, 5), (2, 17)],
    )
    def test_degenerate_geometries(self, width, height):
        pixels = [(i * 37 + 11) % 256 for i in range(width * height)]
        image = GrayImage(width, height, pixels)
        config = CodecConfig.hardware()
        reference, _ = encode_payload(image, config, engine="reference")
        native, _ = encode_payload(image, config, engine="native")
        assert native == reference
        assert decode_payload(native, width, height, config, engine="native") == pixels

    def test_ablation_configs_identical(self, text_image):
        for config in (
            CodecConfig.hardware(use_overflow_guard_aging=False),
            CodecConfig.hardware(use_error_feedback=False),
            CodecConfig.hardware(use_lut_division=False),
            CodecConfig.hardware(count_bits=10),
            CodecConfig.hardware(estimator_increment=1),
        ):
            reference, _ = encode_payload(text_image, config, engine="reference")
            native, _ = encode_payload(text_image, config, engine="native")
            assert native == reference

    def test_escape_and_rescale_paths(self):
        # Narrow frequency counters force early tree rescales, which zero
        # once-seen leaves and drive escape coding — the rarest code path
        # in the kernels and the hardest to keep bit-exact.
        image = generate_noise_image(size=32, seed=23)
        config = CodecConfig.hardware(count_bits=6)
        reference, stats_reference = encode_payload(image, config, engine="reference")
        native, stats_native = encode_payload(image, config, engine="native")
        assert stats_reference.escapes > 0
        assert stats_reference.tree_rescales > 0
        assert native == reference
        assert stats_native.escapes == stats_reference.escapes
        assert stats_native.tree_rescales == stats_reference.tree_rescales
        for engine in ("reference", "fast", "native"):
            assert decode_payload(native, 32, 32, config, engine=engine) == image.pixels()

    def test_statistics_match(self, mandrill_small):
        config = CodecConfig.hardware()
        _, reference = encode_image_with_statistics(
            mandrill_small, config, engine="reference"
        )
        _, native = encode_image_with_statistics(mandrill_small, config, engine="native")
        assert native.payload_bytes == reference.payload_bytes
        assert native.total_bytes == reference.total_bytes
        assert native.bits_per_pixel == reference.bits_per_pixel
        assert native.escapes == reference.escapes
        assert native.tree_rescales == reference.tree_rescales


class TestCrossEngineRoundtrip:
    @pytest.mark.parametrize("encode_engine", ["reference", "fast", "native"])
    @pytest.mark.parametrize("decode_engine", ["reference", "fast", "native"])
    def test_all_engine_pairs(self, encode_engine, decode_engine):
        image = generate_noise_image(size=20, seed=5)
        config = CodecConfig.hardware()
        codec_in = ProposedCodec(config, engine=encode_engine)
        codec_out = ProposedCodec(config, engine=decode_engine)
        assert codec_out.decode(codec_in.encode(image)) == image


class TestDecodeErrors:
    def test_truncated_payload_raises_bitstream_error(self, lena_small):
        config = CodecConfig.hardware()
        payload, _ = encode_payload(lena_small, config, engine="native")
        with pytest.raises(BitstreamError):
            decode_payload(
                payload[: len(payload) // 3],
                lena_small.width,
                lena_small.height,
                config,
                engine="native",
            )

    def test_garbage_payload_raises_bitstream_error(self):
        config = CodecConfig.hardware()
        with pytest.raises(BitstreamError):
            decode_payload(b"\xff" * 64, 64, 64, config, engine="native")
