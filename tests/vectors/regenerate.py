"""Golden-vector builder and regeneration script.

The checked-in ``.rplc`` files under this directory are canonical container
bitstreams, one per (container version x interesting configuration).  The
golden test (``tests/integration/test_golden_vectors.py``) re-encodes every
vector from its deterministic source image and compares byte-for-byte
against the committed file, so any drift in the stream format — container
layout, entropy coding, partition, predictor — shows up as a loud diff
instead of a silent re-encode; the committed streams are additionally
decoded and checked against the manifest's pixel digests, proving old
streams stay readable.

Regenerate after an *intentional* format change with::

    PYTHONPATH=src python tests/vectors/regenerate.py

and commit the updated ``.rplc`` files and ``manifest.json`` together with
the change that caused them.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

VECTOR_DIR = Path(__file__).resolve().parent


def _deep_planar_image():
    """A deterministic 12-bit two-plane image (no RNG: pure arithmetic)."""
    from repro.imaging.image import GrayImage
    from repro.imaging.planar import PlanarImage

    ys, xs = np.mgrid[0:14, 0:11]
    base = (xs * 257 + ys * 131 + (xs * ys) % 97) % 4096
    second = (base + 64 + ((xs + ys) % 5)) % 4096
    return PlanarImage(
        [
            GrayImage.from_array(base, bit_depth=12, name="band0"),
            GrayImage.from_array(second, bit_depth=12, name="band1"),
        ],
        name="deep",
    )


def build_vectors():
    """Return ``{filename: (stream_bytes, source_image, description)}``."""
    from repro.core.components import encode_planar
    from repro.core.config import CodecConfig
    from repro.core.encoder import encode_image
    from repro.imaging.synthetic import generate_image, generate_planar_image
    from repro.parallel.codec import ParallelCodec
    from repro.parallel.executor import SerialExecutor

    gray = generate_image("boat", size=16, seed=2007)
    rgb = generate_planar_image("lena", size=16, seed=2007)
    bands = generate_planar_image("goldhill", size=16, seed=2007, planes=4)
    deep = _deep_planar_image()

    return {
        "v1-gray.rplc": (
            encode_image(gray),
            gray,
            "version-1 single payload, 16x16 'boat', hardware preset",
        ),
        "v1-reference-preset.rplc": (
            encode_image(gray, CodecConfig.reference()),
            gray,
            "version-1 single payload, exact-arithmetic preset",
        ),
        "v2-striped.rplc": (
            ParallelCodec(cores=3, executor=SerialExecutor()).encode(gray),
            gray,
            "version-2, 3 balanced stripes, 16x16 'boat'",
        ),
        "v3-rgb-delta.rplc": (
            encode_planar(rgb, stripes=2, plane_delta=True),
            rgb,
            "version-3, RGB with inter-plane delta, 2 stripes",
        ),
        "v3-multiband.rplc": (
            encode_planar(bands, stripes=3, plane_delta=False),
            bands,
            "version-3, 4 independent bands, 3 stripes",
        ),
        "v3-deep-12bit.rplc": (
            encode_planar(
                deep,
                CodecConfig.hardware(bit_depth=12),
                stripes=2,
                plane_delta=True,
            ),
            deep,
            "version-3, two 12-bit planes with delta, 11x14 geometry",
        ),
    }


def image_digest(image) -> str:
    """SHA-256 over an image's geometry and raw samples (name-independent)."""
    from repro.imaging.planar import PlanarImage

    hasher = hashlib.sha256()
    planes = image.planes() if isinstance(image, PlanarImage) else [image]
    hasher.update(
        ("%dx%dx%d/%d" % (image.width, image.height, len(planes), image.bit_depth)).encode()
    )
    for plane in planes:
        hasher.update(plane.to_bytes())
    return hasher.hexdigest()


def main() -> None:
    manifest = {}
    for filename, (stream, image, description) in sorted(build_vectors().items()):
        (VECTOR_DIR / filename).write_bytes(stream)
        manifest[filename] = {
            "description": description,
            "stream_sha256": hashlib.sha256(stream).hexdigest(),
            "stream_bytes": len(stream),
            "image_sha256": image_digest(image),
        }
    (VECTOR_DIR / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print("wrote %d vectors to %s" % (len(manifest), VECTOR_DIR))


if __name__ == "__main__":
    main()
