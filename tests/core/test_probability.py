"""Tests for the probability estimator (8 dynamic trees + static escape tree)."""

import random

import pytest

from repro.core.config import CodecConfig
from repro.core.probability import ProbabilityEstimator
from repro.entropy.binary_arithmetic import BinaryArithmeticDecoder, BinaryArithmeticEncoder
from repro.exceptions import ModelStateError
from repro.utils.bitio import BitReader, BitWriter


def _roundtrip(config, stream):
    """Encode (context, symbol) pairs then decode them back."""
    writer = BitWriter()
    encoder = BinaryArithmeticEncoder(writer)
    estimator = ProbabilityEstimator(config)
    for context, symbol in stream:
        estimator.encode_symbol(encoder, context, symbol)
    encoder.finish()
    encode_stats = estimator.statistics

    decoder = BinaryArithmeticDecoder(BitReader(writer.getvalue()))
    estimator = ProbabilityEstimator(config)
    decoded = [estimator.decode_symbol(decoder, context) for context, _ in stream]
    return decoded, encode_stats, estimator.statistics


class TestRoundtrip:
    def test_single_context(self):
        config = CodecConfig.hardware()
        stream = [(0, s) for s in [1, 2, 3, 255, 0, 128] * 20]
        decoded, _, _ = _roundtrip(config, stream)
        assert decoded == [s for _, s in stream]

    def test_multiple_contexts(self):
        config = CodecConfig.hardware()
        rng = random.Random(2)
        stream = [(rng.randrange(8), rng.randrange(256)) for _ in range(400)]
        decoded, _, _ = _roundtrip(config, stream)
        assert decoded == [s for _, s in stream]

    def test_escape_path_roundtrip(self):
        # Narrow counters force rescales, which zero unseen symbols and make
        # later occurrences escape; the decoder must follow.
        config = CodecConfig.hardware(count_bits=6, estimator_increment=4)
        rng = random.Random(3)
        stream = [(0, 7)] * 200 + [(0, rng.randrange(256)) for _ in range(100)]
        decoded, encode_stats, decode_stats = _roundtrip(config, stream)
        assert decoded == [s for _, s in stream]
        assert encode_stats.escapes > 0
        assert encode_stats.escapes == decode_stats.escapes
        assert encode_stats.tree_rescales == decode_stats.tree_rescales

    def test_statistics_track_context_usage(self):
        config = CodecConfig.hardware()
        stream = [(3, 10)] * 5 + [(6, 20)] * 7
        _, encode_stats, _ = _roundtrip(config, stream)
        assert encode_stats.symbols_per_context[3] == 5
        assert encode_stats.symbols_per_context[6] == 7
        assert encode_stats.symbols_coded == 12

    def test_escape_rate_helper(self):
        config = CodecConfig.hardware()
        _, stats, _ = _roundtrip(config, [(0, 1)] * 10)
        assert stats.escape_rate() == 0.0


class TestAdaptation:
    def test_repeated_symbol_gets_shorter_codes(self):
        config = CodecConfig.hardware()
        estimator = ProbabilityEstimator(config)
        writer = BitWriter()
        encoder = BinaryArithmeticEncoder(writer)
        for _ in range(100):
            estimator.encode_symbol(encoder, 0, 42)
        first_phase_bits = writer.bit_count
        for _ in range(100):
            estimator.encode_symbol(encoder, 0, 42)
        second_phase_bits = writer.bit_count - first_phase_bits
        assert second_phase_bits < first_phase_bits

    def test_contexts_are_independent(self):
        config = CodecConfig.hardware()
        estimator = ProbabilityEstimator(config)
        encoder = BinaryArithmeticEncoder(BitWriter())
        for _ in range(50):
            estimator.encode_symbol(encoder, 0, 10)
        assert estimator.tree(0).count(10) > estimator.tree(1).count(10)

    def test_memory_bits_positive(self):
        estimator = ProbabilityEstimator(CodecConfig.hardware())
        assert estimator.memory_bits() > 0

    def test_context_count(self):
        assert ProbabilityEstimator(CodecConfig.hardware()).context_count == 8


class TestValidation:
    def test_context_out_of_range(self):
        estimator = ProbabilityEstimator(CodecConfig.hardware())
        encoder = BinaryArithmeticEncoder(BitWriter())
        with pytest.raises(ModelStateError):
            estimator.encode_symbol(encoder, 8, 0)
        with pytest.raises(ModelStateError):
            estimator.tree(-1)

    def test_symbol_out_of_range(self):
        estimator = ProbabilityEstimator(CodecConfig.hardware())
        encoder = BinaryArithmeticEncoder(BitWriter())
        with pytest.raises(ModelStateError):
            estimator.encode_symbol(encoder, 0, 256)
