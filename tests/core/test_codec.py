"""End-to-end tests for the proposed codec."""

import pytest

from repro.core.codec import ProposedCodec
from repro.core.config import CodecConfig
from repro.core.decoder import decode_image
from repro.core.encoder import encode_image, encode_image_with_statistics
from repro.exceptions import BitstreamError, CodecMismatchError, ConfigError, HeaderError
from repro.imaging.image import GrayImage
from repro.imaging.metrics import first_order_entropy


class TestRoundtrip:
    def test_all_standard_images(self, roundtrip_images):
        codec = ProposedCodec()
        for image in roundtrip_images:
            stream = codec.encode(image)
            assert codec.decode(stream) == image, image.name

    def test_reference_configuration(self, lena_small):
        codec = ProposedCodec.reference()
        assert codec.decode(codec.encode(lena_small)) == lena_small

    def test_functional_entry_points(self, lena_small):
        stream = encode_image(lena_small)
        assert decode_image(stream) == lena_small

    def test_decoder_rebuilds_config_from_header(self, tiny_image):
        for count_bits in (10, 12, 16):
            stream = encode_image(tiny_image, CodecConfig.hardware(count_bits=count_bits))
            assert decode_image(stream) == tiny_image

    def test_single_pixel_image(self):
        image = GrayImage(1, 1, [137])
        codec = ProposedCodec()
        assert codec.decode(codec.encode(image)) == image

    def test_single_row_and_single_column(self):
        codec = ProposedCodec()
        row = GrayImage(17, 1, list(range(0, 255, 15)))
        column = GrayImage(1, 17, list(range(0, 255, 15)))
        assert codec.decode(codec.encode(row)) == row
        assert codec.decode(codec.encode(column)) == column

    def test_extreme_values_image(self):
        pixels = [0, 255] * 32
        image = GrayImage(8, 8, pixels)
        codec = ProposedCodec()
        assert codec.decode(codec.encode(image)) == image

    def test_non_square_images(self):
        codec = ProposedCodec()
        image = GrayImage(13, 29, [(x * 7 + y * 3) % 256 for y in range(29) for x in range(13)])
        assert codec.decode(codec.encode(image)) == image


class TestCompressionQuality:
    def test_compresses_natural_content(self, lena_small):
        codec = ProposedCodec()
        bpp = codec.bits_per_pixel(lena_small)
        assert bpp < first_order_entropy(lena_small)
        assert bpp < 7.0

    def test_smooth_image_compresses_better_than_texture(self, zelda_small, mandrill_small):
        codec = ProposedCodec()
        assert codec.bits_per_pixel(zelda_small) < codec.bits_per_pixel(mandrill_small)

    def test_gradient_compresses_strongly(self, gradient_image):
        assert ProposedCodec().bits_per_pixel(gradient_image) < 2.5

    def test_noise_does_not_expand_catastrophically(self, noise_image):
        # Incompressible content may expand slightly but must stay below
        # 9.5 bpp (8 bits + modest coding overhead).
        assert ProposedCodec().bits_per_pixel(noise_image) < 9.5

    def test_statistics_populated(self, lena_small):
        stream, stats = encode_image_with_statistics(lena_small)
        assert stats.total_bytes == len(stream)
        assert stats.payload_bytes < stats.total_bytes
        assert stats.bits_per_pixel > 0
        assert stats.binary_decisions >= lena_small.pixel_count * 8
        assert sum(stats.context_usage.values()) == lena_small.pixel_count

    def test_hardware_and_reference_paths_close(self, lena_small):
        hardware_bpp = ProposedCodec.hardware().bits_per_pixel(lena_small)
        reference_bpp = ProposedCodec.reference().bits_per_pixel(lena_small)
        # The paper's claim: the hardware approximations do not change the
        # compression ratio materially.
        assert abs(hardware_bpp - reference_bpp) < 0.1


class TestErrors:
    def test_bit_depth_mismatch_rejected(self):
        image = GrayImage(4, 4, list(range(16)), bit_depth=4)
        with pytest.raises(ConfigError):
            encode_image(image, CodecConfig.hardware())

    def test_decode_other_codec_stream_rejected(self, tiny_image):
        from repro.baselines.jpegls import JpegLsCodec

        stream = JpegLsCodec().encode(tiny_image)
        with pytest.raises(CodecMismatchError):
            decode_image(stream)

    def test_decode_with_wrong_count_bits_rejected(self, tiny_image):
        stream = encode_image(tiny_image, CodecConfig.hardware(count_bits=10))
        with pytest.raises(CodecMismatchError):
            decode_image(stream, CodecConfig.hardware(count_bits=14))

    def test_decode_with_wrong_division_flag_rejected(self, tiny_image):
        stream = encode_image(tiny_image, CodecConfig.hardware())
        with pytest.raises(CodecMismatchError):
            decode_image(stream, CodecConfig.reference(count_bits=14))

    def test_truncated_stream_detected(self, tiny_image):
        stream = encode_image(tiny_image)
        with pytest.raises((BitstreamError, HeaderError)):
            decode_image(stream[: len(stream) // 2])

    def test_garbage_input_detected(self):
        with pytest.raises((HeaderError, BitstreamError)):
            decode_image(b"this is not a compressed image")

    def test_repr_contains_name(self):
        assert "proposed" in repr(ProposedCodec())
