"""Property-based conformance of the engine registry.

Byte identity between the built-in engines is already enforced by the
core/fast/parallel property suites; this suite asserts the *registry
dispatch* itself preserves it: any engine reached through
``get_engine(name)`` — including one registered at runtime — produces the
same container bytes through every front-end as the reference engine, over
the shared strategy distribution (geometries, depths 1-12, content
families, 1-4 planes).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.cellgrid import encode_grid
from repro.core.config import CodecConfig
from repro.core.interface import engine_names, get_engine, require_engine
from strategies import gray_images, planar_images


@settings(deadline=None)
@given(image=gray_images(max_side=12))
def test_registry_dispatched_engines_are_byte_identical_on_gray(image):
    config = CodecConfig.hardware(bit_depth=image.bit_depth)
    streams = {
        name: encode_grid(image, config, engine=require_engine(name))[0]
        for name in engine_names()
    }
    reference = streams["reference"]
    assert all(stream == reference for stream in streams.values())


@settings(deadline=None, max_examples=25)
@given(image=planar_images(max_side=8, max_planes=3))
@pytest.mark.parametrize("plane_delta", [False, True])
def test_registry_dispatched_engines_are_byte_identical_on_planar(
    image, plane_delta
):
    config = CodecConfig.hardware(bit_depth=image.bit_depth)
    stripes = min(2, image.height)
    streams = {
        name: encode_grid(
            image, config, engine=name, stripes=stripes, plane_delta=plane_delta
        )[0]
        for name in engine_names()
    }
    reference = streams["reference"]
    assert all(stream == reference for stream in streams.values())
    # Dispatch really went through the registry: the names resolve to
    # distinct backend objects, not aliases of one implementation.
    backends = {id(get_engine(name)) for name in engine_names()}
    assert len(backends) == len(list(engine_names()))


@settings(deadline=None, max_examples=15)
@given(image=gray_images(max_side=10))
def test_native_engine_joins_registry_dispatch(image):
    # Force the build-optional native engine into the dispatchable set via
    # the pure-Python opt-in (meaningful without numba installed), then
    # undo the registration so the remaining tests see the stock list.
    # Hypothesis drives this test, so the toggling happens per example
    # rather than in a function-scoped fixture.
    import os

    from repro.core.interface import unregister_engine

    os.environ["REPRO_NATIVE_PURE_PYTHON"] = "1"
    try:
        assert "native" in engine_names()
        config = CodecConfig.hardware(bit_depth=image.bit_depth)
        reference = encode_grid(image, config, engine="reference")[0]
        native = encode_grid(image, config, engine=require_engine("native"))[0]
        assert native == reference
    finally:
        os.environ.pop("REPRO_NATIVE_PURE_PYTHON", None)
        unregister_engine("native")
