"""Tests for the gradient-adjusted predictor."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CodecConfig
from repro.core.neighborhood import Neighborhood
from repro.core.predictor import GradientAdjustedPredictor


def _nb(w=0, ww=0, n=0, nn=0, ne=0, nw=0, nne=0):
    return Neighborhood(w=w, ww=ww, n=n, nn=nn, ne=ne, nw=nw, nne=nne)


def _predictor():
    return GradientAdjustedPredictor(CodecConfig.hardware())


class TestFlatRegions:
    def test_constant_neighbourhood_predicts_the_constant(self):
        prediction = _predictor().predict(_nb(w=90, ww=90, n=90, nn=90, ne=90, nw=90, nne=90))
        assert prediction.predicted == 90
        assert prediction.dh == 0
        assert prediction.dv == 0

    def test_horizontal_ramp_is_predicted_well(self):
        # Pixel values increase by 4 per column: W=96, N=100 (same column).
        nb = _nb(w=96, ww=92, n=100, nn=100, ne=104, nw=96, nne=104)
        prediction = _predictor().predict(nb)
        assert abs(prediction.predicted - 100) <= 2


class TestEdges:
    def test_sharp_horizontal_edge_uses_west(self):
        # Huge vertical gradient (row above very different), no horizontal one.
        nb = _nb(w=200, ww=200, n=10, nn=200, ne=10, nw=10, nne=10)
        config = CodecConfig.hardware()
        prediction = GradientAdjustedPredictor(config).predict(nb)
        if prediction.dv - prediction.dh > config.gap_sharp_threshold:
            assert prediction.predicted == nb.w

    def test_sharp_vertical_edge_uses_north(self):
        nb = _nb(w=10, ww=200, n=200, nn=200, ne=200, nw=10, nne=200)
        config = CodecConfig.hardware()
        prediction = GradientAdjustedPredictor(config).predict(nb)
        if prediction.dh - prediction.dv > config.gap_sharp_threshold:
            assert prediction.predicted == nb.n

    def test_gradients_are_sums_of_absolute_differences(self):
        nb = _nb(w=10, ww=20, n=30, nn=40, ne=50, nw=60, nne=70)
        prediction = _predictor().predict(nb)
        assert prediction.dh == abs(10 - 20) + abs(30 - 60) + abs(30 - 50)
        assert prediction.dv == abs(10 - 60) + abs(30 - 40) + abs(50 - 70)


class TestBounds:
    @given(
        st.tuples(*[st.integers(min_value=0, max_value=255) for _ in range(7)])
    )
    @settings(max_examples=300, deadline=None)
    def test_prediction_always_in_range(self, values):
        nb = Neighborhood(*values)
        prediction = _predictor().predict(nb)
        assert 0 <= prediction.predicted <= 255
        assert prediction.dh >= 0
        assert prediction.dv >= 0

    @given(
        st.tuples(*[st.integers(min_value=0, max_value=255) for _ in range(7)])
    )
    @settings(max_examples=100, deadline=None)
    def test_prediction_is_deterministic(self, values):
        nb = Neighborhood(*values)
        assert _predictor().predict(nb) == _predictor().predict(nb)

    def test_16bit_configuration(self):
        config = CodecConfig.hardware(bit_depth=12, count_bits=12)
        predictor = GradientAdjustedPredictor(config)
        nb = _nb(w=4000, ww=4000, n=4000, nn=4000, ne=4000, nw=4000, nne=4000)
        assert predictor.predict(nb).predicted == 4000
