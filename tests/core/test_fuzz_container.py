"""Fuzz/corruption conformance of the container formats (v1, v2, v3).

The contract under attack: a malformed container must raise
:class:`~repro.exceptions.BitstreamError` (or its :class:`HeaderError`
subclass) — it must never hang and never return silently-wrong pixels.
Covered here:

* truncation at *every* byte boundary of every container version (headers,
  stripe/component tables and payloads alike);
* each magic byte flipped, and the version byte swept over every value;
* lying stripe/component tables: sum-breaking lies, zeroed and inflated
  entries, corrupted stripe/component counts — and, for version 3,
  sum-preserving offset lies, which the per-cell CRC index is specifically
  there to catch;
* deep truncation lies where the header is internally consistent but the
  entropy payload runs dry (the bounded phantom-bit reader must trip).
"""

from __future__ import annotations

import struct

import pytest

from repro.core.bitstream import _HEADER_STRUCT, unpack_stream
from repro.core.components import decode_planar, encode_planar
from repro.core.decoder import decode_image
from repro.core.encoder import encode_image
from repro.exceptions import BitstreamError
from repro.imaging.synthetic import generate_image, generate_planar_image
from repro.parallel.codec import ParallelCodec
from repro.parallel.executor import SerialExecutor

_SIZE = 16
_FIXED = _HEADER_STRUCT.size  # 21-byte fixed header shared by all versions


def _v1_stream() -> bytes:
    return encode_image(generate_image("boat", size=_SIZE))


def _v2_stream() -> bytes:
    codec = ParallelCodec(cores=3, executor=SerialExecutor())
    return codec.encode(generate_image("boat", size=_SIZE))


def _v3_stream(plane_delta: bool = False) -> bytes:
    image = generate_planar_image("boat", size=_SIZE)
    return encode_planar(image, stripes=2, plane_delta=plane_delta)


def _decode_any(stream: bytes):
    """Decode through the version-appropriate full decoder."""
    header, _ = unpack_stream(stream)
    if header.component_lengths:
        return decode_planar(stream)
    return decode_image(stream)


_STREAMS = {
    "v1": _v1_stream,
    "v2": _v2_stream,
    "v3": _v3_stream,
    "v3-delta": lambda: _v3_stream(plane_delta=True),
}


@pytest.fixture(scope="module", params=sorted(_STREAMS))
def stream(request):
    return _STREAMS[request.param]()


class TestTruncation:
    def test_every_prefix_raises(self, stream):
        """No prefix of a valid stream may decode (or hang)."""
        for cut in range(len(stream)):
            with pytest.raises(BitstreamError):
                _decode_any(stream[:cut])

    def test_deep_truncation_with_consistent_header(self):
        """A header rewritten to match a truncated payload still fails.

        The container layer cannot spot this corruption (every declared
        length matches), so the bounded phantom-bit entropy decoder must.
        """
        stream = _v1_stream()
        header, payload = unpack_stream(stream)
        cut = len(payload) // 2
        rebuilt = bytearray(stream[: _FIXED + cut])
        struct.pack_into(">I", rebuilt, 17, cut)
        with pytest.raises(BitstreamError):
            decode_image(bytes(rebuilt))


class TestHeaderFlips:
    def test_flipped_magic_bytes(self, stream):
        for index in range(4):
            mutated = bytearray(stream)
            mutated[index] ^= 0xFF
            with pytest.raises(BitstreamError):
                _decode_any(bytes(mutated))

    def test_every_wrong_version_byte(self, stream):
        valid = stream[4]
        for version in range(256):
            if version == valid:
                continue
            mutated = bytearray(stream)
            mutated[4] = version
            with pytest.raises(BitstreamError):
                _decode_any(bytes(mutated))

    def test_unknown_version_reports_found_version(self):
        mutated = bytearray(_v1_stream())
        mutated[4] = 9
        with pytest.raises(BitstreamError, match="version 9"):
            _decode_any(bytes(mutated))


def _v2_table_offset() -> int:
    return _FIXED + 2  # after the 2-byte stripe count


def _v3_table_offset() -> int:
    return _FIXED + 4  # after count/flags/stripe-count prefix


class TestLyingStripeTable:
    """Version-2 stripe-table lies must all surface as BitstreamError."""

    def test_sum_breaking_length_lies(self):
        stream = _v2_stream()
        header, _ = unpack_stream(stream)
        for index in range(len(header.stripe_lengths)):
            for lie in (0, header.stripe_lengths[index] + 7, 0xFFFFFF):
                mutated = bytearray(stream)
                struct.pack_into(">I", mutated, _v2_table_offset() + 4 * index, lie)
                with pytest.raises(BitstreamError):
                    _decode_any(bytes(mutated))

    def test_corrupt_stripe_count(self):
        stream = _v2_stream()
        for count in (0, _SIZE + 1, 0xFFFF):
            mutated = bytearray(stream)
            struct.pack_into(">H", mutated, _FIXED, count)
            with pytest.raises(BitstreamError):
                _decode_any(bytes(mutated))


class TestLyingComponentIndex:
    """Version-3 index lies — including sum-preserving ones — must raise."""

    @pytest.mark.parametrize("plane_delta", [False, True])
    def test_sum_breaking_length_lies(self, plane_delta):
        stream = _v3_stream(plane_delta)
        header, _ = unpack_stream(stream)
        flat = [length for plane in header.component_lengths for length in plane]
        for index in range(len(flat)):
            for lie in (0, flat[index] + 9, 0xFFFFFF):
                mutated = bytearray(stream)
                struct.pack_into(">I", mutated, _v3_table_offset() + 8 * index, lie)
                with pytest.raises(BitstreamError):
                    _decode_any(bytes(mutated))

    @pytest.mark.parametrize("plane_delta", [False, True])
    def test_sum_preserving_offset_lies(self, plane_delta):
        """Moving bytes between cells keeps every container check happy —
        only the per-cell CRC index can (and must) catch it."""
        stream = _v3_stream(plane_delta)
        header, _ = unpack_stream(stream)
        flat = [length for plane in header.component_lengths for length in plane]
        for source in range(len(flat)):
            for target in range(len(flat)):
                if source == target or flat[source] <= 3:
                    continue
                lied = list(flat)
                lied[source] -= 3
                lied[target] += 3
                mutated = bytearray(stream)
                for index, value in enumerate(lied):
                    struct.pack_into(
                        ">I", mutated, _v3_table_offset() + 8 * index, value
                    )
                with pytest.raises(BitstreamError):
                    _decode_any(bytes(mutated))

    def test_flipped_index_crc(self):
        stream = _v3_stream()
        mutated = bytearray(stream)
        mutated[_v3_table_offset() + 4] ^= 0xFF  # CRC field of cell 0
        with pytest.raises(BitstreamError, match="CRC"):
            _decode_any(bytes(mutated))

    def test_flipped_payload_byte_is_caught_by_crc(self):
        """Payload corruption on v3 streams is detected, not decoded."""
        stream = _v3_stream()
        header, _ = unpack_stream(stream)
        mutated = bytearray(stream)
        mutated[header.payload_offset + 1] ^= 0x55
        with pytest.raises(BitstreamError, match="CRC"):
            _decode_any(bytes(mutated))

    def test_corrupt_component_and_stripe_counts(self):
        stream = _v3_stream()
        for offset, values in ((_FIXED, (0,)), (_FIXED + 2, (0, _SIZE + 1))):
            for value in values:
                mutated = bytearray(stream)
                if offset == _FIXED:
                    mutated[offset] = value
                else:
                    struct.pack_into(">H", mutated, offset, value)
                with pytest.raises(BitstreamError):
                    _decode_any(bytes(mutated))
