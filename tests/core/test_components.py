"""Unit tests for the multi-component subsystem (container v3).

The acceptance-defining test lives here: byte-count accounting proves that
``decode_plane`` / ``decode_region`` hand the entropy decoder exactly the
indexed bytes of the requested cells — random access really skips the rest
of the stream rather than decoding and discarding it.
"""

from __future__ import annotations

import pytest

import repro.core.cellgrid as cellgrid
import repro.core.components as components
from repro.core.bitstream import (
    pack_component_stream,
    unpack_stream,
    CodecId,
)
from repro.core.codec import ProposedCodec
from repro.core.components import (
    decode_plane,
    decode_planar,
    decode_region,
    encode_planar,
    stream_index,
)
from repro.core.config import CodecConfig
from repro.core.decoder import decode_image
from repro.core.encoder import encode_image
from repro.exceptions import (
    BitstreamError,
    CodecMismatchError,
    ConfigError,
    HeaderError,
)
from repro.imaging.planar import PlanarImage
from repro.imaging.synthetic import generate_image, generate_planar_image
from repro.parallel.codec import ParallelCodec
from repro.parallel.executor import SerialExecutor


@pytest.fixture(scope="module")
def rgb_image() -> PlanarImage:
    return generate_planar_image("lena", size=24)


@pytest.fixture(scope="module")
def multiband_image() -> PlanarImage:
    return generate_planar_image("goldhill", size=20, planes=5)


class TestRoundtrip:
    @pytest.mark.parametrize("plane_delta", [False, True])
    @pytest.mark.parametrize("stripes", [1, 3])
    def test_rgb(self, rgb_image, plane_delta, stripes):
        stream = encode_planar(rgb_image, stripes=stripes, plane_delta=plane_delta)
        assert decode_planar(stream) == rgb_image

    def test_multiband(self, multiband_image):
        stream = encode_planar(multiband_image, stripes=2, plane_delta=True)
        assert decode_planar(stream) == multiband_image

    def test_single_plane_planar(self):
        image = PlanarImage([generate_image("zelda", size=18)])
        stream = encode_planar(image)
        assert decode_planar(stream) == image
        # A one-plane v3 stream also decodes through the grey entry point.
        assert decode_image(stream) == image.plane(0)

    def test_delta_improves_correlated_planes(self, rgb_image):
        independent = encode_planar(rgb_image, plane_delta=False)
        delta = encode_planar(rgb_image, plane_delta=True)
        assert len(delta) < len(independent)

    def test_gray_streams_decode_as_one_plane(self):
        gray = generate_image("boat", size=18)
        planar = decode_planar(encode_image(gray))
        assert planar.num_planes == 1
        assert planar.plane(0) == gray


class TestRandomAccess:
    @pytest.mark.parametrize("plane_delta", [False, True])
    def test_decode_plane_matches_full_decode(self, rgb_image, plane_delta):
        stream = encode_planar(rgb_image, stripes=4, plane_delta=plane_delta)
        full = decode_planar(stream)
        for k in range(rgb_image.num_planes):
            assert decode_plane(stream, k) == full.plane(k) == rgb_image.plane(k)

    @pytest.mark.parametrize("plane_delta", [False, True])
    def test_decode_region_matches_full_decode(self, rgb_image, plane_delta):
        stream = encode_planar(rgb_image, stripes=4, plane_delta=plane_delta)
        region = decode_region(stream, (1, 3))
        full_array = decode_planar(stream).to_array()
        index = stream_index(stream)
        rows = [e for e in index.entries if e.plane == 0 and 1 <= e.stripe < 3]
        first = min(e.start_row for e in rows)
        last = max(e.start_row + e.row_count for e in rows)
        assert (region.to_array() == full_array[first:last]).all()

    def test_decode_region_on_v1_and_v2(self):
        gray = generate_image("peppers", size=20)
        v1 = encode_image(gray)
        assert decode_region(v1, (0, 1)) == gray
        v2 = ParallelCodec(cores=4, executor=SerialExecutor()).encode(gray)
        region = decode_region(v2, (1, 3))
        full = gray.to_array()
        assert (region.to_array() == full[5:15]).all()

    def test_plane_and_region_bounds_checked(self, rgb_image):
        """Out-of-range *arguments* are caller errors (ConfigError), distinct
        from corrupt containers (BitstreamError)."""
        stream = encode_planar(rgb_image, stripes=2)
        with pytest.raises(ConfigError):
            decode_plane(stream, 3)
        with pytest.raises(ConfigError):
            decode_plane(stream, -1)
        for bad_range in ((0, 0), (1, 1), (0, 3), (-1, 1), (2, 1)):
            with pytest.raises(ConfigError):
                decode_region(stream, bad_range)
        with pytest.raises(ConfigError):
            decode_region(stream, (0,))

    def test_decode_plane_reads_only_indexed_bytes(self, rgb_image, monkeypatch):
        """Byte-count accounting: the entropy decoder sees exactly the
        indexed cells of the requested plane, nothing else."""
        stream = encode_planar(rgb_image, stripes=4, plane_delta=False)
        index = stream_index(stream)
        seen = []
        real = cellgrid.decode_payload

        def counting(payload, width, height, config, engine="reference"):
            seen.append(len(payload))
            return real(payload, width, height, config, engine=engine)

        monkeypatch.setattr(cellgrid, "decode_payload", counting)
        decode_plane(stream, 1)
        plane_cells = [e.length for e in index.entries if e.plane == 1]
        assert sorted(seen) == sorted(plane_cells)
        assert sum(seen) < index.payload_length

    def test_decode_region_reads_only_indexed_bytes(self, rgb_image, monkeypatch):
        stream = encode_planar(rgb_image, stripes=4, plane_delta=True)
        index = stream_index(stream)
        seen = []
        real = cellgrid.decode_payload

        def counting(payload, width, height, config, engine="reference"):
            seen.append(len(payload))
            return real(payload, width, height, config, engine=engine)

        monkeypatch.setattr(cellgrid, "decode_payload", counting)
        decode_region(stream, (2, 4))
        region_cells = [e.length for e in index.entries if 2 <= e.stripe < 4]
        assert sorted(seen) == sorted(region_cells)
        assert sum(seen) < index.payload_length

    def test_delta_decode_plane_skips_later_planes(self, multiband_image, monkeypatch):
        """On a delta stream, plane k needs planes 0..k — and not k+1..C-1."""
        stream = encode_planar(multiband_image, stripes=2, plane_delta=True)
        index = stream_index(stream)
        seen = []
        real = cellgrid.decode_payload

        def counting(payload, width, height, config, engine="reference"):
            seen.append(len(payload))
            return real(payload, width, height, config, engine=engine)

        monkeypatch.setattr(cellgrid, "decode_payload", counting)
        decode_plane(stream, 2)
        chain_cells = [e.length for e in index.entries if e.plane <= 2]
        assert sorted(seen) == sorted(chain_cells)


class TestEnginesAndFacades:
    def test_engines_byte_identical(self, rgb_image):
        for plane_delta in (False, True):
            reference = encode_planar(
                rgb_image, engine="reference", stripes=2, plane_delta=plane_delta
            )
            fast = encode_planar(
                rgb_image, engine="fast", stripes=2, plane_delta=plane_delta
            )
            assert fast == reference
            assert decode_planar(reference, engine="fast") == rgb_image

    def test_parallel_codec_matches_serial_encoder(self, rgb_image):
        codec = ParallelCodec(cores=3, executor=SerialExecutor(), plane_delta=True)
        stream = codec.encode(rgb_image)
        assert stream == encode_planar(rgb_image, stripes=3, plane_delta=True)
        assert codec.decode(stream) == rgb_image

    def test_proposed_codec_dispatch(self, rgb_image):
        codec = ProposedCodec(plane_delta=True)
        stream = codec.encode(rgb_image)
        decoded = codec.decode(stream)
        assert isinstance(decoded, PlanarImage)
        assert decoded == rgb_image
        assert codec.decode_plane(stream, 0) == rgb_image.plane(0)
        assert codec.decode_region(stream, (0, 1)) == rgb_image
        assert codec.last_statistics is not None
        assert codec.last_statistics.total_bytes == len(stream)

    def test_decode_image_rejects_multicomponent_with_version(self, rgb_image):
        stream = encode_planar(rgb_image)
        with pytest.raises(CodecMismatchError, match="version-3"):
            decode_image(stream)


class TestValidation:
    def test_bit_depth_mismatch(self, rgb_image):
        with pytest.raises(ConfigError):
            encode_planar(rgb_image, CodecConfig.hardware(bit_depth=10))

    def test_too_many_stripes(self, rgb_image):
        with pytest.raises(ConfigError):
            encode_planar(rgb_image, stripes=rgb_image.height + 1)

    def test_pack_rejects_ragged_planes(self):
        with pytest.raises(HeaderError):
            pack_component_stream(
                CodecId.PROPOSED, 4, 4, 8, [[b"ab", b"cd"], [b"ef"]]
            )

    def test_pack_rejects_zero_planes(self):
        with pytest.raises(HeaderError):
            pack_component_stream(CodecId.PROPOSED, 4, 4, 8, [])

    def test_index_crc_round_trips_through_header(self, rgb_image):
        stream = encode_planar(rgb_image, stripes=2)
        header, payload = unpack_stream(stream)
        assert header.component_count == 3
        assert len(header.component_crcs) == 3
        assert all(len(plane) == 2 for plane in header.component_crcs)

    def test_stream_index_on_v1_reports_single_cell(self):
        gray = generate_image("zelda", size=18)
        index = stream_index(encode_image(gray))
        assert index.version == 1
        assert len(index.entries) == 1
        assert index.entries[0].length == index.payload_length
        assert index.entries[0].crc is None
