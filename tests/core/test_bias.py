"""Tests for the error-feedback stage (bias corrector and LUT divider)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bias import BiasCorrector, ReciprocalDivider
from repro.core.config import CodecConfig
from repro.exceptions import ModelStateError


class TestReciprocalDivider:
    def test_rom_size_matches_paper(self):
        divider = ReciprocalDivider()
        assert divider.entries == 512
        assert divider.rom_bytes == 1024  # the paper's 1 KByte

    def test_round_to_nearest_for_powers_of_two(self):
        divider = ReciprocalDivider()
        for divisor in (1, 2, 4, 8, 16):
            for dividend in (-1000, -17, 0, 5, 1023):
                expected = (abs(dividend) + divisor // 2) // divisor
                expected = -expected if dividend < 0 else expected
                assert divider.divide(dividend, divisor) == expected

    def test_close_to_exact_for_all_divisors(self):
        divider = ReciprocalDivider()
        for divisor in range(1, 32):
            for dividend in range(-1023, 1024, 37):
                approx = divider.divide(dividend, divisor)
                exact = (abs(dividend) + divisor // 2) // divisor
                exact = -exact if dividend < 0 else exact
                assert abs(approx - exact) <= 1

    def test_sign_symmetry(self):
        divider = ReciprocalDivider()
        assert divider.divide(-300, 7) == -divider.divide(300, 7)

    def test_rom_entry_accessor(self):
        divider = ReciprocalDivider()
        assert divider.rom_entry(1) == 1 << 15
        assert divider.rom_entry(2) == 1 << 14
        with pytest.raises(ModelStateError):
            divider.rom_entry(512)

    def test_divisor_out_of_range(self):
        divider = ReciprocalDivider()
        with pytest.raises(ModelStateError):
            divider.divide(10, 0)
        with pytest.raises(ModelStateError):
            divider.divide(10, 512)

    def test_invalid_construction(self):
        with pytest.raises(ModelStateError):
            ReciprocalDivider(entries=1)
        with pytest.raises(ModelStateError):
            ReciprocalDivider(shift=40)

    @given(st.integers(min_value=-1023, max_value=1023), st.integers(min_value=1, max_value=31))
    @settings(max_examples=200, deadline=None)
    def test_error_bounded_by_one(self, dividend, divisor):
        divider = ReciprocalDivider()
        exact = (abs(dividend) + divisor // 2) // divisor
        exact = -exact if dividend < 0 else exact
        assert abs(divider.divide(dividend, divisor) - exact) <= 1


class TestBiasCorrector:
    def test_initial_state_gives_zero_feedback(self):
        bias = BiasCorrector(CodecConfig.hardware())
        assert bias.mean_error(0) == 0
        assert bias.adjusted_prediction(0, 100) == 100

    def test_mean_converges_to_constant_error(self):
        bias = BiasCorrector(CodecConfig.hardware())
        for _ in range(20):
            bias.update(5, 4)
        assert bias.mean_error(5) == 4
        assert bias.adjusted_prediction(5, 100) == 104

    def test_negative_bias(self):
        bias = BiasCorrector(CodecConfig.hardware())
        for _ in range(16):
            bias.update(7, -6)
        assert bias.mean_error(7) == -6
        assert bias.adjusted_prediction(7, 100) == 94

    def test_adjusted_prediction_clamped(self):
        config = CodecConfig.hardware()
        bias = BiasCorrector(config)
        for _ in range(16):
            bias.update(1, 120)
        assert bias.adjusted_prediction(1, 250) == config.max_sample
        for _ in range(30):
            bias.update(2, -120)
        assert bias.adjusted_prediction(2, 3) == 0

    def test_overflow_guard_halves_count_and_sum(self):
        config = CodecConfig.hardware()
        bias = BiasCorrector(config)
        for _ in range(31):
            bias.update(9, 2)
        total, count = bias.statistics(9)
        assert count == 31
        assert total == 62
        bias.update(9, 2)  # triggers the halving
        total, count = bias.statistics(9)
        assert count == 16  # 31 >> 1 == 15, then +1
        assert total == 33  # 62 >> 1 == 31, then +2
        # The mean is preserved through the rescale.
        assert bias.mean_error(9) == 2

    def test_count_never_exceeds_register_width(self):
        config = CodecConfig.hardware()
        bias = BiasCorrector(config)
        for _ in range(500):
            bias.update(0, 1)
            _, count = bias.statistics(0)
            assert count <= config.bias_count_max

    def test_sum_is_saturated_at_register_bounds(self):
        config = CodecConfig.hardware(use_overflow_guard_aging=False, bias_count_bits=16)
        bias = BiasCorrector(config)
        for _ in range(200):
            bias.update(0, 120)
        total, _ = bias.statistics(0)
        assert total <= (1 << config.bias_sum_magnitude_bits) - 1

    def test_aging_disabled_freezes_statistics(self):
        config = CodecConfig.hardware(use_overflow_guard_aging=False)
        bias = BiasCorrector(config)
        for _ in range(100):
            bias.update(3, 1)
        _, count = bias.statistics(3)
        assert count == config.bias_count_max

    def test_dividend_bound_limits_feedback(self):
        # Huge accumulated sums are clamped to 10 bits before the division.
        config = CodecConfig.hardware(use_overflow_guard_aging=False, bias_count_bits=16)
        bias = BiasCorrector(config)
        for _ in range(40):
            bias.update(0, 127)
        assert bias.mean_error(0) <= config.bias_dividend_max

    def test_error_feedback_disabled(self):
        config = CodecConfig.hardware(use_error_feedback=False)
        bias = BiasCorrector(config)
        for _ in range(16):
            bias.update(0, 10)
        assert bias.adjusted_prediction(0, 50) == 50

    def test_lut_and_exact_division_agree_within_one(self):
        lut = BiasCorrector(CodecConfig.hardware(use_lut_division=True))
        exact = BiasCorrector(CodecConfig.hardware(use_lut_division=False))
        import random

        rng = random.Random(4)
        for _ in range(500):
            context = rng.randrange(512)
            error = rng.randint(-40, 40)
            lut.update(context, error)
            exact.update(context, error)
        for context in range(512):
            assert abs(lut.mean_error(context) - exact.mean_error(context)) <= 1

    def test_context_out_of_range(self):
        bias = BiasCorrector(CodecConfig.hardware())
        with pytest.raises(ModelStateError):
            bias.update(512, 0)
        with pytest.raises(ModelStateError):
            bias.mean_error(-1)

    def test_memory_bits_matches_paper_budget(self):
        bias = BiasCorrector(CodecConfig.hardware())
        # 512 contexts x (13 + 1 + 5) bits = 9728 bits ~ 1.19 KB
        assert bias.memory_bits() == 512 * 19
