"""Property-based round-trip conformance of the reference engine.

Every drawn image — any geometry, bit depth 1-12, four content families,
1-4 planes — must round-trip byte-exactly through the container formats,
and the random-access decoders must agree with the full decoder on every
stream.  The strategies live in the shared ``tests/strategies.py`` module
so the fast and parallel suites test the same input distribution.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st
from strategies import gray_images, planar_images

from repro.core.components import (
    decode_plane,
    decode_planar,
    decode_region,
    encode_planar,
)
from repro.core.config import CodecConfig
from repro.core.decoder import decode_image
from repro.core.encoder import encode_image


def _config_for(image) -> CodecConfig:
    return CodecConfig.hardware(bit_depth=image.bit_depth)


class TestGrayRoundtrip:
    @given(image=gray_images())
    def test_encode_decode_identity(self, image):
        config = _config_for(image)
        stream = encode_image(image, config)
        assert decode_image(stream, config) == image

    @given(image=gray_images())
    def test_encoding_is_deterministic(self, image):
        config = _config_for(image)
        assert encode_image(image, config) == encode_image(image, config)


class TestPlanarRoundtrip:
    @given(image=planar_images(), plane_delta=st.booleans())
    def test_encode_decode_identity(self, image, plane_delta):
        config = _config_for(image)
        stream = encode_planar(image, config, plane_delta=plane_delta)
        assert decode_planar(stream, config) == image

    @given(image=planar_images(min_side=2), plane_delta=st.booleans(), data=st.data())
    def test_random_access_matches_full_decode(self, image, plane_delta, data):
        config = _config_for(image)
        stripes = data.draw(st.integers(min_value=1, max_value=image.height))
        stream = encode_planar(
            image, config, stripes=stripes, plane_delta=plane_delta
        )

        plane = data.draw(st.integers(min_value=0, max_value=image.num_planes - 1))
        assert decode_plane(stream, plane, config) == image.plane(plane)

        start = data.draw(st.integers(min_value=0, max_value=stripes - 1))
        stop = data.draw(st.integers(min_value=start + 1, max_value=stripes))
        # Region rows are the concatenation of the selected stripes; derive
        # the row window from the same deterministic partition the codec uses.
        from repro.parallel.partition import plan_stripes

        region = decode_region(stream, (start, stop), config)
        plan = plan_stripes(image.height, stripes)
        first_row = plan[start].start_row
        last_row = plan[stop - 1].stop_row
        assert region.height == last_row - first_row
        for k in range(image.num_planes):
            expected_rows = [image.plane(k).row(y) for y in range(first_row, last_row)]
            actual_rows = [region.plane(k).row(y) for y in range(region.height)]
            assert actual_rows == expected_rows
