"""Tests for the image modelling pipeline (encoder/decoder shared stage)."""

import pytest

from repro.core.config import CodecConfig
from repro.core.mapping import map_error
from repro.core.modeling import ImageModeler
from repro.exceptions import ModelStateError
from repro.imaging.synthetic import generate_image


class TestPipelineProtocol:
    def test_model_then_commit_sequence(self):
        config = CodecConfig.hardware()
        modeler = ImageModeler(width=4, config=config)
        for value in [10, 20, 30, 40]:
            x = len(modeler.window._current)
            model = modeler.model_pixel(x)
            symbol, wrapped = map_error(value, model.adjusted, config.bit_depth)
            modeler.commit_pixel(value, wrapped, model)
        modeler.end_row()
        assert modeler.window.rows_completed == 1

    def test_descriptor_fields_in_range(self):
        config = CodecConfig.hardware()
        modeler = ImageModeler(width=16, config=config)
        image = generate_image("boat", size=16)
        for y in range(16):
            row = image.row(y)
            for x in range(16):
                model = modeler.model_pixel(x)
                assert 0 <= model.predicted <= 255
                assert 0 <= model.adjusted <= 255
                assert 0 <= model.context.compound < config.compound_contexts
                assert 0 <= model.context.energy < config.energy_levels
                _, wrapped = map_error(row[x], model.adjusted, config.bit_depth)
                modeler.commit_pixel(row[x], wrapped, model)
            modeler.end_row()

    def test_identical_runs_produce_identical_state(self):
        """Determinism: running the same pixels twice gives the same contexts."""
        config = CodecConfig.hardware()
        image = generate_image("lena", size=16)

        def run():
            modeler = ImageModeler(width=16, config=config)
            trace = []
            for y in range(16):
                row = image.row(y)
                for x in range(16):
                    model = modeler.model_pixel(x)
                    trace.append((model.predicted, model.adjusted, model.context.compound))
                    _, wrapped = map_error(row[x], model.adjusted, config.bit_depth)
                    modeler.commit_pixel(row[x], wrapped, model)
                modeler.end_row()
            return trace

        assert run() == run()

    def test_bias_feedback_changes_adjusted_prediction(self):
        """After observing a systematic error, the adjusted prediction moves."""
        config = CodecConfig.hardware()
        modeler = ImageModeler(width=2, config=config)
        # Feed rows whose actual values are consistently 10 above a flat
        # prediction to build up a positive bias.
        deltas = []
        value = 100
        for _row in range(30):
            for x in range(2):
                model = modeler.model_pixel(x)
                deltas.append(model.adjusted - model.predicted)
                actual = min(255, model.predicted + 10)
                _, wrapped = map_error(actual, model.adjusted, config.bit_depth)
                modeler.commit_pixel(actual, wrapped, model)
            modeler.end_row()
        assert max(deltas) > 0  # feedback kicked in at some point

    def test_modeling_memory_budget(self):
        config = CodecConfig.hardware()
        modeler = ImageModeler(width=512, config=config)
        memory = modeler.modeling_memory_bytes()
        # The paper quotes 3.7 KB for a 512-wide image.
        assert 3300 <= memory <= 4200

    def test_memory_without_lut_division_is_smaller(self):
        with_lut = ImageModeler(512, CodecConfig.hardware()).modeling_memory_bytes()
        without_lut = ImageModeler(
            512, CodecConfig.hardware(use_lut_division=False)
        ).modeling_memory_bytes()
        assert with_lut - without_lut == 1024  # exactly the 1 KB division ROM

    def test_wrong_column_order_rejected(self):
        modeler = ImageModeler(width=4, config=CodecConfig.hardware())
        modeler.model_pixel(0)
        with pytest.raises(ModelStateError):
            modeler.model_pixel(2)
