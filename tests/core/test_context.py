"""Tests for the context modeller (texture pattern + coding context)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CodecConfig
from repro.core.context import ContextModeler
from repro.core.neighborhood import Neighborhood


def _nb(w=0, ww=0, n=0, nn=0, ne=0, nw=0, nne=0):
    return Neighborhood(w=w, ww=ww, n=n, nn=nn, ne=ne, nw=nw, nne=nne)


@pytest.fixture()
def modeler():
    return ContextModeler(CodecConfig.hardware())


class TestTexturePattern:
    def test_all_below_prediction_sets_all_bits(self, modeler):
        nb = _nb(w=10, ww=10, n=10, nn=10, ne=10, nw=10, nne=10)
        assert modeler.texture_pattern(nb, predicted=200) == 0b111111

    def test_all_above_prediction_clears_all_bits(self, modeler):
        nb = _nb(w=210, ww=210, n=210, nn=210, ne=210, nw=210, nne=210)
        assert modeler.texture_pattern(nb, predicted=100) == 0

    def test_equal_values_count_as_not_below(self, modeler):
        nb = _nb(w=100, ww=100, n=100, nn=100, ne=100, nw=100, nne=100)
        assert modeler.texture_pattern(nb, predicted=100) == 0

    def test_individual_bits(self, modeler):
        base = dict(w=200, ww=200, n=200, nn=200, ne=200, nw=200, nne=200)
        # Neighbour order: N, W, NW, NE, NN, WW -> bits 0..5.
        for bit, key in enumerate(["n", "w", "nw", "ne", "nn", "ww"]):
            values = dict(base)
            values[key] = 5
            assert modeler.texture_pattern(_nb(**values), predicted=100) == 1 << bit

    @given(
        st.tuples(*[st.integers(min_value=0, max_value=255) for _ in range(7)]),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=200, deadline=None)
    def test_pattern_fits_in_six_bits(self, values, predicted):
        pattern = ContextModeler(CodecConfig.hardware()).texture_pattern(
            Neighborhood(*values), predicted
        )
        assert 0 <= pattern < 64


class TestEnergyQuantiser:
    def test_energy_formula(self, modeler):
        assert modeler.error_energy(dh=10, dv=20, previous_error=-3) == 36

    def test_quantiser_level_boundaries(self, modeler):
        thresholds = CodecConfig.hardware().energy_thresholds
        for level, threshold in enumerate(thresholds):
            assert modeler.quantize_energy(threshold) == level
            assert modeler.quantize_energy(threshold + 1) == level + 1

    def test_zero_energy_is_level_zero(self, modeler):
        assert modeler.quantize_energy(0) == 0

    def test_huge_energy_is_top_level(self, modeler):
        assert modeler.quantize_energy(10_000) == 7

    @given(st.integers(min_value=0, max_value=5000))
    @settings(max_examples=200, deadline=None)
    def test_levels_in_range(self, energy):
        level = ContextModeler(CodecConfig.hardware()).quantize_energy(energy)
        assert 0 <= level < 8

    def test_quantiser_is_monotone(self, modeler):
        levels = [modeler.quantize_energy(e) for e in range(0, 400)]
        assert levels == sorted(levels)


class TestCompoundContext:
    def test_compound_index_formula(self, modeler):
        assert modeler.compound_index(texture=0, energy=0) == 0
        assert modeler.compound_index(texture=63, energy=7) == 511
        assert modeler.compound_index(texture=1, energy=0) == 8

    def test_describe_combines_everything(self, modeler):
        nb = _nb(w=100, ww=90, n=110, nn=120, ne=115, nw=95, nne=118)
        descriptor = modeler.describe(nb, predicted=105, dh=12, dv=20, previous_error=2)
        assert 0 <= descriptor.texture < 64
        assert 0 <= descriptor.energy < 8
        assert descriptor.compound == descriptor.texture * 8 + descriptor.energy

    @given(
        st.tuples(*[st.integers(min_value=0, max_value=255) for _ in range(7)]),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=800),
        st.integers(min_value=0, max_value=800),
        st.integers(min_value=-255, max_value=255),
    )
    @settings(max_examples=200, deadline=None)
    def test_compound_always_below_512(self, values, predicted, dh, dv, previous_error):
        modeler = ContextModeler(CodecConfig.hardware())
        descriptor = modeler.describe(Neighborhood(*values), predicted, dh, dv, previous_error)
        assert 0 <= descriptor.compound < 512
