"""Tests for the compressed-stream container."""

import pytest

from repro.core.bitstream import CodecId, pack_stream, unpack_stream
from repro.exceptions import BitstreamError, HeaderError


class TestPackUnpack:
    def test_roundtrip(self):
        payload = b"\x01\x02\x03\x04"
        stream = pack_stream(CodecId.PROPOSED, 640, 480, 8, payload, parameter=14, flags=1)
        header, recovered = unpack_stream(stream)
        assert header.codec == CodecId.PROPOSED
        assert header.width == 640
        assert header.height == 480
        assert header.bit_depth == 8
        assert header.parameter == 14
        assert header.flags == 1
        assert header.payload_length == len(payload)
        assert header.pixel_count == 640 * 480
        assert recovered == payload

    def test_empty_payload(self):
        stream = pack_stream(CodecId.SLP, 1, 1, 8, b"")
        header, payload = unpack_stream(stream)
        assert payload == b""
        assert header.payload_length == 0

    def test_every_codec_id_roundtrips(self):
        for codec in CodecId:
            header, _ = unpack_stream(pack_stream(codec, 2, 2, 8, b"xy"))
            assert header.codec == codec

    def test_trailing_garbage_is_ignored(self):
        stream = pack_stream(CodecId.CALIC, 2, 2, 8, b"abcd") + b"GARBAGE"
        _, payload = unpack_stream(stream)
        assert payload == b"abcd"


class TestPackValidation:
    def test_bad_dimensions(self):
        with pytest.raises(HeaderError):
            pack_stream(CodecId.PROPOSED, 0, 10, 8, b"")

    def test_bad_bit_depth(self):
        with pytest.raises(HeaderError):
            pack_stream(CodecId.PROPOSED, 1, 1, 0, b"")
        with pytest.raises(HeaderError):
            pack_stream(CodecId.PROPOSED, 1, 1, 17, b"")

    def test_parameter_and_flags_must_fit_in_a_byte(self):
        with pytest.raises(HeaderError):
            pack_stream(CodecId.PROPOSED, 1, 1, 8, b"", parameter=256)
        with pytest.raises(HeaderError):
            pack_stream(CodecId.PROPOSED, 1, 1, 8, b"", flags=-1)


class TestUnpackValidation:
    def test_too_short_for_header(self):
        with pytest.raises(HeaderError):
            unpack_stream(b"RP")

    def test_bad_magic(self):
        stream = bytearray(pack_stream(CodecId.PROPOSED, 1, 1, 8, b"x"))
        stream[0:4] = b"XXXX"
        with pytest.raises(HeaderError):
            unpack_stream(bytes(stream))

    def test_bad_version(self):
        stream = bytearray(pack_stream(CodecId.PROPOSED, 1, 1, 8, b"x"))
        stream[4] = 99
        with pytest.raises(HeaderError):
            unpack_stream(bytes(stream))

    def test_unknown_codec_id(self):
        stream = bytearray(pack_stream(CodecId.PROPOSED, 1, 1, 8, b"x"))
        stream[5] = 200
        with pytest.raises(HeaderError):
            unpack_stream(bytes(stream))

    def test_truncated_payload_detected(self):
        stream = pack_stream(CodecId.PROPOSED, 4, 4, 8, b"0123456789")
        with pytest.raises(BitstreamError):
            unpack_stream(stream[:-3])

    def test_corrupt_bit_depth(self):
        stream = bytearray(pack_stream(CodecId.PROPOSED, 1, 1, 8, b"x"))
        stream[14] = 0
        with pytest.raises(HeaderError):
            unpack_stream(bytes(stream))
