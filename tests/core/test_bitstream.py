"""Tests for the compressed-stream container."""

import pytest

from repro.core.bitstream import (
    CodecId,
    pack_stream,
    split_stripe_payloads,
    unpack_stream,
)
from repro.exceptions import BitstreamError, HeaderError


class TestPackUnpack:
    def test_roundtrip(self):
        payload = b"\x01\x02\x03\x04"
        stream = pack_stream(CodecId.PROPOSED, 640, 480, 8, payload, parameter=14, flags=1)
        header, recovered = unpack_stream(stream)
        assert header.codec == CodecId.PROPOSED
        assert header.width == 640
        assert header.height == 480
        assert header.bit_depth == 8
        assert header.parameter == 14
        assert header.flags == 1
        assert header.payload_length == len(payload)
        assert header.pixel_count == 640 * 480
        assert recovered == payload

    def test_empty_payload(self):
        stream = pack_stream(CodecId.SLP, 1, 1, 8, b"")
        header, payload = unpack_stream(stream)
        assert payload == b""
        assert header.payload_length == 0

    def test_every_codec_id_roundtrips(self):
        for codec in CodecId:
            header, _ = unpack_stream(pack_stream(codec, 2, 2, 8, b"xy"))
            assert header.codec == codec

    def test_trailing_garbage_is_rejected(self):
        # Strict framing: tolerated trailing bytes would let a flipped
        # version byte re-parse a later version's tables as payload and
        # decode garbage silently.
        stream = pack_stream(CodecId.CALIC, 2, 2, 8, b"abcd") + b"GARBAGE"
        with pytest.raises(BitstreamError, match="trailing"):
            unpack_stream(stream)


class TestPackValidation:
    def test_bad_dimensions(self):
        with pytest.raises(HeaderError):
            pack_stream(CodecId.PROPOSED, 0, 10, 8, b"")

    def test_bad_bit_depth(self):
        with pytest.raises(HeaderError):
            pack_stream(CodecId.PROPOSED, 1, 1, 0, b"")
        with pytest.raises(HeaderError):
            pack_stream(CodecId.PROPOSED, 1, 1, 17, b"")

    def test_parameter_and_flags_must_fit_in_a_byte(self):
        with pytest.raises(HeaderError):
            pack_stream(CodecId.PROPOSED, 1, 1, 8, b"", parameter=256)
        with pytest.raises(HeaderError):
            pack_stream(CodecId.PROPOSED, 1, 1, 8, b"", flags=-1)


class TestUnpackValidation:
    def test_too_short_for_header(self):
        with pytest.raises(HeaderError):
            unpack_stream(b"RP")

    def test_bad_magic(self):
        stream = bytearray(pack_stream(CodecId.PROPOSED, 1, 1, 8, b"x"))
        stream[0:4] = b"XXXX"
        with pytest.raises(HeaderError):
            unpack_stream(bytes(stream))

    def test_bad_version(self):
        stream = bytearray(pack_stream(CodecId.PROPOSED, 1, 1, 8, b"x"))
        stream[4] = 99
        with pytest.raises(HeaderError):
            unpack_stream(bytes(stream))

    def test_unknown_codec_id(self):
        stream = bytearray(pack_stream(CodecId.PROPOSED, 1, 1, 8, b"x"))
        stream[5] = 200
        with pytest.raises(HeaderError):
            unpack_stream(bytes(stream))

    def test_truncated_payload_detected(self):
        stream = pack_stream(CodecId.PROPOSED, 4, 4, 8, b"0123456789")
        with pytest.raises(BitstreamError):
            unpack_stream(stream[:-3])

    def test_corrupt_bit_depth(self):
        stream = bytearray(pack_stream(CodecId.PROPOSED, 1, 1, 8, b"x"))
        stream[14] = 0
        with pytest.raises(HeaderError):
            unpack_stream(bytes(stream))


class TestStripedContainer:
    def test_version1_roundtrip_unchanged(self):
        stream = pack_stream(CodecId.PROPOSED, 8, 8, 8, b"payload")
        header, payload = unpack_stream(stream)
        assert header.version == 1
        assert header.stripe_lengths == ()
        assert header.stripe_count == 1
        assert split_stripe_payloads(header, payload) == [b"payload"]

    def test_version2_roundtrip(self):
        stripes = [b"aaa", b"bb", b"cccc"]
        stream = pack_stream(
            CodecId.PROPOSED_HARDWARE,
            16,
            9,
            8,
            b"".join(stripes),
            parameter=14,
            flags=1,
            stripe_lengths=[len(s) for s in stripes],
        )
        header, payload = unpack_stream(stream)
        assert header.version == 2
        assert header.stripe_lengths == (3, 2, 4)
        assert header.stripe_count == 3
        assert header.payload_length == 9
        assert split_stripe_payloads(header, payload) == stripes

    def test_single_stripe_version2(self):
        stream = pack_stream(CodecId.PROPOSED, 4, 4, 8, b"xyz", stripe_lengths=[3])
        header, payload = unpack_stream(stream)
        assert header.version == 2
        assert header.stripe_count == 1
        assert split_stripe_payloads(header, payload) == [b"xyz"]

    def test_empty_stripe_payload_allowed(self):
        stream = pack_stream(CodecId.PROPOSED, 4, 2, 8, b"ab", stripe_lengths=[2, 0])
        header, payload = unpack_stream(stream)
        assert split_stripe_payloads(header, payload) == [b"ab", b""]

    def test_trailing_garbage_is_rejected(self):
        stream = pack_stream(CodecId.PROPOSED, 4, 4, 8, b"abcd", stripe_lengths=[2, 2])
        with pytest.raises(BitstreamError, match="trailing"):
            unpack_stream(stream + b"GARBAGE")

    def test_striped_roundtrip_splits_cleanly(self):
        stream = pack_stream(CodecId.PROPOSED, 4, 4, 8, b"abcd", stripe_lengths=[2, 2])
        header, payload = unpack_stream(stream)
        assert split_stripe_payloads(header, payload) == [b"ab", b"cd"]

    def test_stripe_table_must_sum_to_payload(self):
        with pytest.raises(HeaderError):
            pack_stream(CodecId.PROPOSED, 4, 4, 8, b"abcd", stripe_lengths=[2, 3])

    def test_more_stripes_than_rows_rejected_on_pack(self):
        with pytest.raises(HeaderError):
            pack_stream(CodecId.PROPOSED, 4, 2, 8, b"abc", stripe_lengths=[1, 1, 1])

    def test_more_stripes_than_rows_rejected_on_unpack(self):
        stream = bytearray(
            pack_stream(CodecId.PROPOSED, 4, 2, 8, b"ab", stripe_lengths=[1, 1])
        )
        stream[13] = 1  # shrink height to 1 row below the 2-stripe table
        with pytest.raises(HeaderError):
            unpack_stream(bytes(stream))

    def test_zero_stripes_rejected(self):
        with pytest.raises(HeaderError):
            pack_stream(CodecId.PROPOSED, 4, 4, 8, b"", stripe_lengths=[])

    def test_truncated_stripe_table(self):
        stream = pack_stream(CodecId.PROPOSED, 4, 4, 8, b"abcd", stripe_lengths=[2, 2])
        with pytest.raises(HeaderError):
            unpack_stream(stream[:25])  # cut inside the length entries

    def test_corrupt_stripe_length_detected(self):
        stream = bytearray(
            pack_stream(CodecId.PROPOSED, 4, 4, 8, b"abcd", stripe_lengths=[2, 2])
        )
        stream[26] += 1  # first length entry no longer matches the total
        with pytest.raises(BitstreamError):
            unpack_stream(bytes(stream))

    def test_truncated_striped_payload(self):
        stream = pack_stream(CodecId.PROPOSED, 4, 4, 8, b"abcdef", stripe_lengths=[3, 3])
        with pytest.raises(BitstreamError):
            unpack_stream(stream[:-2])
