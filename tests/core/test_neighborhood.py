"""Tests for the three-row causal window (Figure 2 neighbourhood)."""

import pytest

from repro.core.neighborhood import Neighborhood, ThreeRowWindow
from repro.exceptions import ModelStateError


def _fill_rows(window, rows):
    for row in rows:
        for value in row:
            window.push(value)
        window.end_row()


class TestNeighborhood:
    def test_as_tuple_order(self):
        nb = Neighborhood(w=1, ww=2, n=3, nn=4, ne=5, nw=6, nne=7)
        assert nb.as_tuple() == (1, 2, 3, 4, 5, 6, 7)


class TestFirstPixel:
    def test_everything_defaults_to_mid_grey(self):
        window = ThreeRowWindow(width=4, default=128)
        nb = window.neighborhood(0)
        assert nb.as_tuple() == (128,) * 7


class TestFirstRow:
    def test_north_neighbours_fall_back_to_west(self):
        window = ThreeRowWindow(width=4, default=128)
        window.push(10)
        nb = window.neighborhood(1)
        assert nb.w == 10
        assert nb.n == 10
        assert nb.nw == 10
        assert nb.ne == 10
        assert nb.nn == 10

    def test_ww_falls_back_to_w(self):
        window = ThreeRowWindow(width=4, default=128)
        window.push(10)
        assert window.neighborhood(1).ww == 10
        window.push(20)
        nb = window.neighborhood(2)
        assert nb.w == 20 and nb.ww == 10


class TestInteriorPixels:
    def test_full_neighbourhood(self):
        window = ThreeRowWindow(width=4, default=0)
        _fill_rows(window, [[1, 2, 3, 4], [5, 6, 7, 8]])
        window.push(9)  # current row, column 0
        nb = window.neighborhood(1)
        # Rows: y-2 = [1,2,3,4], y-1 = [5,6,7,8], current = [9, ?]
        assert nb.w == 9
        assert nb.ww == 9      # x-2 out of row, falls back to w
        assert nb.n == 6
        assert nb.nw == 5
        assert nb.ne == 7
        assert nb.nn == 2
        assert nb.nne == 3

    def test_first_column_uses_row_above(self):
        window = ThreeRowWindow(width=3, default=0)
        _fill_rows(window, [[1, 2, 3], [4, 5, 6]])
        nb = window.neighborhood(0)
        assert nb.w == 4       # W falls back to the first sample of the row above
        assert nb.n == 4
        assert nb.nw == 4
        assert nb.ne == 5
        assert nb.nn == 1
        assert nb.nne == 2

    def test_last_column_clamps_ne(self):
        window = ThreeRowWindow(width=3, default=0)
        _fill_rows(window, [[1, 2, 3], [4, 5, 6]])
        window.push(7)
        window.push(8)
        nb = window.neighborhood(2)
        assert nb.ne == 6      # no column to the right: falls back to n
        assert nb.nne == 3

    def test_second_row_uses_first_row_for_nn(self):
        window = ThreeRowWindow(width=3, default=0)
        _fill_rows(window, [[1, 2, 3]])
        window.push(4)
        nb = window.neighborhood(1)
        assert nb.n == 2
        assert nb.nn == 2      # no row y-2 yet: falls back to n
        assert nb.nne == 3     # falls back to ne


class TestProtocolErrors:
    def test_push_overflow(self):
        window = ThreeRowWindow(width=2, default=0)
        window.push(1)
        window.push(2)
        with pytest.raises(ModelStateError):
            window.push(3)

    def test_end_row_too_early(self):
        window = ThreeRowWindow(width=3, default=0)
        window.push(1)
        with pytest.raises(ModelStateError):
            window.end_row()

    def test_neighborhood_requires_current_column(self):
        window = ThreeRowWindow(width=3, default=0)
        window.push(1)
        with pytest.raises(ModelStateError):
            window.neighborhood(0)  # column 0 already pushed; expected column 1

    def test_neighborhood_out_of_range(self):
        window = ThreeRowWindow(width=3, default=0)
        with pytest.raises(ModelStateError):
            window.neighborhood(3)

    def test_invalid_width(self):
        with pytest.raises(ModelStateError):
            ThreeRowWindow(width=0, default=0)

    def test_rows_completed_counter(self):
        window = ThreeRowWindow(width=2, default=0)
        _fill_rows(window, [[1, 2], [3, 4], [5, 6]])
        assert window.rows_completed == 3

    def test_memory_bytes(self):
        window = ThreeRowWindow(width=512, default=0)
        assert window.memory_bytes(bit_depth=8) == 3 * 512
        assert window.memory_bytes(bit_depth=16) == 3 * 512 * 2
