"""Unit tests for the pluggable engine registry.

The registry is the dispatch seam every front-end (codecs, functional
helpers, CLI, store) goes through; these tests pin its contract: built-ins
resolve lazily, third-party engines plug in and appear everywhere
``ENGINES`` is consulted, and bad registrations fail loudly.
"""

from __future__ import annotations

import pytest

from repro.core.config import CodecConfig
from repro.core.encoder import encode_payload
from repro.core.decoder import decode_payload
from repro.core.interface import (
    ENGINES,
    EngineBackend,
    engine_names,
    get_engine,
    register_engine,
    require_engine,
    unregister_engine,
)
from repro.exceptions import ConfigError
from repro.imaging.synthetic import generate_image


class TestBuiltins:
    def test_builtins_resolve(self):
        assert get_engine("reference").name == "reference"
        assert get_engine("fast").name == "fast"

    def test_require_engine_passes_names_through(self):
        assert require_engine("reference") == "reference"
        assert require_engine("fast") == "fast"

    def test_unknown_engine_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            require_engine("warp")
        with pytest.raises(ConfigError, match="reference"):
            get_engine("warp")  # the error names the known engines

    def test_engines_view_contains_builtins(self):
        assert "reference" in ENGINES
        assert "fast" in ENGINES
        assert list(ENGINES)[:2] == ["reference", "fast"]
        assert len(ENGINES) >= 2


class _UpperCaseEngine(EngineBackend):
    """A trivial third-party engine: delegates to the reference backend."""

    name = "thirdparty"

    def encode_payload(self, image, config):
        return get_engine("reference").encode_payload(image, config)

    def decode_payload(self, payload, width, height, config):
        return get_engine("reference").decode_payload(payload, width, height, config)


class TestRegistration:
    @pytest.fixture(autouse=True)
    def _cleanup(self):
        yield
        unregister_engine("thirdparty")

    def test_registered_engine_is_dispatchable_everywhere(self):
        register_engine(_UpperCaseEngine())
        assert "thirdparty" in ENGINES
        assert "thirdparty" in engine_names()
        image = generate_image("lena", size=16)
        config = CodecConfig.hardware()
        payload, _ = encode_payload(image, config, engine="thirdparty")
        reference, _ = encode_payload(image, config, engine="reference")
        assert payload == reference
        assert (
            decode_payload(payload, 16, 16, config, engine="thirdparty")
            == image.pixels()
        )

    def test_codec_front_ends_accept_registered_engines(self):
        from repro.core.codec import ProposedCodec
        from repro.parallel.codec import ParallelCodec
        from repro.parallel.executor import SerialExecutor

        register_engine(_UpperCaseEngine())
        image = generate_image("boat", size=16)
        baseline = ProposedCodec().encode(image)
        assert ProposedCodec(engine="thirdparty").encode(image) == baseline
        parallel = ParallelCodec(
            cores=2, executor=SerialExecutor(), engine="thirdparty"
        )
        assert parallel.decode(parallel.encode(image)) == image

    def test_duplicate_registration_fails_loudly(self):
        register_engine(_UpperCaseEngine())
        with pytest.raises(ConfigError, match="already registered"):
            register_engine(_UpperCaseEngine())
        register_engine(_UpperCaseEngine(), replace=True)  # explicit shadowing ok

    def test_nameless_backend_rejected(self):
        class Nameless(_UpperCaseEngine):
            name = ""

        with pytest.raises(ConfigError):
            register_engine(Nameless())

    def test_unregister_removes_third_party_engines(self):
        register_engine(_UpperCaseEngine())
        unregister_engine("thirdparty")
        assert "thirdparty" not in ENGINES
        with pytest.raises(ConfigError):
            get_engine("thirdparty")

    def test_builtins_reregister_after_unregister(self):
        unregister_engine("fast")
        assert get_engine("fast").name == "fast"  # lazy re-import restores it
