"""Tests for the error remapping (fold / unfold and modulo reduction)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import fold_signed, map_error, unfold_signed, unmap_error
from repro.exceptions import ModelStateError


class TestFolding:
    def test_fold_interleaves_signs(self):
        assert fold_signed(0, 8) == 0
        assert fold_signed(-1, 8) == 1
        assert fold_signed(1, 8) == 2
        assert fold_signed(-2, 8) == 3
        assert fold_signed(2, 8) == 4

    def test_fold_extremes(self):
        assert fold_signed(127, 8) == 254
        assert fold_signed(-128, 8) == 255

    def test_fold_range_checked(self):
        with pytest.raises(ModelStateError):
            fold_signed(128, 8)
        with pytest.raises(ModelStateError):
            fold_signed(-129, 8)

    def test_unfold_range_checked(self):
        with pytest.raises(ModelStateError):
            unfold_signed(256, 8)
        with pytest.raises(ModelStateError):
            unfold_signed(-1, 8)

    def test_fold_unfold_exhaustive_8bit(self):
        for error in range(-128, 128):
            assert unfold_signed(fold_signed(error, 8), 8) == error

    def test_unfold_fold_exhaustive_8bit(self):
        for code in range(256):
            assert fold_signed(unfold_signed(code, 8), 8) == code

    @given(st.integers(min_value=1, max_value=16), st.data())
    @settings(max_examples=100, deadline=None)
    def test_fold_is_bijection_for_any_depth(self, bit_depth, data):
        half = 1 << (bit_depth - 1)
        error = data.draw(st.integers(min_value=-half, max_value=half - 1))
        code = fold_signed(error, bit_depth)
        assert 0 <= code < (1 << bit_depth)
        assert unfold_signed(code, bit_depth) == error


class TestMapUnmap:
    def test_exact_prediction_maps_to_zero(self):
        symbol, wrapped = map_error(100, 100, 8)
        assert symbol == 0
        assert wrapped == 0

    def test_small_positive_error(self):
        symbol, wrapped = map_error(103, 100, 8)
        assert wrapped == 3
        assert symbol == 6

    def test_small_negative_error(self):
        symbol, wrapped = map_error(97, 100, 8)
        assert wrapped == -3
        assert symbol == 5

    def test_wraparound_error_uses_short_path(self):
        # Actual 255, predicted 0: the direct error +255 wraps to -1.
        symbol, wrapped = map_error(255, 0, 8)
        assert wrapped == -1
        assert symbol == 1

    def test_unmap_reverses_map_exhaustively(self):
        for predicted in (0, 1, 127, 128, 254, 255):
            for actual in range(256):
                symbol, wrapped = map_error(actual, predicted, 8)
                recovered, wrapped_back = unmap_error(symbol, predicted, 8)
                assert recovered == actual
                assert wrapped_back == wrapped

    def test_out_of_range_inputs_rejected(self):
        with pytest.raises(ModelStateError):
            map_error(256, 0, 8)
        with pytest.raises(ModelStateError):
            map_error(0, 256, 8)
        with pytest.raises(ModelStateError):
            unmap_error(0, 300, 8)

    @given(
        st.integers(min_value=1, max_value=12),
        st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_property_any_depth(self, bit_depth, data):
        max_value = (1 << bit_depth) - 1
        actual = data.draw(st.integers(min_value=0, max_value=max_value))
        predicted = data.draw(st.integers(min_value=0, max_value=max_value))
        symbol, wrapped = map_error(actual, predicted, bit_depth)
        assert 0 <= symbol <= max_value
        recovered, wrapped_back = unmap_error(symbol, predicted, bit_depth)
        assert recovered == actual
        assert wrapped_back == wrapped
