"""Tests for the codec configuration."""

import pytest

from repro.core.config import DEFAULT_ENERGY_THRESHOLDS, CodecConfig
from repro.exceptions import ConfigError


class TestDefaults:
    def test_paper_configuration(self):
        config = CodecConfig()
        assert config.bit_depth == 8
        assert config.count_bits == 14
        assert config.compound_contexts == 512
        assert config.texture_patterns == 64
        assert config.energy_levels == 8
        assert config.energy_index_bits == 3
        assert config.bias_count_max == 31
        assert config.bias_dividend_max == 1023
        assert config.use_lut_division is True

    def test_alphabet_and_max_sample(self):
        config = CodecConfig(bit_depth=8)
        assert config.alphabet_size == 256
        assert config.max_sample == 255

    def test_hardware_preset_is_default(self):
        assert CodecConfig.hardware() == CodecConfig()

    def test_reference_preset_disables_approximations(self):
        config = CodecConfig.reference()
        assert config.use_lut_division is False
        assert config.bias_count_bits > CodecConfig().bias_count_bits

    def test_presets_accept_overrides(self):
        config = CodecConfig.hardware(count_bits=10)
        assert config.count_bits == 10
        reference = CodecConfig.reference(count_bits=12)
        assert reference.count_bits == 12 and reference.use_lut_division is False

    def test_with_count_bits(self):
        config = CodecConfig().with_count_bits(16)
        assert config.count_bits == 16
        assert CodecConfig().count_bits == 14  # original unchanged

    def test_default_thresholds_are_sorted(self):
        assert list(DEFAULT_ENERGY_THRESHOLDS) == sorted(DEFAULT_ENERGY_THRESHOLDS)
        assert len(DEFAULT_ENERGY_THRESHOLDS) == 7


class TestValidation:
    def test_bad_bit_depth(self):
        with pytest.raises(ConfigError):
            CodecConfig(bit_depth=0)
        with pytest.raises(ConfigError):
            CodecConfig(bit_depth=20)

    def test_bad_count_bits(self):
        with pytest.raises(ConfigError):
            CodecConfig(count_bits=1)
        with pytest.raises(ConfigError):
            CodecConfig(count_bits=31)

    def test_bad_texture_bits(self):
        with pytest.raises(ConfigError):
            CodecConfig(texture_bits=0)
        with pytest.raises(ConfigError):
            CodecConfig(texture_bits=9)

    def test_energy_levels_must_be_power_of_two(self):
        with pytest.raises(ConfigError):
            CodecConfig(energy_levels=6, energy_thresholds=(1, 2, 3, 4, 5))

    def test_threshold_count_must_match_levels(self):
        with pytest.raises(ConfigError):
            CodecConfig(energy_levels=8, energy_thresholds=(1, 2, 3))

    def test_thresholds_must_be_sorted(self):
        with pytest.raises(ConfigError):
            CodecConfig(energy_thresholds=(5, 3, 25, 42, 60, 85, 140))

    def test_gap_threshold_ordering(self):
        with pytest.raises(ConfigError):
            CodecConfig(gap_sharp_threshold=10, gap_strong_threshold=32, gap_weak_threshold=8)

    def test_dividend_bits_bounded_by_sum_bits(self):
        with pytest.raises(ConfigError):
            CodecConfig(bias_sum_magnitude_bits=10, bias_dividend_bits=12)

    def test_estimator_increment_positive(self):
        with pytest.raises(ConfigError):
            CodecConfig(estimator_increment=0)

    def test_count_bits_must_fit_coder_precision(self):
        with pytest.raises(ConfigError):
            CodecConfig(count_bits=22, coder_precision=16)

    def test_smaller_energy_quantiser_allowed(self):
        config = CodecConfig(energy_levels=4, energy_thresholds=(15, 42, 85))
        assert config.compound_contexts == 64 * 4
        assert config.energy_index_bits == 2
