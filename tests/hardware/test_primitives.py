"""Tests for the RTL primitive cost library."""

import pytest

from repro.exceptions import HardwareModelError
from repro.hardware.device import VIRTEX4_LX60
from repro.hardware.primitives import PrimitiveLibrary, ResourceCount


@pytest.fixture()
def library():
    return PrimitiveLibrary(VIRTEX4_LX60)


class TestResourceCount:
    def test_addition(self):
        total = ResourceCount(luts=2, ffs=3) + ResourceCount(luts=5, ffs=7, brams=1)
        assert (total.luts, total.ffs, total.brams) == (7, 10, 1)

    def test_scaling(self):
        scaled = ResourceCount(luts=3, ffs=1).scaled(4)
        assert (scaled.luts, scaled.ffs) == (12, 4)

    def test_negative_scale_rejected(self):
        with pytest.raises(HardwareModelError):
            ResourceCount(luts=1).scaled(-1)


class TestArithmeticPrimitives:
    def test_adder_costs_one_lut_per_bit(self, library):
        assert library.adder(8).resources.luts == 8
        assert library.adder(13).resources.luts == 13

    def test_adder_delay_grows_with_width(self, library):
        assert library.adder(32).delay_ns > library.adder(8).delay_ns

    def test_absolute_difference_costs_more_than_adder(self, library):
        assert library.absolute_difference(8).resources.luts > library.adder(8).resources.luts

    def test_comparator_cheaper_than_adder(self, library):
        assert library.comparator(8).resources.luts <= library.adder(8).resources.luts

    def test_multiplier_cost_is_product_of_widths(self, library):
        assert library.multiplier(8, 8).resources.luts == 64

    def test_invalid_width_rejected(self, library):
        with pytest.raises(HardwareModelError):
            library.adder(0)
        with pytest.raises(HardwareModelError):
            library.comparator(-3)


class TestSteeringPrimitives:
    def test_mux2_one_lut_per_bit(self, library):
        assert library.mux2(16).resources.luts == 16

    def test_mux_n_grows_with_inputs(self, library):
        assert library.mux_n(8, 8).resources.luts > library.mux_n(8, 2).resources.luts

    def test_mux_needs_two_inputs(self, library):
        with pytest.raises(HardwareModelError):
            library.mux_n(8, 1)

    def test_barrel_shifter_cost(self, library):
        assert library.barrel_shifter(32, 5).resources.luts == 160
        with pytest.raises(HardwareModelError):
            library.barrel_shifter(8, 0)


class TestStoragePrimitives:
    def test_register_is_ff_only(self, library):
        register = library.register(24)
        assert register.resources.ffs == 24
        assert register.resources.luts == 0

    def test_counter_combines_adder_and_register(self, library):
        counter = library.counter(9)
        assert counter.resources.ffs == 9
        assert counter.resources.luts == 9

    def test_distributed_rom_packing(self, library):
        assert library.distributed_rom(16).resources.luts == 1
        assert library.distributed_rom(17).resources.luts == 2
        assert library.distributed_rom(0).resources.luts == 0

    def test_block_ram_sizing(self, library):
        assert library.block_ram(0).resources.brams == 0
        assert library.block_ram(18 * 1024).resources.brams == 1
        assert library.block_ram(18 * 1024 + 1).resources.brams == 2

    def test_io_pins(self, library):
        assert library.io_pins(12).resources.iobs == 12
        with pytest.raises(HardwareModelError):
            library.io_pins(-1)
