"""Tests for the architectural blocks and the Table 2 structure."""

import pytest

from repro.core.config import CodecConfig
from repro.hardware.blocks import (
    PAPER_TABLE2,
    ModelingBlock,
    ProbabilityEstimatorBlock,
    default_blocks,
)
from repro.hardware.resources import summarize_blocks


class TestBlockComposition:
    def test_default_blocks_are_the_three_of_table2(self):
        names = [block.name for block in default_blocks()]
        assert names == ["modeling", "probability_estimator", "arithmetic_coder"]
        assert set(names) == set(PAPER_TABLE2)

    def test_modeling_block_has_memories(self):
        block = ModelingBlock()
        assert "line-buffer" in block.memories_bits
        assert "context-statistics" in block.memories_bits
        assert "division-rom" in block.memories_bits

    def test_modeling_without_lut_division_drops_the_rom(self):
        block = ModelingBlock(config=CodecConfig.hardware(use_lut_division=False))
        assert "division-rom" not in block.memories_bits

    def test_modeling_memory_tracks_the_paper(self):
        block = ModelingBlock(image_width=512)
        assert 3300 <= block.memory_bytes() <= 4200  # paper: 3.7 KB

    def test_estimator_memory_tracks_the_paper(self):
        block = ProbabilityEstimatorBlock()
        assert 3000 <= block.memory_bytes() <= 4608  # paper: 4 KB

    def test_estimator_memory_scales_with_count_bits(self):
        narrow = ProbabilityEstimatorBlock(config=CodecConfig.hardware(count_bits=10))
        wide = ProbabilityEstimatorBlock(config=CodecConfig.hardware(count_bits=16))
        assert narrow.memory_bytes() < wide.memory_bytes()

    def test_line_buffer_scales_with_image_width(self):
        narrow = ModelingBlock(image_width=256)
        wide = ModelingBlock(image_width=1024)
        assert narrow.memory_bytes() < wide.memory_bytes()

    def test_resources_are_positive(self):
        for block in default_blocks():
            resources = block.resources()
            assert resources.luts > 0
            assert resources.ffs > 0
            assert block.slices() > 0
            assert block.critical_path_ns() > 0

    def test_every_block_has_io_and_a_clock(self):
        for block in default_blocks():
            assert block.iob_count > 0
            assert block.gclk_count == 1


class TestTable2Structure:
    """The analytical model must reproduce the *structure* of Table 2."""

    @pytest.fixture(scope="class")
    def summary(self):
        return summarize_blocks(default_blocks())

    def test_arithmetic_coder_is_the_largest_block(self, summary):
        coder = summary.block("arithmetic_coder")
        assert coder.slices > summary.block("modeling").slices
        assert coder.slices > summary.block("probability_estimator").slices
        assert coder.lut4 > summary.block("modeling").lut4

    def test_probability_estimator_is_the_smallest_block(self, summary):
        estimator = summary.block("probability_estimator")
        assert estimator.slices < summary.block("modeling").slices

    def test_estimates_within_a_factor_of_two_of_the_paper(self, summary):
        for name, published in PAPER_TABLE2.items():
            estimated = summary.block(name)
            assert published["slices"] / 2 <= estimated.slices <= published["slices"] * 2, name
            assert published["lut4"] / 2 <= estimated.lut4 <= published["lut4"] * 2, name

    def test_modeling_iob_count_matches_paper(self, summary):
        assert summary.block("modeling").iobs == PAPER_TABLE2["modeling"]["iobs"]

    def test_design_fits_the_target_device(self, summary):
        assert summary.slice_utilisation_percent() < 50.0

    def test_totals_sum_blocks(self, summary):
        totals = summary.totals()
        assert totals.slices == sum(b.slices for b in summary.blocks)
        assert totals.lut4 == sum(b.lut4 for b in summary.blocks)

    def test_comparison_with_paper_structure(self, summary):
        comparison = summary.comparison_with_paper()
        assert set(comparison) == set(PAPER_TABLE2)
        for name in comparison:
            assert comparison[name]["paper"]["slices"] == PAPER_TABLE2[name]["slices"]
            assert comparison[name]["estimated"]["slices"] == summary.block(name).slices

    def test_format_table_lists_every_metric(self, summary):
        text = summary.format_table()
        for label in ("Slices", "Flip-flops", "4 input LUT", "IOBs", "GCLK"):
            assert label in text

    def test_unknown_block_lookup_rejected(self, summary):
        with pytest.raises(KeyError):
            summary.block("dsp-farm")
