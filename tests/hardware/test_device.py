"""Tests for the FPGA device model."""

import pytest

from repro.exceptions import HardwareModelError
from repro.hardware.device import VIRTEX4_LX25, VIRTEX4_LX60


class TestGeometry:
    def test_virtex4_slice_layout(self):
        assert VIRTEX4_LX60.luts_per_slice == 2
        assert VIRTEX4_LX60.ffs_per_slice == 2
        assert VIRTEX4_LX60.lut_inputs == 4
        assert VIRTEX4_LX60.bram_kbits == 18

    def test_family_members_differ_in_capacity(self):
        assert VIRTEX4_LX60.total_slices > VIRTEX4_LX25.total_slices
        assert VIRTEX4_LX60.total_brams > VIRTEX4_LX25.total_brams


class TestSliceEstimation:
    def test_lut_bound_design(self):
        # 900 LUTs at 85% packing of 2 LUTs/slice -> ~529 slices.
        slices = VIRTEX4_LX60.slices_for(luts=900, ffs=100)
        assert 500 <= slices <= 560

    def test_ff_bound_design(self):
        assert VIRTEX4_LX60.slices_for(luts=10, ffs=400) > VIRTEX4_LX60.slices_for(luts=10, ffs=40)

    def test_minimum_one_slice(self):
        assert VIRTEX4_LX60.slices_for(luts=0, ffs=0) == 1

    def test_packing_efficiency_bounds(self):
        with pytest.raises(HardwareModelError):
            VIRTEX4_LX60.slices_for(10, 10, packing_efficiency=0.0)
        with pytest.raises(HardwareModelError):
            VIRTEX4_LX60.slices_for(10, 10, packing_efficiency=1.5)

    def test_negative_resources_rejected(self):
        with pytest.raises(HardwareModelError):
            VIRTEX4_LX60.slices_for(-1, 0)


class TestBramEstimation:
    def test_exact_fit(self):
        assert VIRTEX4_LX60.brams_for(18 * 1024) == 1

    def test_rounding_up(self):
        assert VIRTEX4_LX60.brams_for(18 * 1024 + 1) == 2

    def test_zero(self):
        assert VIRTEX4_LX60.brams_for(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(HardwareModelError):
            VIRTEX4_LX60.brams_for(-8)
