"""Tests for the multi-core scaling model (Section V's scale-up remark)."""

import pytest

from repro.exceptions import HardwareModelError
from repro.hardware.blocks import default_blocks
from repro.hardware.multicore import MulticoreModel, measure_stripe_penalty, split_into_stripes
from repro.hardware.resources import summarize_blocks
from repro.imaging.synthetic import generate_image


@pytest.fixture(scope="module")
def model():
    return MulticoreModel(summarize_blocks(default_blocks()), clock_mhz=123.0)


class TestScalingModel:
    def test_throughput_scales_with_cores(self, model):
        points = model.scaling(512, 512, [1, 2, 4, 8])
        rates = [p.aggregate_megabits_per_second for p in points]
        assert rates == sorted(rates)
        assert points[-1].speedup > 6.0  # 8 cores must give most of 8x

    def test_single_core_matches_baseline(self, model):
        point = model.scaling(512, 512, [1])[0]
        assert point.speedup == pytest.approx(1.0, abs=0.02)
        assert abs(point.aggregate_megabits_per_second - 123.0) < 3.0

    def test_area_scales_linearly(self, model):
        one, four = model.scaling(512, 512, [1, 4])
        assert four.total_slices == 4 * one.total_slices
        assert four.total_brams == 4 * one.total_brams

    def test_uneven_stripes_bound_the_speedup(self, model):
        # 100 rows over 3 cores -> stripes of 34 rows: speedup < 3.
        point = model.scaling(64, 100, [3])[0]
        assert point.stripe_rows == 34
        assert point.speedup < 3.0

    def test_invalid_inputs(self, model):
        with pytest.raises(HardwareModelError):
            model.scaling(0, 10, [1])
        with pytest.raises(HardwareModelError):
            model.scaling(10, 10, [0])
        with pytest.raises(HardwareModelError):
            model.scaling(10, 4, [8])

    def test_format_table(self, model):
        text = model.format_table(model.scaling(512, 512, [1, 2]))
        assert "Mbit/s" in text and "slices" in text


class TestStripePartitioning:
    def test_stripes_cover_the_image(self):
        image = generate_image("boat", size=48)
        stripes = split_into_stripes(image, 3)
        assert sum(s.height for s in stripes) == image.height
        assert all(s.width == image.width for s in stripes)
        reassembled = [row for stripe in stripes for y in range(stripe.height) for row in [stripe.row(y)]]
        assert reassembled == [image.row(y) for y in range(image.height)]

    def test_remainder_rows_go_to_the_first_stripes(self):
        # Balanced partition (shared with repro.parallel): heights differ by
        # at most one row, the taller stripes coming first.
        image = generate_image("boat", size=50)
        stripes = split_into_stripes(image, 4)
        assert [s.height for s in stripes] == [13, 13, 12, 12]

    def test_invalid_core_counts(self):
        image = generate_image("boat", size=32)
        with pytest.raises(HardwareModelError):
            split_into_stripes(image, 0)
        with pytest.raises(HardwareModelError):
            split_into_stripes(image, 64)


class TestStripePenalty:
    def test_penalty_is_small_and_positive(self):
        image = generate_image("lena", size=64)
        result = measure_stripe_penalty(image, cores=4)
        # Independent adaptive state costs something, but not much.
        assert -0.05 <= result["penalty_bpp"] < 1.0
        assert result["multi_core_bpp"] >= result["single_core_bpp"] - 0.05

    def test_more_cores_cost_more(self):
        image = generate_image("peppers", size=64)
        two = measure_stripe_penalty(image, cores=2)["multi_core_bpp"]
        eight = measure_stripe_penalty(image, cores=8)["multi_core_bpp"]
        assert eight >= two - 0.02


class TestEstimateScaling:
    def test_points_carry_predicted_penalty(self):
        from repro.hardware.multicore import estimate_scaling

        points = estimate_scaling(128, 128, [1, 2, 4])
        assert points[0].predicted_penalty_bpp == 0.0
        penalties = [p.predicted_penalty_bpp for p in points]
        assert penalties == sorted(penalties)
        assert penalties[-1] > 0.0

    def test_predict_penalty_clamps_to_height(self):
        from repro.hardware.multicore import predict_stripe_penalty_bpp

        assert predict_stripe_penalty_bpp(64, 4, 100) == predict_stripe_penalty_bpp(64, 4, 4)

    def test_predict_penalty_rejects_bad_input(self):
        from repro.hardware.multicore import predict_stripe_penalty_bpp

        with pytest.raises(HardwareModelError):
            predict_stripe_penalty_bpp(0, 8, 2)
        with pytest.raises(HardwareModelError):
            predict_stripe_penalty_bpp(8, 8, 0)


class TestValidateScaling:
    def test_prediction_tracks_measurement(self):
        from repro.hardware.multicore import validate_scaling

        image = generate_image("lena", size=64)
        rows = validate_scaling(image, [1, 2, 4])
        assert [row["cores"] for row in rows] == [1, 2, 4]
        # cores=1 still pays the (tiny) version-2 container overhead.
        assert 0.0 <= rows[0]["measured_penalty_bpp"] < 0.05
        for row in rows[1:]:
            # Model and measurement agree on the order of magnitude.
            assert row["measured_penalty_bpp"] < 3.0 * row["predicted_penalty_bpp"] + 0.02
            assert row["measured_penalty_bpp"] > 0.0

    def test_format_validation_table(self):
        from repro.hardware.multicore import format_validation_table, validate_scaling

        image = generate_image("boat", size=64)
        table = format_validation_table(validate_scaling(image, [1, 2]))
        lines = table.splitlines()
        assert lines[0].startswith("cores")
        assert len(lines) == 3
