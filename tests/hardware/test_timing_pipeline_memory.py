"""Tests for the timing model, the pipeline model and the memory inventory."""

import pytest

from repro.core.config import CodecConfig
from repro.core.encoder import encode_image_with_statistics
from repro.exceptions import HardwareModelError
from repro.hardware.blocks import default_blocks
from repro.hardware.memory import build_memory_inventory
from repro.hardware.pipeline import PipelineModel
from repro.hardware.timing import TimingModel
from repro.imaging.synthetic import generate_image


class TestTimingModel:
    def test_clock_in_plausible_band(self):
        report = TimingModel().analyse(default_blocks())
        # The paper achieves 123 MHz on a Virtex-4; an analytical estimate
        # should land in the same technology band (80-250 MHz).
        assert 80.0 <= report.clock_mhz <= 250.0

    def test_meets_helper(self):
        report = TimingModel().analyse(default_blocks())
        assert report.meets(50.0)
        assert not report.meets(1000.0)

    def test_per_block_delays_reported(self):
        report = TimingModel().analyse(default_blocks())
        assert set(report.per_block_ns) == {"modeling", "probability_estimator", "arithmetic_coder"}
        assert report.critical_path_ns == max(report.per_block_ns.values())

    def test_routing_margin_lowers_the_clock(self):
        blocks = default_blocks()
        tight = TimingModel(routing_margin=0.0).analyse(blocks)
        loose = TimingModel(routing_margin=0.8).analyse(blocks)
        assert loose.clock_mhz < tight.clock_mhz

    def test_empty_block_list_rejected(self):
        with pytest.raises(HardwareModelError):
            TimingModel().analyse([])

    def test_negative_margin_rejected(self):
        with pytest.raises(HardwareModelError):
            TimingModel(routing_margin=-0.1)


class TestPipelineModel:
    def test_paper_throughput_reproduced(self):
        """123 MHz with an 8-bit alphabet sustains ~123 Mbit/s of input data."""
        report = PipelineModel(clock_mhz=123.0).analyse(512, 512, escape_rate=0.0)
        assert abs(report.megabits_per_second - 123.0) < 2.0
        assert report.bottleneck == "coder"

    def test_escapes_reduce_throughput(self):
        model = PipelineModel(clock_mhz=123.0)
        clean = model.analyse(256, 256, escape_rate=0.0)
        noisy = model.analyse(256, 256, escape_rate=0.05)
        assert noisy.megabits_per_second < clean.megabits_per_second

    def test_pipelining_ablation(self):
        pipelined = PipelineModel(clock_mhz=123.0, pipelined=True).analyse(256, 256)
        serial = PipelineModel(clock_mhz=123.0, pipelined=False).analyse(256, 256)
        assert serial.megabits_per_second < pipelined.megabits_per_second
        assert serial.cycles_per_pixel > pipelined.cycles_per_pixel

    def test_statistics_driven_analysis(self):
        image = generate_image("lena", size=32)
        _, stats = encode_image_with_statistics(image, CodecConfig.hardware())
        report = PipelineModel(clock_mhz=123.0).analyse_statistics(32, 32, stats)
        assert report.pixel_count == 32 * 32
        assert report.megabits_per_second > 0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(HardwareModelError):
            PipelineModel(clock_mhz=0.0)
        model = PipelineModel()
        with pytest.raises(HardwareModelError):
            model.analyse(0, 10)
        with pytest.raises(HardwareModelError):
            model.analyse(10, 10, escape_rate=1.5)

    def test_format_summary_mentions_clock_and_rate(self):
        text = PipelineModel(clock_mhz=123.0).analyse(64, 64).format_summary()
        assert "123.0 MHz" in text
        assert "Mbit/s" in text


class TestMemoryInventory:
    def test_paper_budgets_reproduced(self):
        inventory = build_memory_inventory(image_width=512)
        assert abs(inventory.modeling_bytes - 3.7 * 1024) < 150
        assert abs(inventory.estimator_bytes - 4 * 1024) < 600

    def test_division_rom_follows_configuration(self):
        with_rom = build_memory_inventory(CodecConfig.hardware())
        without_rom = build_memory_inventory(CodecConfig.hardware(use_lut_division=False))
        assert with_rom.division_rom_bytes == 1024
        assert without_rom.division_rom_bytes == 0

    def test_line_buffer_scales_with_width(self):
        assert (
            build_memory_inventory(image_width=1024).line_buffer_bytes
            == 2 * build_memory_inventory(image_width=512).line_buffer_bytes
        )

    def test_estimator_scales_with_count_bits(self):
        narrow = build_memory_inventory(CodecConfig.hardware(count_bits=10))
        wide = build_memory_inventory(CodecConfig.hardware(count_bits=16))
        assert narrow.estimator_bytes < wide.estimator_bytes

    def test_as_dict_and_format(self):
        inventory = build_memory_inventory()
        data = inventory.as_dict()
        assert data["total_bytes"] == inventory.total_bytes
        assert "KB" in inventory.format_summary()
