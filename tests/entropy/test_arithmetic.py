"""Tests for the multi-symbol arithmetic coder."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy.arithmetic import ArithmeticDecoder, ArithmeticEncoder
from repro.entropy.models import AdaptiveModel
from repro.exceptions import ModelStateError
from repro.utils.bitio import BitReader, BitWriter


def _roundtrip_with_model(symbols, alphabet_size, increment=16):
    """Code a symbol stream against an adaptive model, then decode it back."""
    writer = BitWriter()
    encoder = ArithmeticEncoder(writer)
    model = AdaptiveModel(alphabet_size, increment=increment)
    for symbol in symbols:
        low, high, total = model.interval(symbol)
        encoder.encode(low, high, total)
        model.update(symbol)
    encoder.finish()

    decoder = ArithmeticDecoder(BitReader(writer.getvalue()))
    model = AdaptiveModel(alphabet_size, increment=increment)
    decoded = []
    for _ in symbols:
        target = decoder.decode_target(model.total)
        symbol = model.symbol_from_target(target)
        low, high, total = model.interval(symbol)
        decoder.consume(low, high, total)
        model.update(symbol)
        decoded.append(symbol)
    return decoded, len(writer.getvalue())


class TestRoundtrip:
    def test_small_alphabet(self):
        symbols = [0, 1, 2, 3, 2, 1, 0, 0, 0, 3] * 20
        decoded, _ = _roundtrip_with_model(symbols, 4)
        assert decoded == symbols

    def test_byte_alphabet(self):
        rng = random.Random(3)
        symbols = [rng.randint(0, 255) for _ in range(400)]
        decoded, _ = _roundtrip_with_model(symbols, 256)
        assert decoded == symbols

    def test_skewed_source_compresses(self):
        symbols = [7] * 3000 + [1, 2, 3] * 5
        decoded, size = _roundtrip_with_model(symbols, 16)
        assert decoded == symbols
        assert size < len(symbols) // 4

    def test_single_symbol_stream(self):
        decoded, _ = _roundtrip_with_model([5], 8)
        assert decoded == [5]


class TestValidation:
    def test_invalid_cumulative_range(self):
        encoder = ArithmeticEncoder(BitWriter())
        with pytest.raises(ModelStateError):
            encoder.encode(5, 5, 10)

    def test_range_beyond_total(self):
        encoder = ArithmeticEncoder(BitWriter())
        with pytest.raises(ModelStateError):
            encoder.encode(0, 11, 10)

    def test_total_too_large(self):
        encoder = ArithmeticEncoder(BitWriter(), precision=16)
        with pytest.raises(ModelStateError):
            encoder.encode(0, 1, 1 << 15)

    def test_double_finish(self):
        encoder = ArithmeticEncoder(BitWriter())
        encoder.finish()
        with pytest.raises(ModelStateError):
            encoder.finish()

    def test_encode_after_finish(self):
        encoder = ArithmeticEncoder(BitWriter())
        encoder.finish()
        with pytest.raises(ModelStateError):
            encoder.encode(0, 1, 2)

    def test_decoder_total_validation(self):
        decoder = ArithmeticDecoder(BitReader(b"\x00\x00\x00\x00"), precision=16)
        with pytest.raises(ModelStateError):
            decoder.decode_target(1 << 15)


class TestProperties:
    @given(
        st.integers(min_value=2, max_value=64),
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_streams_roundtrip(self, alphabet, raw_symbols):
        symbols = [s % alphabet for s in raw_symbols]
        decoded, _ = _roundtrip_with_model(symbols, alphabet)
        assert decoded == symbols
