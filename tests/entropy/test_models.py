"""Tests for the adaptive frequency models."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy.models import AdaptiveByteModel, AdaptiveModel
from repro.exceptions import ModelStateError


class TestAdaptiveModel:
    def test_initial_uniform_distribution(self):
        model = AdaptiveModel(8)
        assert model.total == 8
        assert all(model.count(s) == 1 for s in range(8))

    def test_interval_is_consistent_with_counts(self):
        model = AdaptiveModel(4, increment=2)
        model.update(2)
        low, high, total = model.interval(2)
        assert high - low == model.count(2)
        assert total == model.total

    def test_intervals_partition_the_total(self):
        model = AdaptiveModel(16, increment=5)
        rng = random.Random(0)
        for _ in range(200):
            model.update(rng.randint(0, 15))
        edges = [model.interval(s) for s in range(16)]
        assert edges[0][0] == 0
        for previous, current in zip(edges, edges[1:]):
            assert previous[1] == current[0]
        assert edges[-1][1] == model.total

    def test_symbol_from_target_inverts_interval(self):
        model = AdaptiveModel(32, increment=7)
        rng = random.Random(1)
        for _ in range(300):
            model.update(rng.randint(0, 31))
        for symbol in range(32):
            low, high, _ = model.interval(symbol)
            for target in (low, high - 1):
                assert model.symbol_from_target(target) == symbol

    def test_rescaling_bounds_total(self):
        model = AdaptiveModel(4, max_total=64, increment=16)
        for _ in range(1000):
            model.update(1)
            assert model.total <= 64

    def test_rescale_keeps_counts_positive(self):
        model = AdaptiveModel(8, max_total=64, increment=16)
        for _ in range(500):
            model.update(3)
        assert all(model.count(s) >= 1 for s in range(8))

    def test_invalid_symbol_rejected(self):
        model = AdaptiveModel(4)
        with pytest.raises(ModelStateError):
            model.update(4)
        with pytest.raises(ModelStateError):
            model.interval(-1)
        with pytest.raises(ModelStateError):
            model.symbol_from_target(model.total)

    def test_invalid_construction(self):
        with pytest.raises(ModelStateError):
            AdaptiveModel(1)
        with pytest.raises(ModelStateError):
            AdaptiveModel(256, max_total=100)
        with pytest.raises(ModelStateError):
            AdaptiveModel(4, increment=0)

    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_total_always_equals_sum_of_counts(self, symbols):
        model = AdaptiveModel(16, max_total=2048, increment=9)
        for symbol in symbols:
            model.update(symbol)
            assert model.total == sum(model.count(s) for s in range(16))


class TestAdaptiveByteModel:
    def test_order_zero_uses_single_model(self):
        model = AdaptiveByteModel(order=0)
        model.observe(65)
        model.observe(66)
        assert model.context_count == 0

    def test_contexts_allocated_lazily(self):
        model = AdaptiveByteModel(order=2)
        for byte in b"abcabcabc":
            model.observe(byte)
        assert model.context_count > 0

    def test_context_bound_respected(self):
        model = AdaptiveByteModel(order=1, max_contexts=4)
        for byte in bytes(range(100)):
            model.observe(byte)
        assert model.context_count <= 4

    def test_conditioning_prefers_seen_continuations(self):
        model = AdaptiveByteModel(order=1, increment=32)
        for _ in range(50):
            model.observe(ord("q"))
            model.observe(ord("u"))
        model.reset_history()
        model.observe(ord("q"))
        conditioned = model.current_model()
        assert conditioned.count(ord("u")) > conditioned.count(ord("z"))

    def test_invalid_byte_rejected(self):
        model = AdaptiveByteModel(order=1)
        with pytest.raises(ModelStateError):
            model.observe(256)

    def test_invalid_order_rejected(self):
        with pytest.raises(ModelStateError):
            AdaptiveByteModel(order=-1)

    def test_reset_history(self):
        model = AdaptiveByteModel(order=2)
        model.observe(1)
        model.observe(2)
        model.reset_history()
        assert model.current_model() is model._order0
