"""Tests for the balanced frequency tree (the probability estimator core)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy.binary_arithmetic import BinaryArithmeticDecoder, BinaryArithmeticEncoder
from repro.entropy.freqtree import FrequencyTree, StaticTree
from repro.exceptions import ModelStateError
from repro.utils.bitio import BitReader, BitWriter


class TestConstruction:
    def test_initial_counts_are_uniform(self):
        tree = FrequencyTree(alphabet_size=256, count_bits=14)
        assert all(tree.count(s) == 1 for s in range(256))
        assert tree.count(tree.escape_index) == 1
        assert tree.total == 257

    def test_tree_without_escape(self):
        tree = FrequencyTree(alphabet_size=8, with_escape=False)
        assert tree.escape_index is None
        assert tree.total == 8

    def test_leaves_padded_to_power_of_two(self):
        tree = FrequencyTree(alphabet_size=256, with_escape=True)
        assert tree.num_leaves == 512
        assert tree.depth == 9

    def test_small_alphabet_depth(self):
        tree = FrequencyTree(alphabet_size=4, with_escape=False)
        assert tree.num_leaves == 4
        assert tree.depth == 2

    def test_invalid_alphabet(self):
        with pytest.raises(Exception):
            FrequencyTree(alphabet_size=1)

    def test_invalid_count_bits(self):
        with pytest.raises(Exception):
            FrequencyTree(alphabet_size=8, count_bits=1)


class TestInvariants:
    def _check_internal_sums(self, tree):
        counts = tree._counts
        for node in range(1, tree.num_leaves):
            assert counts[node] == counts[2 * node] + counts[2 * node + 1]

    def test_root_equals_sum_of_leaves_after_updates(self):
        tree = FrequencyTree(alphabet_size=16, count_bits=8, increment=3)
        rng = random.Random(1)
        for _ in range(500):
            tree.update(rng.randint(0, 15))
        assert tree.total == sum(tree.count(s) for s in range(16)) + tree.count(tree.escape_index)
        self._check_internal_sums(tree)

    def test_counts_never_exceed_maximum(self):
        tree = FrequencyTree(alphabet_size=4, count_bits=5, increment=1)
        for _ in range(500):
            tree.update(2)
            assert tree.count(2) <= tree.max_count

    def test_rescale_creates_zero_counts(self):
        tree = FrequencyTree(alphabet_size=8, count_bits=4, increment=1)
        # Symbol 0 gets hammered until the tree rescales; the never-seen
        # symbols (count 1) must drop to 0 - the escape-producing situation.
        rescaled = False
        for _ in range(40):
            rescaled |= tree.update(0)
        assert rescaled
        assert tree.rescale_count >= 1
        assert any(tree.count(s) == 0 for s in range(1, 8))

    def test_escape_leaf_pinned_after_rescale(self):
        tree = FrequencyTree(alphabet_size=8, count_bits=4, increment=1)
        for _ in range(100):
            tree.update(0)
        assert tree.count(tree.escape_index) >= 1

    def test_update_returns_rescale_flag(self):
        tree = FrequencyTree(alphabet_size=4, count_bits=3, increment=1)
        flags = [tree.update(1) for _ in range(20)]
        assert any(flags)

    def test_memory_bits_positive_and_scales_with_count_bits(self):
        small = FrequencyTree(alphabet_size=256, count_bits=10).memory_bits()
        large = FrequencyTree(alphabet_size=256, count_bits=16).memory_bits()
        assert 0 < small < large


class TestCoding:
    def _roundtrip(self, tree_args, symbols):
        encode_tree = FrequencyTree(**tree_args)
        writer = BitWriter()
        encoder = BinaryArithmeticEncoder(writer)
        for symbol in symbols:
            encode_tree.encode_symbol(encoder, symbol)
            encode_tree.update(symbol)
        encoder.finish()

        decode_tree = FrequencyTree(**tree_args)
        decoder = BinaryArithmeticDecoder(BitReader(writer.getvalue()))
        decoded = []
        for _ in symbols:
            symbol = decode_tree.decode_symbol(decoder)
            decode_tree.update(symbol)
            decoded.append(symbol)
        return decoded

    def test_roundtrip_small_alphabet(self):
        symbols = [0, 3, 3, 3, 1, 2, 0, 0, 3] * 30
        decoded = self._roundtrip(dict(alphabet_size=4, count_bits=8, with_escape=False), symbols)
        assert decoded == symbols

    def test_roundtrip_with_escape_leaf_present(self):
        rng = random.Random(9)
        symbols = [rng.randint(0, 255) for _ in range(300)]
        decoded = self._roundtrip(dict(alphabet_size=256, count_bits=14), symbols)
        assert decoded == symbols

    def test_adaptive_tree_compresses_skewed_source(self):
        tree = FrequencyTree(alphabet_size=256, count_bits=14, increment=16)
        writer = BitWriter()
        encoder = BinaryArithmeticEncoder(writer)
        for _ in range(2000):
            tree.encode_symbol(encoder, 42)
            tree.update(42)
        encoder.finish()
        # A constant source must compress far below 8 bits/symbol.
        assert len(writer.getvalue()) * 8 / 2000 < 0.5

    def test_encode_zero_count_symbol_rejected(self):
        tree = FrequencyTree(alphabet_size=8, count_bits=4, increment=1)
        for _ in range(100):
            tree.update(0)
        zero_symbols = [s for s in range(8) if tree.count(s) == 0]
        assert zero_symbols
        encoder = BinaryArithmeticEncoder(BitWriter())
        with pytest.raises(ModelStateError):
            tree.encode_symbol(encoder, zero_symbols[0])

    def test_decisions_match_tree_depth(self):
        tree = FrequencyTree(alphabet_size=256, count_bits=14)
        encoder = BinaryArithmeticEncoder(BitWriter())
        assert tree.encode_symbol(encoder, 17) == tree.depth

    def test_code_length_estimate_positive(self):
        tree = FrequencyTree(alphabet_size=16, count_bits=10)
        for _ in range(50):
            tree.update(3)
        assert 0 < tree.code_length_bits(3) < tree.code_length_bits(9)

    def test_symbol_out_of_range_rejected(self):
        tree = FrequencyTree(alphabet_size=8, count_bits=6)
        with pytest.raises(ModelStateError):
            tree.count(100)

    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=250))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, symbols):
        decoded = self._roundtrip(dict(alphabet_size=32, count_bits=9, increment=4), symbols)
        assert decoded == symbols


class TestStaticTree:
    def test_roundtrip(self):
        static = StaticTree(256)
        writer = BitWriter()
        encoder = BinaryArithmeticEncoder(writer)
        symbols = [0, 255, 128, 7, 200]
        for symbol in symbols:
            static.encode_symbol(encoder, symbol)
        encoder.finish()
        decoder = BinaryArithmeticDecoder(BitReader(writer.getvalue()))
        assert [static.decode_symbol(decoder) for _ in symbols] == symbols

    def test_cost_is_log2_alphabet(self):
        static = StaticTree(256)
        writer = BitWriter()
        encoder = BinaryArithmeticEncoder(writer)
        for symbol in range(0, 256, 17):
            static.encode_symbol(encoder, symbol)
        encoder.finish()
        symbols_coded = len(range(0, 256, 17))
        assert abs(len(writer.getvalue()) * 8 / symbols_coded - 8.0) < 0.7

    def test_out_of_range_symbol_rejected(self):
        static = StaticTree(16)
        with pytest.raises(ModelStateError):
            static.encode_symbol(BinaryArithmeticEncoder(BitWriter()), 16)
