"""Tests for the Golomb-Rice coders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy.golomb import (
    golomb_rice_code_length,
    golomb_rice_decode,
    golomb_rice_encode,
    limited_golomb_decode,
    limited_golomb_encode,
)
from repro.exceptions import BitstreamError
from repro.utils.bitio import BitReader, BitWriter


class TestPlainGolombRice:
    @pytest.mark.parametrize("value,k", [(0, 0), (1, 0), (5, 1), (100, 3), (1000, 5), (7, 7)])
    def test_single_value_roundtrip(self, value, k):
        writer = BitWriter()
        golomb_rice_encode(writer, value, k)
        assert golomb_rice_decode(BitReader(writer.getvalue()), k) == value

    def test_sequence_roundtrip(self):
        values = [0, 1, 2, 3, 10, 100, 31, 7, 0, 0, 255]
        writer = BitWriter()
        for v in values:
            golomb_rice_encode(writer, v, 2)
        reader = BitReader(writer.getvalue())
        assert [golomb_rice_decode(reader, 2) for _ in values] == values

    def test_code_length_matches_actual(self):
        for value in (0, 1, 5, 63, 64, 1000):
            for k in (0, 1, 3, 5):
                writer = BitWriter()
                golomb_rice_encode(writer, value, k)
                assert writer.bit_count == golomb_rice_code_length(value, k)

    def test_k_zero_is_unary(self):
        writer = BitWriter()
        golomb_rice_encode(writer, 4, 0)
        assert writer.bit_count == 5

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            golomb_rice_encode(BitWriter(), -1, 2)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            golomb_rice_encode(BitWriter(), 1, -2)
        with pytest.raises(ValueError):
            golomb_rice_decode(BitReader(b"\xff"), -1)

    def test_corrupt_unary_run_detected(self):
        # A stream of only zero bits never terminates its unary prefix.
        reader = BitReader(b"\x00" * 16)
        with pytest.raises(BitstreamError):
            golomb_rice_decode(reader, 0)

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=12))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, value, k):
        writer = BitWriter()
        golomb_rice_encode(writer, value, k)
        assert golomb_rice_decode(BitReader(writer.getvalue()), k) == value


class TestLimitedGolomb:
    LIMIT = 32
    QBPP = 8

    @pytest.mark.parametrize("value", [0, 1, 17, 200, 255])
    @pytest.mark.parametrize("k", [0, 2, 4, 7])
    def test_roundtrip(self, value, k):
        writer = BitWriter()
        limited_golomb_encode(writer, value, k, self.LIMIT, self.QBPP)
        decoded = limited_golomb_decode(BitReader(writer.getvalue()), k, self.LIMIT, self.QBPP)
        assert decoded == value

    def test_escape_path_used_for_large_quotients(self):
        # With k = 0 the quotient equals the value, so 200 >> limit threshold
        # and must use the escape encoding; the code length is bounded.
        writer = BitWriter()
        limited_golomb_encode(writer, 200, 0, self.LIMIT, self.QBPP)
        assert writer.bit_count <= self.LIMIT
        decoded = limited_golomb_decode(BitReader(writer.getvalue()), 0, self.LIMIT, self.QBPP)
        assert decoded == 200

    def test_code_length_never_exceeds_limit(self):
        for value in range(256):
            for k in (0, 1, 3, 6):
                writer = BitWriter()
                limited_golomb_encode(writer, value, k, self.LIMIT, self.QBPP)
                assert writer.bit_count <= self.LIMIT

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            limited_golomb_encode(BitWriter(), 3, 0, 8, 8)
        with pytest.raises(ValueError):
            limited_golomb_decode(BitReader(b"\x00"), 0, 8, 8)

    def test_sequence_roundtrip_mixed_parameters(self):
        values_and_k = [(0, 0), (255, 0), (3, 2), (90, 1), (255, 7), (1, 5)]
        writer = BitWriter()
        for value, k in values_and_k:
            limited_golomb_encode(writer, value, k, self.LIMIT, self.QBPP)
        reader = BitReader(writer.getvalue())
        for value, k in values_and_k:
            assert limited_golomb_decode(reader, k, self.LIMIT, self.QBPP) == value

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=7))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, value, k):
        writer = BitWriter()
        limited_golomb_encode(writer, value, k, self.LIMIT, self.QBPP)
        assert limited_golomb_decode(BitReader(writer.getvalue()), k, self.LIMIT, self.QBPP) == value
