"""Tests for the binary arithmetic coder."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy.binary_arithmetic import BinaryArithmeticDecoder, BinaryArithmeticEncoder
from repro.exceptions import ModelStateError
from repro.utils.bitio import BitReader, BitWriter


def _roundtrip(decisions):
    """Encode then decode a list of (bit, zero_count, total) decisions."""
    writer = BitWriter()
    encoder = BinaryArithmeticEncoder(writer)
    for bit, zero_count, total in decisions:
        encoder.encode_bit(bit, zero_count, total)
    encoder.finish()
    decoder = BinaryArithmeticDecoder(BitReader(writer.getvalue()))
    return [decoder.decode_bit(zero_count, total) for _, zero_count, total in decisions]


class TestRoundtrip:
    def test_uniform_probabilities(self):
        decisions = [(i % 2, 1, 2) for i in range(200)]
        assert _roundtrip(decisions) == [bit for bit, _, _ in decisions]

    def test_skewed_probabilities(self):
        decisions = [(0, 999, 1000)] * 50 + [(1, 999, 1000)] * 3 + [(0, 999, 1000)] * 50
        assert _roundtrip(decisions) == [bit for bit, _, _ in decisions]

    def test_alternating_models(self):
        decisions = []
        rng = random.Random(5)
        for _ in range(500):
            total = rng.randint(2, 4000)
            zero = rng.randint(1, total - 1)
            bit = rng.randint(0, 1)
            decisions.append((bit, zero, total))
        assert _roundtrip(decisions) == [bit for bit, _, _ in decisions]

    def test_empty_stream(self):
        writer = BitWriter()
        encoder = BinaryArithmeticEncoder(writer)
        encoder.finish()
        # Decoding nothing from the empty stream is fine; the decoder just
        # initialises its registers from phantom zero bits.
        BinaryArithmeticDecoder(BitReader(writer.getvalue()))

    def test_single_decision(self):
        assert _roundtrip([(1, 1, 3)]) == [1]

    def test_compression_of_skewed_source_beats_raw(self):
        # 2000 highly predictable bits should compress far below 2000 bits.
        decisions = [(0, 4000, 4096)] * 2000
        writer = BitWriter()
        encoder = BinaryArithmeticEncoder(writer)
        for bit, zero, total in decisions:
            encoder.encode_bit(bit, zero, total)
        encoder.finish()
        assert len(writer.getvalue()) * 8 < 400

    def test_code_length_close_to_entropy(self):
        import math

        p_zero = 0.9
        total = 1000
        zero = int(p_zero * total)
        rng = random.Random(11)
        bits = [0 if rng.random() < p_zero else 1 for _ in range(4000)]
        writer = BitWriter()
        encoder = BinaryArithmeticEncoder(writer)
        for bit in bits:
            encoder.encode_bit(bit, zero, total)
        encoder.finish()
        entropy = -(p_zero * math.log2(p_zero) + (1 - p_zero) * math.log2(1 - p_zero))
        measured = len(writer.getvalue()) * 8 / len(bits)
        assert measured < entropy * 1.10 + 0.05


class TestValidation:
    def test_zero_probability_zero_bit_rejected(self):
        encoder = BinaryArithmeticEncoder(BitWriter())
        with pytest.raises(ModelStateError):
            encoder.encode_bit(0, 0, 10)

    def test_zero_probability_one_bit_rejected(self):
        encoder = BinaryArithmeticEncoder(BitWriter())
        with pytest.raises(ModelStateError):
            encoder.encode_bit(1, 10, 10)

    def test_invalid_bit_value_rejected(self):
        encoder = BinaryArithmeticEncoder(BitWriter())
        with pytest.raises(ModelStateError):
            encoder.encode_bit(2, 1, 2)

    def test_total_too_large_rejected(self):
        encoder = BinaryArithmeticEncoder(BitWriter(), precision=16)
        with pytest.raises(ModelStateError):
            encoder.encode_bit(0, 1, 1 << 15)

    def test_encode_after_finish_rejected(self):
        encoder = BinaryArithmeticEncoder(BitWriter())
        encoder.finish()
        with pytest.raises(ModelStateError):
            encoder.encode_bit(0, 1, 2)

    def test_double_finish_rejected(self):
        encoder = BinaryArithmeticEncoder(BitWriter())
        encoder.finish()
        with pytest.raises(ModelStateError):
            encoder.finish()

    def test_bad_precision_rejected(self):
        with pytest.raises(ModelStateError):
            BinaryArithmeticEncoder(BitWriter(), precision=4)

    def test_decisions_counter(self):
        encoder = BinaryArithmeticEncoder(BitWriter())
        for _ in range(7):
            encoder.encode_bit(0, 1, 2)
        assert encoder.decisions_encoded == 7


class TestPrecisionVariants:
    @pytest.mark.parametrize("precision", [16, 24, 32, 48])
    def test_roundtrip_at_various_precisions(self, precision):
        rng = random.Random(precision)
        decisions = []
        max_total = min(4000, (1 << (precision - 2)) - 1)
        for _ in range(300):
            total = rng.randint(2, max_total)
            zero = rng.randint(1, total - 1)
            decisions.append((rng.randint(0, 1), zero, total))
        writer = BitWriter()
        encoder = BinaryArithmeticEncoder(writer, precision=precision)
        for bit, zero, total in decisions:
            encoder.encode_bit(bit, zero, total)
        encoder.finish()
        decoder = BinaryArithmeticDecoder(BitReader(writer.getvalue()), precision=precision)
        decoded = [decoder.decode_bit(zero, total) for _, zero, total in decisions]
        assert decoded == [bit for bit, _, _ in decisions]


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=1, max_value=5000),
                st.integers(min_value=2, max_value=5001),
            ),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_random_decision_streams_roundtrip(self, raw):
        decisions = []
        for bit, zero, total in raw:
            total = max(2, total)
            zero = min(max(1, zero), total - 1)
            decisions.append((bit, zero, total))
        assert _roundtrip(decisions) == [bit for bit, _, _ in decisions]
