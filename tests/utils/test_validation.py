"""Tests for the argument-validation helpers."""

import pytest

from repro.exceptions import ConfigError
from repro.utils.validation import (
    require_in_range,
    require_positive,
    require_power_of_two,
    require_type,
)


class TestRequireType:
    def test_accepts_matching_type(self):
        require_type("x", 3, int)

    def test_rejects_wrong_type(self):
        with pytest.raises(ConfigError, match="must be int"):
            require_type("x", "3", int)

    def test_tuple_of_types_in_message(self):
        with pytest.raises(ConfigError, match="int or float"):
            require_type("x", "3", (int, float))


class TestRequirePositive:
    def test_accepts_positive(self):
        require_positive("count", 5)

    @pytest.mark.parametrize("value", [0, -1, True])
    def test_rejects_non_positive_and_bool(self, value):
        with pytest.raises(ConfigError):
            require_positive("count", value)

    def test_rejects_float(self):
        with pytest.raises(ConfigError):
            require_positive("count", 1.5)


class TestRequireInRange:
    def test_accepts_bounds(self):
        require_in_range("bits", 10, 10, 16)
        require_in_range("bits", 16, 10, 16)

    @pytest.mark.parametrize("value", [9, 17])
    def test_rejects_outside(self, value):
        with pytest.raises(ConfigError):
            require_in_range("bits", value, 10, 16)

    def test_rejects_bool(self):
        with pytest.raises(ConfigError):
            require_in_range("bits", True, 0, 5)


class TestRequirePowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 256, 1024])
    def test_accepts_powers(self, value):
        require_power_of_two("size", value)

    @pytest.mark.parametrize("value", [0, 3, 6, 255, -4])
    def test_rejects_non_powers(self, value):
        with pytest.raises(ConfigError):
            require_power_of_two("size", value)
