"""Tests for the hardware-style bounded registers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.fixedpoint import (
    SaturatingCounter,
    SignedRegister,
    UnsignedRegister,
    clamp,
    signed_width,
    unsigned_width,
)


class TestClamp:
    def test_inside_range(self):
        assert clamp(5, 0, 10) == 5

    def test_below_range(self):
        assert clamp(-3, 0, 10) == 0

    def test_above_range(self):
        assert clamp(42, 0, 10) == 10

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            clamp(1, 5, 4)


class TestWidths:
    @pytest.mark.parametrize(
        "value,width", [(0, 1), (1, 1), (2, 2), (3, 2), (31, 5), (32, 6), (255, 8), (1023, 10)]
    )
    def test_unsigned_width(self, value, width):
        assert unsigned_width(value) == width

    def test_unsigned_width_rejects_negative(self):
        with pytest.raises(ValueError):
            unsigned_width(-1)

    @pytest.mark.parametrize(
        "low,high,width",
        [(0, 0, 1), (-1, 0, 1), (-1, 1, 2), (-128, 127, 8), (-129, 127, 9), (0, 255, 9)],
    )
    def test_signed_width(self, low, high, width):
        assert signed_width(low, high) == width

    def test_signed_width_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            signed_width(3, 2)


class TestUnsignedRegister:
    def test_saturating_add(self):
        reg = UnsignedRegister(width=4)
        reg.add(100)
        assert reg.value == 15
        assert reg.is_saturated()

    def test_load_clamps_low(self):
        reg = UnsignedRegister(width=4)
        reg.load(-7)
        assert reg.value == 0

    def test_halve(self):
        reg = UnsignedRegister(width=5, value=21)
        reg.halve()
        assert reg.value == 10

    def test_initial_value_clamped(self):
        assert UnsignedRegister(width=3, value=200).value == 7

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            UnsignedRegister(width=0)


class TestSignedRegister:
    def test_width_includes_sign(self):
        assert SignedRegister(magnitude_bits=13).width == 14

    def test_saturates_both_directions(self):
        reg = SignedRegister(magnitude_bits=4)
        reg.add(1000)
        assert reg.value == 15
        reg.load(-1000)
        assert reg.value == -15

    def test_halve_truncates_toward_zero(self):
        positive = SignedRegister(magnitude_bits=8, value=9)
        positive.halve()
        assert positive.value == 4
        negative = SignedRegister(magnitude_bits=8, value=-9)
        negative.halve()
        assert negative.value == -4

    def test_invalid_magnitude(self):
        with pytest.raises(ValueError):
            SignedRegister(magnitude_bits=0)


class TestSaturatingCounter:
    def test_increment_below_max(self):
        counter = SaturatingCounter(width=5)
        assert counter.increment() is False
        assert counter.value == 1

    def test_increment_at_max_halves_first(self):
        counter = SaturatingCounter(width=5, value=31)
        rescaled = counter.increment()
        assert rescaled is True
        assert counter.value == 16  # 31 >> 1 == 15, then + 1

    def test_never_exceeds_max(self):
        counter = SaturatingCounter(width=3)
        for _ in range(100):
            counter.increment()
            assert counter.value <= counter.max_value

    def test_rejects_negative_step(self):
        with pytest.raises(ValueError):
            SaturatingCounter(width=3).increment(-1)

    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=1, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_bound_invariant(self, width, steps):
        counter = SaturatingCounter(width=width)
        for _ in range(steps):
            counter.increment()
            assert 0 <= counter.value <= (1 << width) - 1
