"""Tests for the bit-level I/O substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import BitstreamError
from repro.utils.bitio import BitCounter, BitReader, BitWriter, bits_to_bytes, bytes_to_bits


class TestBitWriter:
    def test_single_bits_msb_first(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 0, 1, 0, 0, 0):
            writer.write_bit(bit)
        assert writer.getvalue() == bytes([0b10101000])

    def test_partial_byte_is_zero_padded(self):
        writer = BitWriter()
        writer.write_bit(1)
        assert writer.getvalue() == bytes([0b10000000])

    def test_write_bits_width_and_value(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0b0001, 4)
        assert writer.getvalue() == bytes([0b10110001])

    def test_write_bits_rejects_overflowing_value(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(16, 4)

    def test_write_bits_rejects_negative_value(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(-1, 4)

    def test_write_bits_rejects_negative_width(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(0, -1)

    def test_zero_width_writes_nothing(self):
        writer = BitWriter()
        writer.write_bits(0, 0)
        assert writer.bit_count == 0
        assert writer.getvalue() == b""

    def test_write_unary(self):
        writer = BitWriter()
        writer.write_unary(3)
        assert writer.getvalue() == bytes([0b00010000])

    def test_write_unary_rejects_negative(self):
        with pytest.raises(ValueError):
            BitWriter().write_unary(-1)

    def test_write_bytes_unaligned(self):
        writer = BitWriter()
        writer.write_bit(1)
        writer.write_bytes(b"\xff")
        value = writer.getvalue()
        assert value[0] == 0xFF
        assert value[1] & 0x80 == 0x80

    def test_align_to_byte_returns_padding(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        padded = writer.align_to_byte()
        assert padded == 5
        assert len(writer.getvalue()) == 1

    def test_align_when_already_aligned(self):
        writer = BitWriter()
        writer.write_bits(0xAB, 8)
        assert writer.align_to_byte() == 0

    def test_bit_count_tracks_payload_bits(self):
        writer = BitWriter()
        writer.write_bits(0x3, 2)
        writer.write_unary(2)
        assert writer.bit_count == 5

    def test_len_matches_getvalue(self):
        writer = BitWriter()
        writer.write_bits(0xFFFF, 16)
        writer.write_bit(1)
        assert len(writer) == len(writer.getvalue()) == 3

    def test_extend(self):
        writer = BitWriter()
        writer.extend([1, 1, 1, 1, 0, 0, 0, 0])
        assert writer.getvalue() == bytes([0xF0])


class TestBitReader:
    def test_reads_bits_msb_first(self):
        reader = BitReader(bytes([0b10110000]))
        assert [reader.read_bit() for _ in range(4)] == [1, 0, 1, 1]

    def test_read_bits_value(self):
        reader = BitReader(bytes([0xAB, 0xCD]))
        assert reader.read_bits(16) == 0xABCD

    def test_over_read_raises(self):
        reader = BitReader(b"\x00")
        reader.read_bits(8)
        with pytest.raises(BitstreamError):
            reader.read_bit()

    def test_read_bit_or_zero_after_end(self):
        reader = BitReader(b"")
        assert reader.read_bit_or_zero() == 0

    def test_read_unary(self):
        reader = BitReader(bytes([0b00010000]))
        assert reader.read_unary() == 3

    def test_read_unary_limit(self):
        reader = BitReader(bytes([0x00, 0x00]))
        with pytest.raises(BitstreamError):
            reader.read_unary(limit=4)

    def test_bits_remaining_and_consumed(self):
        reader = BitReader(b"\xff\x00")
        assert reader.bits_remaining == 16
        reader.read_bits(5)
        assert reader.bits_consumed == 5
        assert reader.bits_remaining == 11

    def test_read_bytes_unaligned(self):
        reader = BitReader(bytes([0b01111111, 0b10000000]))
        reader.read_bit()
        assert reader.read_bytes(1) == b"\xff"

    def test_align_to_byte(self):
        reader = BitReader(bytes([0xFF, 0xAA]))
        reader.read_bit()
        reader.align_to_byte()
        assert reader.read_bits(8) == 0xAA

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00").read_bits(-1)


class TestBitCounter:
    def test_counts_all_write_kinds(self):
        counter = BitCounter()
        counter.write_bit(1)
        counter.write_bits(0, 7)
        counter.write_unary(3)
        counter.write_bytes(b"ab")
        assert counter.bit_count == 1 + 7 + 4 + 16

    def test_align_pads_to_byte(self):
        counter = BitCounter()
        counter.write_bits(0, 3)
        pad = counter.align_to_byte()
        assert pad == 5
        assert counter.bit_count == 8

    def test_getvalue_not_supported(self):
        with pytest.raises(NotImplementedError):
            BitCounter().getvalue()

    def test_matches_bitwriter_length(self):
        writer, counter = BitWriter(), BitCounter()
        for sink in (writer, counter):
            sink.write_bits(0x1F, 5)
            sink.write_unary(9)
            sink.write_bytes(b"xyz")
        assert counter.bit_count == writer.bit_count


class TestHelpers:
    def test_bits_to_bytes_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 1, 1]
        packed = bits_to_bytes(bits)
        assert bytes_to_bits(packed)[: len(bits)] == bits


class TestRoundtripProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=600))
    @settings(max_examples=60, deadline=None)
    def test_bit_sequence_roundtrip(self, bits):
        writer = BitWriter()
        writer.extend(bits)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in range(len(bits))] == bits

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=2**20 - 1), st.integers(min_value=0, max_value=20)),
            max_size=100,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_value_width_roundtrip(self, pairs):
        writer = BitWriter()
        widths = []
        values = []
        for value, width in pairs:
            value &= (1 << width) - 1 if width else 0
            writer.write_bits(value, width)
            values.append(value)
            widths.append(width)
        reader = BitReader(writer.getvalue())
        for value, width in zip(values, widths):
            assert reader.read_bits(width) == value

    @given(st.binary(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_bytes_roundtrip(self, payload):
        writer = BitWriter()
        writer.write_bytes(payload)
        reader = BitReader(writer.getvalue())
        assert reader.read_bytes(len(payload)) == payload


class TestPhantomBitLimit:
    def test_unlimited_by_default(self):
        reader = BitReader(b"")
        for _ in range(10_000):
            assert reader.read_bit_or_zero() == 0

    def test_limit_raises_bitstream_error(self):
        reader = BitReader(b"\xff", max_phantom_bits=16)
        for _ in range(8):
            assert reader.read_bit_or_zero() == 1
        for _ in range(16):
            assert reader.read_bit_or_zero() == 0
        with pytest.raises(BitstreamError):
            reader.read_bit_or_zero()

    def test_real_bits_do_not_count_against_the_limit(self):
        reader = BitReader(b"\x00\x00", max_phantom_bits=4)
        for _ in range(16):
            reader.read_bit_or_zero()
        for _ in range(4):
            assert reader.read_bit_or_zero() == 0
        with pytest.raises(BitstreamError):
            reader.read_bit_or_zero()
