"""Deterministic synthetic test-image corpus.

The paper evaluates on seven classic 512×512 grey-scale images (barb, boat,
goldhill, lena, mandrill, peppers, zelda).  Those images cannot be shipped
with this reproduction, so this module provides a *synthetic* stand-in
corpus: one seeded generator per image name, each combining smooth shading,
edges, oriented texture and sensor noise in proportions chosen so that the
generated image sits in the same "difficulty class" as the original — smooth
portraits compress to low bit rates, the fur-textured ``mandrill`` stand-in
compresses worst, the striped ``barb`` stand-in sits in between, and so on.

The corpus is fully deterministic: the same name, size and seed always
produce the identical image, so benchmark results are reproducible bit for
bit.

The composition model is additive:

``image = base shading + structures (edges) + oriented texture + noise``

with every component's amplitude controlled by the per-image
:class:`SyntheticSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.exceptions import CorpusError
from repro.imaging.image import GrayImage
from repro.imaging.planar import PlanarImage

__all__ = [
    "SyntheticSpec",
    "CORPUS_IMAGE_NAMES",
    "CORPUS_SPECS",
    "generate_image",
    "generate_corpus",
    "generate_planar_image",
    "generate_gradient_image",
    "generate_noise_image",
    "generate_text_like_image",
]


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic corpus image.

    Attributes
    ----------
    name:
        Corpus image name (matches the paper's Table 1 rows).
    base_scale:
        Spatial scale (as a fraction of image size) of the smooth shading
        component; larger values give broader, easier-to-predict shading.
    base_amplitude:
        Peak-to-peak amplitude of the smooth shading.
    edge_count:
        Number of random polygonal/elliptic structures composited into the
        image; these create the sharp edges that exercise the predictor's
        edge detection.
    edge_amplitude:
        Intensity step across structure boundaries.
    texture_amplitude:
        Amplitude of the oriented sinusoidal texture (the "striped trousers"
        of barb, the fur of mandrill).
    texture_frequency:
        Spatial frequency of that texture in cycles per image width.
    texture_orientations:
        Number of distinct stripe orientations blended together.
    noise_sigma:
        Standard deviation of the white Gaussian sensor noise.  This is the
        dominant control of the achievable lossless bit rate.
    description:
        Human-readable summary used in reports.
    """

    name: str
    base_scale: float
    base_amplitude: float
    edge_count: int
    edge_amplitude: float
    texture_amplitude: float
    texture_frequency: float
    texture_orientations: int
    noise_sigma: float
    description: str = ""


#: Per-image specifications.  Noise and texture levels are graded so the
#: relative compressibility ordering matches Table 1 of the paper:
#: zelda (easiest) < lena < boat < peppers < goldhill < barb < mandrill.
CORPUS_SPECS: Dict[str, SyntheticSpec] = {
    "barb": SyntheticSpec(
        name="barb",
        base_scale=0.35,
        base_amplitude=90.0,
        edge_count=14,
        edge_amplitude=55.0,
        texture_amplitude=34.0,
        texture_frequency=46.0,
        texture_orientations=3,
        noise_sigma=6.0,
        description="striped-textile stand-in: strong oriented high-frequency texture",
    ),
    "boat": SyntheticSpec(
        name="boat",
        base_scale=0.40,
        base_amplitude=100.0,
        edge_count=26,
        edge_amplitude=70.0,
        texture_amplitude=10.0,
        texture_frequency=24.0,
        texture_orientations=2,
        noise_sigma=4.6,
        description="man-made-scene stand-in: many straight edges, moderate detail",
    ),
    "goldhill": SyntheticSpec(
        name="goldhill",
        base_scale=0.30,
        base_amplitude=85.0,
        edge_count=32,
        edge_amplitude=45.0,
        texture_amplitude=16.0,
        texture_frequency=30.0,
        texture_orientations=2,
        noise_sigma=6.0,
        description="village-scene stand-in: dense small structures and roof texture",
    ),
    "lena": SyntheticSpec(
        name="lena",
        base_scale=0.45,
        base_amplitude=110.0,
        edge_count=12,
        edge_amplitude=60.0,
        texture_amplitude=9.0,
        texture_frequency=18.0,
        texture_orientations=2,
        noise_sigma=4.4,
        description="portrait stand-in: large smooth areas, a few strong edges",
    ),
    "mandrill": SyntheticSpec(
        name="mandrill",
        base_scale=0.40,
        base_amplitude=70.0,
        edge_count=8,
        edge_amplitude=40.0,
        texture_amplitude=40.0,
        texture_frequency=70.0,
        texture_orientations=4,
        noise_sigma=13.0,
        description="fur-texture stand-in: broadband texture, hardest to compress",
    ),
    "peppers": SyntheticSpec(
        name="peppers",
        base_scale=0.38,
        base_amplitude=105.0,
        edge_count=18,
        edge_amplitude=65.0,
        texture_amplitude=7.0,
        texture_frequency=14.0,
        texture_orientations=1,
        noise_sigma=5.0,
        description="smooth-blob stand-in: large glossy regions bounded by curved edges",
    ),
    "zelda": SyntheticSpec(
        name="zelda",
        base_scale=0.50,
        base_amplitude=95.0,
        edge_count=10,
        edge_amplitude=45.0,
        texture_amplitude=5.0,
        texture_frequency=12.0,
        texture_orientations=1,
        noise_sigma=3.8,
        description="soft-portrait stand-in: the smoothest, most predictable image",
    ),
}

#: Table 1 image order.
CORPUS_IMAGE_NAMES: Tuple[str, ...] = (
    "barb",
    "boat",
    "goldhill",
    "lena",
    "mandrill",
    "peppers",
    "zelda",
)

#: Seed offset per image so different images use decorrelated random streams.
_NAME_SEED_OFFSET = {name: index * 1009 for index, name in enumerate(CORPUS_IMAGE_NAMES)}


def _smooth_base(rng: np.random.Generator, size: int, spec: SyntheticSpec) -> np.ndarray:
    """Low-frequency shading: heavily blurred white noise plus a ramp."""
    noise = rng.standard_normal((size, size))
    sigma = max(2.0, spec.base_scale * size / 4.0)
    shading = ndimage.gaussian_filter(noise, sigma=sigma, mode="reflect")
    peak = np.max(np.abs(shading)) or 1.0
    shading = shading / peak * (spec.base_amplitude / 2.0)
    ramp_direction = rng.uniform(0.0, 2.0 * np.pi)
    ys, xs = np.mgrid[0:size, 0:size]
    ramp = (
        (xs * np.cos(ramp_direction) + ys * np.sin(ramp_direction))
        / size
        * (spec.base_amplitude / 3.0)
    )
    return shading + ramp


def _structures(rng: np.random.Generator, size: int, spec: SyntheticSpec) -> np.ndarray:
    """Sharp-edged elliptical and rectangular structures."""
    canvas = np.zeros((size, size))
    ys, xs = np.mgrid[0:size, 0:size]
    for _ in range(spec.edge_count):
        kind = rng.integers(0, 2)
        cx, cy = rng.uniform(0, size, size=2)
        amplitude = rng.uniform(0.4, 1.0) * spec.edge_amplitude * rng.choice([-1.0, 1.0])
        if kind == 0:
            # Rotated ellipse.
            a = rng.uniform(0.05, 0.30) * size
            b = rng.uniform(0.05, 0.30) * size
            theta = rng.uniform(0, np.pi)
            xr = (xs - cx) * np.cos(theta) + (ys - cy) * np.sin(theta)
            yr = -(xs - cx) * np.sin(theta) + (ys - cy) * np.cos(theta)
            mask = (xr / a) ** 2 + (yr / b) ** 2 <= 1.0
        else:
            # Axis-aligned rectangle.
            w = rng.uniform(0.05, 0.35) * size
            h = rng.uniform(0.05, 0.35) * size
            mask = (np.abs(xs - cx) <= w / 2) & (np.abs(ys - cy) <= h / 2)
        canvas[mask] += amplitude
    # A touch of blur keeps edges a couple of pixels wide, like optics would.
    return ndimage.gaussian_filter(canvas, sigma=0.6, mode="reflect")


def _oriented_texture(rng: np.random.Generator, size: int, spec: SyntheticSpec) -> np.ndarray:
    """Oriented sinusoidal texture with spatially varying amplitude."""
    if spec.texture_amplitude <= 0 or spec.texture_orientations <= 0:
        return np.zeros((size, size))
    ys, xs = np.mgrid[0:size, 0:size]
    texture = np.zeros((size, size))
    for _ in range(spec.texture_orientations):
        theta = rng.uniform(0, np.pi)
        frequency = spec.texture_frequency * rng.uniform(0.7, 1.3)
        phase = rng.uniform(0, 2 * np.pi)
        carrier = np.sin(
            2 * np.pi * frequency * (xs * np.cos(theta) + ys * np.sin(theta)) / size
            + phase
        )
        envelope = ndimage.gaussian_filter(
            rng.standard_normal((size, size)), sigma=size / 10.0, mode="reflect"
        )
        envelope = np.abs(envelope)
        envelope /= np.max(envelope) or 1.0
        texture += carrier * envelope
    texture /= spec.texture_orientations
    return texture * spec.texture_amplitude


def generate_image(
    name: str,
    size: int = 512,
    seed: int = 2007,
    spec: Optional[SyntheticSpec] = None,
) -> GrayImage:
    """Generate one synthetic corpus image.

    Parameters
    ----------
    name:
        One of :data:`CORPUS_IMAGE_NAMES` (or any name when ``spec`` is given).
    size:
        Image width and height in pixels (the corpus is square).
    seed:
        Base random seed; the image name adds a fixed offset so each image
        uses an independent random stream.
    spec:
        Override the built-in :class:`SyntheticSpec` for custom experiments.
    """
    if spec is None:
        try:
            spec = CORPUS_SPECS[name]
        except KeyError as exc:
            raise CorpusError(
                "unknown corpus image %r; expected one of %s"
                % (name, ", ".join(CORPUS_IMAGE_NAMES))
            ) from exc
    if size < 16:
        raise CorpusError("corpus images must be at least 16x16, got %d" % size)

    rng = np.random.default_rng(seed + _NAME_SEED_OFFSET.get(name, hash(name) % 7919))
    base = _smooth_base(rng, size, spec)
    structures = _structures(rng, size, spec)
    texture = _oriented_texture(rng, size, spec)
    noise = rng.standard_normal((size, size)) * spec.noise_sigma

    composite = 128.0 + base + structures + texture + noise
    return GrayImage.from_array(composite, bit_depth=8, name=name)


def generate_corpus(
    size: int = 512,
    seed: int = 2007,
    names: Optional[Tuple[str, ...]] = None,
) -> List[GrayImage]:
    """Generate the full seven-image corpus (or a subset given ``names``)."""
    selected = names if names is not None else CORPUS_IMAGE_NAMES
    images = []
    for name in selected:
        images.append(generate_image(name, size=size, seed=seed))
    return images


def generate_planar_image(
    name: str,
    size: int = 512,
    seed: int = 2007,
    planes: int = 3,
) -> PlanarImage:
    """Generate a multi-component (default RGB) synthetic corpus image.

    The planes share the corpus image's luminance structure and differ by a
    per-plane gain, a low-frequency chroma field and independent sensor
    noise — the strong inter-plane correlation natural photographs have,
    which is what makes the inter-plane delta predictor of
    :mod:`repro.core.components` pay off.
    """
    if not 1 <= planes <= 255:
        raise CorpusError("plane count must be in [1, 255], got %d" % planes)
    base = generate_image(name, size=size, seed=seed).to_array().astype(np.float64)
    plane_images = []
    for k in range(planes):
        # generate_image above already rejected non-corpus names, so the
        # offset lookup cannot miss (no hash() fallback: str hashing is
        # per-process and would break the corpus's determinism).
        rng = np.random.default_rng(seed + _NAME_SEED_OFFSET[name] + 104729 * (k + 1))
        gain = 1.0 + (k - (planes - 1) / 2.0) * 0.06
        chroma = ndimage.gaussian_filter(
            rng.standard_normal((size, size)), sigma=max(2.0, size / 6.0), mode="reflect"
        )
        peak = np.max(np.abs(chroma)) or 1.0
        chroma = chroma / peak * 14.0
        noise = rng.standard_normal((size, size)) * 1.5
        label = "RGB"[k] if planes == 3 else "band%d" % k
        plane_images.append(
            GrayImage.from_array(base * gain + chroma + noise, bit_depth=8, name=label)
        )
    return PlanarImage(plane_images, name=name)


# --------------------------------------------------------------------------- #
# Generic generators used by the test-suite and the universal-compressor demo
# --------------------------------------------------------------------------- #


def generate_gradient_image(size: int = 64, direction: str = "horizontal") -> GrayImage:
    """A perfectly smooth ramp — the easiest possible input for a predictor."""
    ys, xs = np.mgrid[0:size, 0:size]
    if direction == "horizontal":
        values = xs
    elif direction == "vertical":
        values = ys
    elif direction == "diagonal":
        values = (xs + ys) / 2.0
    else:
        raise CorpusError("unknown gradient direction %r" % direction)
    scaled = values / max(1, size - 1) * 255.0
    return GrayImage.from_array(scaled, name="gradient-%s" % direction)


def generate_noise_image(size: int = 64, seed: int = 0, bit_depth: int = 8) -> GrayImage:
    """Uniform white noise — incompressible, the worst case for every codec."""
    rng = np.random.default_rng(seed)
    values = rng.integers(0, (1 << bit_depth), size=(size, size))
    return GrayImage.from_array(values, bit_depth=bit_depth, name="noise")


def generate_text_like_image(size: int = 64, seed: int = 1) -> GrayImage:
    """A bi-level, text-like image (runs of black strokes on white)."""
    rng = np.random.default_rng(seed)
    canvas = np.full((size, size), 235.0)
    line_height = max(4, size // 16)
    for top in range(2, size - line_height, line_height + 2):
        x = 2
        while x < size - 4:
            stroke = rng.integers(1, 5)
            gap = rng.integers(1, 4)
            if rng.random() < 0.75:
                canvas[top : top + line_height - 1, x : x + stroke] = 25.0
            x += stroke + gap
    return GrayImage.from_array(canvas, name="text")
