"""Grey-scale image container.

All codecs in this package operate on :class:`GrayImage`: a small, immutable
wrapper around a row-major list of integer pixel values with an explicit bit
depth.  The container deliberately stores plain Python integers (not a numpy
array) in its accessor API because the codecs are integer-exact, but it can
be constructed from and converted to numpy arrays for the synthetic
generators and the metrics code.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.exceptions import ImageFormatError

__all__ = ["GrayImage"]


class GrayImage:
    """An immutable grey-scale image of ``height`` x ``width`` pixels.

    Parameters
    ----------
    width, height:
        Image dimensions in pixels; both must be positive.
    pixels:
        Row-major sequence of ``width * height`` integer samples.
    bit_depth:
        Bits per sample (1-16).  All samples must lie in
        ``[0, 2**bit_depth - 1]``.
    name:
        Optional label used in reports (e.g. the corpus image name).
    """

    __slots__ = ("_width", "_height", "_pixels", "_bit_depth", "_name")

    def __init__(
        self,
        width: int,
        height: int,
        pixels: Sequence[int],
        bit_depth: int = 8,
        name: str = "",
    ) -> None:
        if width <= 0 or height <= 0:
            raise ImageFormatError(
                "image dimensions must be positive, got %dx%d" % (width, height)
            )
        if not 1 <= bit_depth <= 16:
            raise ImageFormatError("bit_depth must be in [1, 16], got %d" % bit_depth)
        pixel_list = [int(p) for p in pixels]
        if len(pixel_list) != width * height:
            raise ImageFormatError(
                "expected %d pixels for %dx%d image, got %d"
                % (width * height, width, height, len(pixel_list))
            )
        max_value = (1 << bit_depth) - 1
        for value in pixel_list:
            if not 0 <= value <= max_value:
                raise ImageFormatError(
                    "pixel value %d outside [0, %d] for bit depth %d"
                    % (value, max_value, bit_depth)
                )
        self._width = width
        self._height = height
        self._pixels = pixel_list
        self._bit_depth = bit_depth
        self._name = name

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_array(cls, array: np.ndarray, bit_depth: int = 8, name: str = "") -> "GrayImage":
        """Build an image from a 2-D numpy array (values are clipped)."""
        if array.ndim != 2:
            raise ImageFormatError(
                "expected a 2-D array, got %d dimensions" % array.ndim
            )
        max_value = (1 << bit_depth) - 1
        clipped = np.clip(np.rint(array), 0, max_value).astype(np.int64)
        height, width = clipped.shape
        return cls(width, height, clipped.reshape(-1).tolist(), bit_depth, name)

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[int]], bit_depth: int = 8, name: str = "") -> "GrayImage":
        """Build an image from a list of equal-length rows."""
        if not rows:
            raise ImageFormatError("cannot build an image from zero rows")
        width = len(rows[0])
        flat: List[int] = []
        for row in rows:
            if len(row) != width:
                raise ImageFormatError("rows have inconsistent lengths")
            flat.extend(int(v) for v in row)
        return cls(width, len(rows), flat, bit_depth, name)

    @classmethod
    def constant(cls, width: int, height: int, value: int, bit_depth: int = 8, name: str = "") -> "GrayImage":
        """Build an image filled with a single value."""
        return cls(width, height, [value] * (width * height), bit_depth, name)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def width(self) -> int:
        return self._width

    @property
    def height(self) -> int:
        return self._height

    @property
    def bit_depth(self) -> int:
        return self._bit_depth

    @property
    def name(self) -> str:
        return self._name

    @property
    def max_value(self) -> int:
        """Largest representable sample value."""
        return (1 << self._bit_depth) - 1

    @property
    def pixel_count(self) -> int:
        return self._width * self._height

    def get(self, x: int, y: int) -> int:
        """Return the sample at column ``x``, row ``y`` (bounds-checked)."""
        if not 0 <= x < self._width or not 0 <= y < self._height:
            raise ImageFormatError(
                "pixel (%d, %d) outside %dx%d image"
                % (x, y, self._width, self._height)
            )
        return self._pixels[y * self._width + x]

    def row(self, y: int) -> List[int]:
        """Return row ``y`` as a list."""
        if not 0 <= y < self._height:
            raise ImageFormatError("row %d outside image of height %d" % (y, self._height))
        start = y * self._width
        return self._pixels[start : start + self._width]

    def pixels(self) -> List[int]:
        """Return a copy of the row-major pixel list."""
        return list(self._pixels)

    def iter_pixels(self) -> Iterable[int]:
        """Iterate over pixels in raster order without copying."""
        return iter(self._pixels)

    def to_array(self) -> np.ndarray:
        """Return the image as a 2-D numpy array of int64."""
        return np.array(self._pixels, dtype=np.int64).reshape(self._height, self._width)

    def to_bytes(self) -> bytes:
        """Serialise the raw samples (big-endian 16-bit when depth > 8)."""
        if self._bit_depth <= 8:
            return bytes(self._pixels)
        out = bytearray()
        for value in self._pixels:
            out.append(value >> 8)
            out.append(value & 0xFF)
        return bytes(out)

    def with_name(self, name: str) -> "GrayImage":
        """Return a copy of this image carrying a different label."""
        return GrayImage(self._width, self._height, self._pixels, self._bit_depth, name)

    # ------------------------------------------------------------------ #
    # dunder methods
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GrayImage):
            return NotImplemented
        return (
            self._width == other._width
            and self._height == other._height
            and self._bit_depth == other._bit_depth
            and self._pixels == other._pixels
        )

    def __hash__(self) -> int:
        return hash((self._width, self._height, self._bit_depth, tuple(self._pixels)))

    def __repr__(self) -> str:
        label = " %r" % self._name if self._name else ""
        return "<GrayImage%s %dx%d depth=%d>" % (
            label,
            self._width,
            self._height,
            self._bit_depth,
        )
