"""Netpbm (PGM/PPM/PAM) reading and writing.

The command-line tools operate on Netpbm files because the formats are
trivial, self-describing and supported by every image viewer:

* PGM (``P2`` ASCII / ``P5`` binary) — grey-scale, one sample per pixel,
  read into :class:`~repro.imaging.image.GrayImage`;
* PPM (``P3`` ASCII / ``P6`` binary) — RGB colour, three interleaved samples
  per pixel, read into a three-plane
  :class:`~repro.imaging.planar.PlanarImage`;
* PAM (``P7`` binary) — arbitrary ``DEPTH`` components per pixel, the
  container for multi-band payloads beyond RGB.

16-bit samples are stored big-endian as the Netpbm specification requires.
:func:`read_image` sniffs the magic number and dispatches to the right
reader, returning whichever of the two image containers matches the file.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import BinaryIO, List, Tuple, Union

from repro.exceptions import ImageFormatError
from repro.imaging.image import GrayImage
from repro.imaging.planar import MAX_PLANES, PlanarImage, default_plane_names

__all__ = [
    "read_pgm",
    "write_pgm",
    "read_ppm",
    "write_ppm",
    "read_pam",
    "write_pam",
    "read_image",
    "write_image",
    "netpbm_region_header",
    "split_netpbm_payload",
]

_PathOrFile = Union[str, Path, BinaryIO]

_GRAY_MAGICS = (b"P2", b"P5")
_RGB_MAGICS = (b"P3", b"P6")
_PAM_MAGIC = b"P7"


def _tokenise_header(stream: BinaryIO, magics: Tuple[bytes, ...]) -> Tuple[bytes, int, int, int]:
    """Read magic, width, height, maxval, skipping whitespace and comments."""
    magic = stream.read(2)
    if magic not in magics:
        raise ImageFormatError(
            "not a %s file (magic %r)" % ("/".join(m.decode() for m in magics), magic)
        )
    tokens: List[bytes] = []
    while len(tokens) < 3:
        char = stream.read(1)
        if not char:
            raise ImageFormatError("truncated %s header" % magic.decode())
        if char == b"#":
            while char not in (b"\n", b""):
                char = stream.read(1)
            continue
        if char.isspace():
            continue
        token = bytearray(char)
        while True:
            char = stream.read(1)
            if not char or char.isspace():
                break
            if char == b"#":
                while char not in (b"\n", b""):
                    char = stream.read(1)
                break
            token.extend(char)
        tokens.append(bytes(token))
    try:
        width, height, maxval = (int(t) for t in tokens)
    except ValueError as exc:
        raise ImageFormatError("non-numeric header field: %r" % tokens) from exc
    return magic, width, height, maxval


def _check_geometry(kind: str, width: int, height: int, maxval: int) -> int:
    """Validate header fields; return the implied bit depth."""
    if width <= 0 or height <= 0:
        raise ImageFormatError("invalid %s dimensions %dx%d" % (kind, width, height))
    if not 1 <= maxval <= 65535:
        raise ImageFormatError("invalid %s maxval %d" % (kind, maxval))
    return max(1, maxval.bit_length())


def _read_binary_samples(stream: BinaryIO, count: int, maxval: int, kind: str) -> List[int]:
    """Read ``count`` binary samples (1 or 2 bytes each, per ``maxval``)."""
    if maxval <= 255:
        raw = stream.read(count)
        if len(raw) != count:
            raise ImageFormatError(
                "truncated %s payload: expected %d bytes, got %d" % (kind, count, len(raw))
            )
        return list(raw)
    raw = stream.read(2 * count)
    if len(raw) != 2 * count:
        raise ImageFormatError(
            "truncated 16-bit %s payload: expected %d bytes, got %d"
            % (kind, 2 * count, len(raw))
        )
    return [(raw[2 * i] << 8) | raw[2 * i + 1] for i in range(count)]


def _read_ascii_samples(stream: BinaryIO, count: int, kind: str) -> List[int]:
    """Read ``count`` whitespace-separated ASCII samples."""
    text = stream.read().decode("ascii", errors="strict")
    values = text.split()
    if len(values) < count:
        raise ImageFormatError(
            "truncated ASCII %s: expected %d samples, got %d" % (kind, count, len(values))
        )
    try:
        return [int(v) for v in values[:count]]
    except ValueError as exc:
        raise ImageFormatError("non-numeric sample in ASCII %s" % kind) from exc


def _check_sample_range(samples: List[int], maxval: int, kind: str) -> None:
    for value in samples:
        if value > maxval:
            raise ImageFormatError("sample %d exceeds %s maxval %d" % (value, kind, maxval))


def _write_binary_samples(destination: BinaryIO, samples: List[int], maxval: int) -> None:
    if maxval <= 255:
        destination.write(bytes(samples))
        return
    out = bytearray()
    for value in samples:
        out.append(value >> 8)
        out.append(value & 0xFF)
    destination.write(bytes(out))


def _deinterleave(
    samples: List[int], width: int, height: int, depth: int, bit_depth: int, name: str
) -> PlanarImage:
    """Split pixel-interleaved samples into a planar image."""
    planes = [
        GrayImage(width, height, samples[k :: depth], bit_depth, label)
        for k, label in zip(range(depth), default_plane_names(depth))
    ]
    return PlanarImage(planes, name=name)


# ---------------------------------------------------------------------- #
# PGM — grey-scale
# ---------------------------------------------------------------------- #


def read_pgm(source: _PathOrFile) -> GrayImage:
    """Read a PGM file (P2 or P5) into a :class:`GrayImage`."""
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            return read_pgm(handle)

    magic, width, height, maxval = _tokenise_header(source, _GRAY_MAGICS)
    bit_depth = _check_geometry("PGM", width, height, maxval)
    count = width * height
    if magic == b"P5":
        pixels = _read_binary_samples(source, count, maxval, "PGM")
    else:
        pixels = _read_ascii_samples(source, count, "PGM")
    _check_sample_range(pixels, maxval, "PGM")
    return GrayImage(width, height, pixels, bit_depth)


def write_pgm(image: GrayImage, destination: _PathOrFile, binary: bool = True) -> None:
    """Write ``image`` as a PGM file (P5 when ``binary`` else P2)."""
    if isinstance(destination, (str, Path)):
        with open(destination, "wb") as handle:
            write_pgm(image, handle, binary=binary)
        return

    maxval = image.max_value
    header = "%s\n%d %d\n%d\n" % ("P5" if binary else "P2", image.width, image.height, maxval)
    destination.write(header.encode("ascii"))
    if binary:
        destination.write(image.to_bytes())
    else:
        text = io.StringIO()
        for y in range(image.height):
            text.write(" ".join(str(v) for v in image.row(y)))
            text.write("\n")
        destination.write(text.getvalue().encode("ascii"))


# ---------------------------------------------------------------------- #
# PPM — RGB colour
# ---------------------------------------------------------------------- #


def read_ppm(source: _PathOrFile) -> PlanarImage:
    """Read a PPM file (P3 or P6) into a three-plane :class:`PlanarImage`."""
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            return read_ppm(handle)

    magic, width, height, maxval = _tokenise_header(source, _RGB_MAGICS)
    bit_depth = _check_geometry("PPM", width, height, maxval)
    count = width * height * 3
    if magic == b"P6":
        samples = _read_binary_samples(source, count, maxval, "PPM")
    else:
        samples = _read_ascii_samples(source, count, "PPM")
    _check_sample_range(samples, maxval, "PPM")
    return _deinterleave(samples, width, height, 3, bit_depth, "")


def write_ppm(image: PlanarImage, destination: _PathOrFile, binary: bool = True) -> None:
    """Write a three-plane ``image`` as a PPM file (P6 when ``binary`` else P3)."""
    if image.num_planes != 3:
        raise ImageFormatError(
            "PPM stores exactly 3 components, image has %d (use write_pam)"
            % image.num_planes
        )
    if isinstance(destination, (str, Path)):
        with open(destination, "wb") as handle:
            write_ppm(image, handle, binary=binary)
        return

    maxval = image.max_value
    header = "%s\n%d %d\n%d\n" % ("P6" if binary else "P3", image.width, image.height, maxval)
    destination.write(header.encode("ascii"))
    samples = image.interleaved_samples()
    if binary:
        _write_binary_samples(destination, samples, maxval)
    else:
        text = io.StringIO()
        per_row = image.width * 3
        for y in range(image.height):
            row = samples[y * per_row : (y + 1) * per_row]
            text.write(" ".join(str(v) for v in row))
            text.write("\n")
        destination.write(text.getvalue().encode("ascii"))


# ---------------------------------------------------------------------- #
# PAM — arbitrary component count
# ---------------------------------------------------------------------- #

_PAM_TUPLTYPES = {1: "GRAYSCALE", 3: "RGB"}


def read_pam(source: _PathOrFile) -> PlanarImage:
    """Read a PAM file (P7) into a :class:`PlanarImage` of ``DEPTH`` planes."""
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            return read_pam(handle)

    magic = source.read(2)
    if magic != _PAM_MAGIC:
        raise ImageFormatError("not a PAM file (magic %r)" % magic)
    fields = {}
    while True:
        line = bytearray()
        while True:
            char = source.read(1)
            if not char:
                raise ImageFormatError("truncated PAM header (missing ENDHDR)")
            if char == b"\n":
                break
            line.extend(char)
        text = bytes(line).decode("ascii", errors="replace").strip()
        if not text or text.startswith("#"):
            continue
        if text == "ENDHDR":
            break
        parts = text.split(None, 1)
        fields[parts[0].upper()] = parts[1] if len(parts) > 1 else ""
    try:
        width = int(fields["WIDTH"])
        height = int(fields["HEIGHT"])
        depth = int(fields["DEPTH"])
        maxval = int(fields["MAXVAL"])
    except KeyError as exc:
        raise ImageFormatError("PAM header is missing the %s field" % exc) from exc
    except ValueError as exc:
        raise ImageFormatError("non-numeric PAM header field") from exc
    bit_depth = _check_geometry("PAM", width, height, maxval)
    if not 1 <= depth <= MAX_PLANES:
        raise ImageFormatError("PAM depth must be in [1, %d], got %d" % (MAX_PLANES, depth))
    samples = _read_binary_samples(source, width * height * depth, maxval, "PAM")
    _check_sample_range(samples, maxval, "PAM")
    return _deinterleave(samples, width, height, depth, bit_depth, "")


def write_pam(image: PlanarImage, destination: _PathOrFile) -> None:
    """Write ``image`` as a binary PAM (P7) file."""
    if isinstance(destination, (str, Path)):
        with open(destination, "wb") as handle:
            write_pam(image, handle)
        return

    tupltype = _PAM_TUPLTYPES.get(image.num_planes)
    header = ["P7"]
    header.append("WIDTH %d" % image.width)
    header.append("HEIGHT %d" % image.height)
    header.append("DEPTH %d" % image.num_planes)
    header.append("MAXVAL %d" % image.max_value)
    if tupltype:
        header.append("TUPLTYPE %s" % tupltype)
    header.append("ENDHDR")
    destination.write(("\n".join(header) + "\n").encode("ascii"))
    _write_binary_samples(destination, image.interleaved_samples(), image.max_value)


# ---------------------------------------------------------------------- #
# streaming: header synthesis and header/sample splitting
# ---------------------------------------------------------------------- #


def netpbm_region_header(planes: int, width: int, height: int, bit_depth: int) -> Tuple[bytes, str]:
    """Synthesise the binary Netpbm header for a region of known geometry.

    Returns ``(header_bytes, kind)`` where ``kind`` is ``"pgm"``, ``"ppm"``
    or ``"pam"`` — the format :func:`write_image` would pick for an image
    of ``planes`` components.  The bytes are exactly what the corresponding
    writer emits (our writers never emit comments), so a streamed response
    can send the header first and follow with raw sample chunks whose
    concatenation is byte-identical to a fully assembled file.
    """
    if width <= 0 or height <= 0:
        raise ImageFormatError("invalid region dimensions %dx%d" % (width, height))
    if not 1 <= planes <= MAX_PLANES:
        raise ImageFormatError("plane count must be in [1, %d], got %d" % (MAX_PLANES, planes))
    maxval = (1 << bit_depth) - 1
    if not 1 <= maxval <= 65535:
        raise ImageFormatError("invalid region bit depth %d" % bit_depth)
    if planes == 1:
        return ("P5\n%d %d\n%d\n" % (width, height, maxval)).encode("ascii"), "pgm"
    if planes == 3:
        return ("P6\n%d %d\n%d\n" % (width, height, maxval)).encode("ascii"), "ppm"
    lines = ["P7", "WIDTH %d" % width, "HEIGHT %d" % height, "DEPTH %d" % planes,
             "MAXVAL %d" % maxval]
    tupltype = _PAM_TUPLTYPES.get(planes)
    if tupltype:
        lines.append("TUPLTYPE %s" % tupltype)
    lines.append("ENDHDR")
    return ("\n".join(lines) + "\n").encode("ascii"), "pam"


def split_netpbm_payload(payload: bytes) -> Tuple[bytes, bytes]:
    """Split a binary Netpbm payload written by this module into (header, samples).

    Only the exact output of our binary writers is supported: P5/P6 headers
    are three newline-terminated lines with no comments, P7 headers end at
    ``ENDHDR``.  The streaming serve path uses this to strip per-stripe
    headers so stripe sample chunks can be concatenated under one
    region-wide header.
    """
    magic = payload[:2]
    if magic == _PAM_MAGIC:
        marker = b"ENDHDR\n"
        end = payload.find(marker)
        if end < 0:
            raise ImageFormatError("PAM payload is missing ENDHDR")
        cut = end + len(marker)
        return payload[:cut], payload[cut:]
    if magic in (b"P5", b"P6"):
        cut = 0
        for _ in range(3):
            cut = payload.find(b"\n", cut) + 1
            if cut == 0:
                raise ImageFormatError("truncated %s header" % magic.decode())
        return payload[:cut], payload[cut:]
    raise ImageFormatError("not a binary PGM/PPM/PAM payload (magic %r)" % magic)


# ---------------------------------------------------------------------- #
# format auto-detection
# ---------------------------------------------------------------------- #


def read_image(source: _PathOrFile) -> Union[GrayImage, PlanarImage]:
    """Read any supported Netpbm file, dispatching on the magic number.

    PGM files come back as :class:`GrayImage`; PPM and PAM files as
    :class:`PlanarImage` (three and ``DEPTH`` planes respectively).
    """
    if isinstance(source, (str, Path)):
        # Peek two magic bytes, then hand the path to the format reader —
        # no whole-file copy just to dispatch.
        with open(source, "rb") as handle:
            magic = handle.read(2)
        return _reader_for_magic(magic)(source)

    if source.seekable():
        magic = source.read(2)
        source.seek(-len(magic), io.SEEK_CUR)
        return _reader_for_magic(magic)(source)
    # Non-seekable stream (pipe): buffering is the only way to replay the
    # magic bytes for the chosen reader.
    buffered = io.BytesIO(source.read())
    magic = buffered.read(2)
    buffered.seek(0)
    return _reader_for_magic(magic)(buffered)


def _reader_for_magic(magic: bytes):
    if magic in _GRAY_MAGICS:
        return read_pgm
    if magic in _RGB_MAGICS:
        return read_ppm
    if magic == _PAM_MAGIC:
        return read_pam
    raise ImageFormatError("not a PGM/PPM/PAM file (magic %r)" % magic)


def write_image(
    image: Union[GrayImage, PlanarImage], destination: _PathOrFile, binary: bool = True
) -> None:
    """Write an image in the most natural Netpbm format for its shape.

    :class:`GrayImage` and single-plane images go to PGM, three-plane images
    to PPM and any other component count to PAM.  Paths ending in ``.pam``
    always get a PAM file, whatever the plane count.
    """
    if isinstance(destination, (str, Path)) and str(destination).lower().endswith(".pam"):
        if isinstance(image, GrayImage):
            image = PlanarImage.from_gray(image)
        write_pam(image, destination)
        return
    if isinstance(image, GrayImage):
        write_pgm(image, destination, binary=binary)
        return
    if image.num_planes == 1:
        write_pgm(image.gray(), destination, binary=binary)
    elif image.num_planes == 3:
        write_ppm(image, destination, binary=binary)
    else:
        write_pam(image, destination)
