"""PGM (portable greymap) reading and writing.

The command-line tools operate on PGM files because the format is trivial,
self-describing and supported by every image viewer.  Both the binary (P5)
and ASCII (P2) variants are handled; 16-bit samples are stored big-endian as
the Netpbm specification requires.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import BinaryIO, List, Tuple, Union

from repro.exceptions import ImageFormatError
from repro.imaging.image import GrayImage

__all__ = ["read_pgm", "write_pgm"]

_PathOrFile = Union[str, Path, BinaryIO]


def _tokenise_header(stream: BinaryIO) -> Tuple[bytes, int, int, int]:
    """Read magic, width, height, maxval, skipping whitespace and comments."""
    tokens: List[bytes] = []
    magic = stream.read(2)
    if magic not in (b"P2", b"P5"):
        raise ImageFormatError("not a PGM file (magic %r)" % magic)
    while len(tokens) < 3:
        char = stream.read(1)
        if not char:
            raise ImageFormatError("truncated PGM header")
        if char == b"#":
            while char not in (b"\n", b""):
                char = stream.read(1)
            continue
        if char.isspace():
            continue
        token = bytearray(char)
        while True:
            char = stream.read(1)
            if not char or char.isspace():
                break
            if char == b"#":
                while char not in (b"\n", b""):
                    char = stream.read(1)
                break
            token.extend(char)
        tokens.append(bytes(token))
    try:
        width, height, maxval = (int(t) for t in tokens)
    except ValueError as exc:
        raise ImageFormatError("non-numeric PGM header field: %r" % tokens) from exc
    return magic, width, height, maxval


def read_pgm(source: _PathOrFile) -> GrayImage:
    """Read a PGM file (P2 or P5) into a :class:`GrayImage`."""
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            return read_pgm(handle)

    magic, width, height, maxval = _tokenise_header(source)
    if width <= 0 or height <= 0:
        raise ImageFormatError("invalid PGM dimensions %dx%d" % (width, height))
    if not 1 <= maxval <= 65535:
        raise ImageFormatError("invalid PGM maxval %d" % maxval)
    bit_depth = max(1, maxval.bit_length())
    count = width * height

    if magic == b"P5":
        if maxval <= 255:
            raw = source.read(count)
            if len(raw) != count:
                raise ImageFormatError(
                    "truncated PGM payload: expected %d bytes, got %d" % (count, len(raw))
                )
            pixels = list(raw)
        else:
            raw = source.read(2 * count)
            if len(raw) != 2 * count:
                raise ImageFormatError(
                    "truncated 16-bit PGM payload: expected %d bytes, got %d"
                    % (2 * count, len(raw))
                )
            pixels = [
                (raw[2 * i] << 8) | raw[2 * i + 1] for i in range(count)
            ]
    else:  # P2: ASCII samples
        text = source.read().decode("ascii", errors="strict")
        values = text.split()
        if len(values) < count:
            raise ImageFormatError(
                "truncated ASCII PGM: expected %d samples, got %d" % (count, len(values))
            )
        try:
            pixels = [int(v) for v in values[:count]]
        except ValueError as exc:
            raise ImageFormatError("non-numeric sample in ASCII PGM") from exc

    for value in pixels:
        if value > maxval:
            raise ImageFormatError("sample %d exceeds PGM maxval %d" % (value, maxval))
    return GrayImage(width, height, pixels, bit_depth)


def write_pgm(image: GrayImage, destination: _PathOrFile, binary: bool = True) -> None:
    """Write ``image`` as a PGM file (P5 when ``binary`` else P2)."""
    if isinstance(destination, (str, Path)):
        with open(destination, "wb") as handle:
            write_pgm(image, handle, binary=binary)
        return

    maxval = image.max_value
    header = "%s\n%d %d\n%d\n" % ("P5" if binary else "P2", image.width, image.height, maxval)
    destination.write(header.encode("ascii"))
    if binary:
        destination.write(image.to_bytes())
    else:
        text = io.StringIO()
        for y in range(image.height):
            text.write(" ".join(str(v) for v in image.row(y)))
            text.write("\n")
        destination.write(text.getvalue().encode("ascii"))
