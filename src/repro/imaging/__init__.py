"""Imaging substrate: containers, file I/O, synthetic corpus and metrics.

* :mod:`repro.imaging.image` — the :class:`~repro.imaging.image.GrayImage`
  container every codec consumes and produces.
* :mod:`repro.imaging.pnm` — PGM (P2/P5) reading and writing so the CLI can
  operate on real files.
* :mod:`repro.imaging.synthetic` — the deterministic synthetic corpus that
  stands in for the paper's seven 512×512 test images (see DESIGN.md for the
  substitution rationale).
* :mod:`repro.imaging.metrics` — entropy, bits-per-pixel and comparison
  helpers used by the benchmark harness.
"""

from repro.imaging.image import GrayImage
from repro.imaging.metrics import (
    bits_per_pixel,
    compression_ratio,
    first_order_entropy,
    images_identical,
    mean_absolute_error,
)
from repro.imaging.pnm import read_pgm, write_pgm
from repro.imaging.synthetic import (
    CORPUS_IMAGE_NAMES,
    generate_corpus,
    generate_image,
)

__all__ = [
    "GrayImage",
    "read_pgm",
    "write_pgm",
    "generate_corpus",
    "generate_image",
    "CORPUS_IMAGE_NAMES",
    "first_order_entropy",
    "bits_per_pixel",
    "compression_ratio",
    "images_identical",
    "mean_absolute_error",
]
