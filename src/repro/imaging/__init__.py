"""Imaging substrate: containers, file I/O, synthetic corpus and metrics.

* :mod:`repro.imaging.image` — the :class:`~repro.imaging.image.GrayImage`
  container every codec consumes and produces.
* :mod:`repro.imaging.planar` — the multi-component
  :class:`~repro.imaging.planar.PlanarImage` container (RGB and arbitrary
  N-band stacks of co-registered planes).
* :mod:`repro.imaging.pnm` — Netpbm reading and writing (PGM for grey,
  PPM for RGB, PAM for N-band) so the CLI can operate on real files.
* :mod:`repro.imaging.synthetic` — the deterministic synthetic corpus that
  stands in for the paper's seven 512×512 test images (see DESIGN.md for the
  substitution rationale), including multi-component variants.
* :mod:`repro.imaging.metrics` — entropy, bits-per-pixel and comparison
  helpers used by the benchmark harness.
"""

from repro.imaging.image import GrayImage
from repro.imaging.metrics import (
    bits_per_pixel,
    compression_ratio,
    first_order_entropy,
    images_identical,
    mean_absolute_error,
)
from repro.imaging.planar import PlanarImage
from repro.imaging.pnm import (
    read_image,
    read_pam,
    read_pgm,
    read_ppm,
    write_image,
    write_pam,
    write_pgm,
    write_ppm,
)
from repro.imaging.synthetic import (
    CORPUS_IMAGE_NAMES,
    generate_corpus,
    generate_image,
    generate_planar_image,
)

__all__ = [
    "GrayImage",
    "PlanarImage",
    "read_pgm",
    "write_pgm",
    "read_ppm",
    "write_ppm",
    "read_pam",
    "write_pam",
    "read_image",
    "write_image",
    "generate_corpus",
    "generate_image",
    "generate_planar_image",
    "CORPUS_IMAGE_NAMES",
    "first_order_entropy",
    "bits_per_pixel",
    "compression_ratio",
    "images_identical",
    "mean_absolute_error",
]
