"""Multi-component (planar) image container.

:class:`PlanarImage` holds ``N`` co-registered sample planes — RGB colour,
multi-band sensor payloads, or any stack of equally sized components — as a
tuple of :class:`~repro.imaging.image.GrayImage` planes sharing one geometry
and bit depth.  The codecs treat every plane as an independent grey-scale
image (optionally after the inter-plane delta predictor of
:mod:`repro.core.components`), which is what lets the single-plane pipeline
serve colour traffic unchanged.

Planes are stored planar (one full plane after another), not interleaved;
the PPM/PAM readers in :mod:`repro.imaging.pnm` de-interleave on load.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ImageFormatError
from repro.imaging.image import GrayImage

__all__ = ["PlanarImage", "MAX_PLANES", "RGB_PLANE_NAMES", "default_plane_names"]

#: Largest number of components a :class:`PlanarImage` (and the version-3
#: container, which stores the count in one byte) can carry.
MAX_PLANES = 255

#: Conventional plane labels applied to three-plane images.
RGB_PLANE_NAMES: Tuple[str, ...] = ("R", "G", "B")


def default_plane_names(count: int) -> Tuple[str, ...]:
    """Conventional plane labels: R/G/B for three planes, unnamed otherwise."""
    return RGB_PLANE_NAMES if count == 3 else ("",) * count


class PlanarImage:
    """An immutable stack of ``N`` equally sized, equally deep sample planes.

    Parameters
    ----------
    planes:
        The component planes, in order (e.g. R, G, B).  Every plane must have
        the same width, height and bit depth; between 1 and ``MAX_PLANES``
        planes are accepted.
    name:
        Optional label used in reports.

    Equality compares geometry, bit depth and samples — plane labels and the
    image name are ignored, mirroring :class:`GrayImage`.
    """

    __slots__ = ("_planes", "_name")

    def __init__(self, planes: Iterable[GrayImage], name: str = "") -> None:
        plane_tuple = tuple(planes)
        if not 1 <= len(plane_tuple) <= MAX_PLANES:
            raise ImageFormatError(
                "a planar image needs 1-%d planes, got %d" % (MAX_PLANES, len(plane_tuple))
            )
        first = plane_tuple[0]
        if not isinstance(first, GrayImage):
            raise ImageFormatError(
                "planes must be GrayImage instances, got %s" % type(first).__name__
            )
        for index, plane in enumerate(plane_tuple[1:], start=1):
            if not isinstance(plane, GrayImage):
                raise ImageFormatError(
                    "planes must be GrayImage instances, got %s" % type(plane).__name__
                )
            if (
                plane.width != first.width
                or plane.height != first.height
                or plane.bit_depth != first.bit_depth
            ):
                raise ImageFormatError(
                    "plane %d is %dx%d depth=%d but plane 0 is %dx%d depth=%d"
                    % (
                        index,
                        plane.width,
                        plane.height,
                        plane.bit_depth,
                        first.width,
                        first.height,
                        first.bit_depth,
                    )
                )
        self._planes = plane_tuple
        self._name = name

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_array(
        cls,
        array: np.ndarray,
        bit_depth: int = 8,
        name: str = "",
        plane_names: Optional[Sequence[str]] = None,
    ) -> "PlanarImage":
        """Build a planar image from an ``(H, W, C)`` numpy array."""
        if array.ndim != 3:
            raise ImageFormatError(
                "expected an (H, W, C) array, got %d dimensions" % array.ndim
            )
        height, width, count = array.shape
        if not 1 <= count <= MAX_PLANES:
            raise ImageFormatError(
                "a planar image needs 1-%d planes, got %d" % (MAX_PLANES, count)
            )
        if plane_names is None:
            plane_names = default_plane_names(count)
        elif len(plane_names) != count:
            raise ImageFormatError(
                "got %d plane names for %d planes" % (len(plane_names), count)
            )
        planes = [
            GrayImage.from_array(array[:, :, k], bit_depth=bit_depth, name=plane_names[k])
            for k in range(count)
        ]
        return cls(planes, name=name)

    @classmethod
    def from_gray(cls, image: GrayImage, name: str = "") -> "PlanarImage":
        """Wrap a grey-scale image as a one-plane planar image."""
        return cls([image], name=name or image.name)

    @classmethod
    def rgb(cls, red: GrayImage, green: GrayImage, blue: GrayImage, name: str = "") -> "PlanarImage":
        """Build a three-plane colour image with conventional plane labels."""
        return cls(
            [
                red.with_name("R"),
                green.with_name("G"),
                blue.with_name("B"),
            ],
            name=name,
        )

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def width(self) -> int:
        return self._planes[0].width

    @property
    def height(self) -> int:
        return self._planes[0].height

    @property
    def bit_depth(self) -> int:
        return self._planes[0].bit_depth

    @property
    def name(self) -> str:
        return self._name

    @property
    def num_planes(self) -> int:
        return len(self._planes)

    @property
    def max_value(self) -> int:
        """Largest representable sample value."""
        return self._planes[0].max_value

    @property
    def pixel_count(self) -> int:
        """Pixels per plane (not total samples; see :attr:`sample_count`)."""
        return self._planes[0].pixel_count

    @property
    def sample_count(self) -> int:
        """Total number of samples across all planes."""
        return self.pixel_count * self.num_planes

    @property
    def plane_names(self) -> Tuple[str, ...]:
        return tuple(plane.name for plane in self._planes)

    def plane(self, index: int) -> GrayImage:
        """Return component plane ``index`` (bounds-checked)."""
        if not 0 <= index < len(self._planes):
            raise ImageFormatError(
                "plane %d outside image of %d planes" % (index, len(self._planes))
            )
        return self._planes[index]

    def planes(self) -> Tuple[GrayImage, ...]:
        """Return all planes, in order."""
        return self._planes

    def to_array(self) -> np.ndarray:
        """Return the image as an ``(H, W, C)`` numpy array of int64."""
        return np.stack([plane.to_array() for plane in self._planes], axis=-1)

    def interleaved_samples(self) -> List[int]:
        """Return samples in pixel-interleaved order (r g b r g b ...)."""
        return self.to_array().reshape(-1).tolist()

    def gray(self) -> GrayImage:
        """Unwrap a single-plane image back to :class:`GrayImage`."""
        if len(self._planes) != 1:
            raise ImageFormatError(
                "cannot view a %d-plane image as grey-scale" % len(self._planes)
            )
        return self._planes[0]

    def with_name(self, name: str) -> "PlanarImage":
        """Return a copy of this image carrying a different label."""
        return PlanarImage(self._planes, name=name)

    # ------------------------------------------------------------------ #
    # dunder methods
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlanarImage):
            return NotImplemented
        return self._planes == other._planes

    def __hash__(self) -> int:
        return hash(self._planes)

    def __repr__(self) -> str:
        label = " %r" % self._name if self._name else ""
        return "<PlanarImage%s %dx%dx%d depth=%d>" % (
            label,
            self.width,
            self.height,
            self.num_planes,
            self.bit_depth,
        )
