"""Image and bitstream metrics used by the benchmark harness.

The paper reports *bit rate* in bits per pixel (bpp): compressed size in bits
divided by the number of pixels.  This module provides that computation plus
the supporting statistics (first-order entropy, compression ratio, residual
statistics) the examples and EXPERIMENTS.md rely on.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, Sequence

import numpy as np

from repro.exceptions import ImageFormatError
from repro.imaging.image import GrayImage

__all__ = [
    "first_order_entropy",
    "bits_per_pixel",
    "compression_ratio",
    "images_identical",
    "mean_absolute_error",
    "residual_entropy",
    "gradient_statistics",
    "histogram",
]


def histogram(image: GrayImage) -> Dict[int, int]:
    """Return the pixel-value histogram as a dict ``value -> count``."""
    return dict(Counter(image.iter_pixels()))


def first_order_entropy(image: GrayImage) -> float:
    """Zeroth-order (memoryless) entropy of the pixel values, in bits/pixel."""
    counts = Counter(image.iter_pixels())
    total = image.pixel_count
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def residual_entropy(image: GrayImage) -> float:
    """Entropy of the horizontal first-difference signal, in bits/pixel.

    A quick estimate of how predictable the image is; lossless codecs with a
    good predictor land below this number, simple DPCM schemes land near it.
    """
    array = image.to_array()
    left = np.concatenate([array[:, :1], array[:, :-1]], axis=1)
    residual = (array - left).reshape(-1)
    counts = Counter(int(v) for v in residual)
    total = residual.size
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def gradient_statistics(image: GrayImage) -> Dict[str, float]:
    """Mean absolute horizontal/vertical gradients (texture indicators)."""
    array = image.to_array().astype(np.float64)
    dh = np.abs(np.diff(array, axis=1))
    dv = np.abs(np.diff(array, axis=0))
    return {
        "mean_abs_dh": float(np.mean(dh)) if dh.size else 0.0,
        "mean_abs_dv": float(np.mean(dv)) if dv.size else 0.0,
        "std": float(np.std(array)),
    }


def bits_per_pixel(compressed: bytes, image: GrayImage) -> float:
    """Bit rate of ``compressed`` relative to ``image`` (bits per pixel)."""
    if image.pixel_count == 0:
        raise ImageFormatError("cannot compute bpp of an empty image")
    return 8.0 * len(compressed) / image.pixel_count


def compression_ratio(compressed: bytes, image: GrayImage) -> float:
    """Uncompressed bits divided by compressed bits (higher is better)."""
    compressed_bits = 8 * len(compressed)
    if compressed_bits == 0:
        raise ImageFormatError("cannot compute ratio of an empty bitstream")
    return image.pixel_count * image.bit_depth / compressed_bits


def images_identical(first: GrayImage, second: GrayImage) -> bool:
    """True when both images have identical geometry, depth and samples."""
    return (
        first.width == second.width
        and first.height == second.height
        and first.bit_depth == second.bit_depth
        and first.pixels() == second.pixels()
    )


def mean_absolute_error(first: GrayImage, second: GrayImage) -> float:
    """Mean absolute pixel difference (0.0 for a correct lossless codec)."""
    if first.width != second.width or first.height != second.height:
        raise ImageFormatError(
            "cannot compare %dx%d with %dx%d"
            % (first.width, first.height, second.width, second.height)
        )
    a = first.to_array()
    b = second.to_array()
    return float(np.mean(np.abs(a - b)))


def average_bits_per_pixel(results: Iterable[float]) -> float:
    """Arithmetic mean of a sequence of per-image bit rates (Table 1 bottom row)."""
    values: Sequence[float] = list(results)
    if not values:
        raise ImageFormatError("cannot average an empty result set")
    return sum(values) / len(values)
