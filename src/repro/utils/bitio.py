"""MSB-first bit-level I/O.

Every entropy coder in this package (binary arithmetic coder, multi-symbol
arithmetic coder, Golomb-Rice coder) reads and writes individual bits.  The
classes in this module provide a single, well-tested implementation of that
machinery so the coders themselves only deal with coding decisions.

Bit order is *most significant bit first* inside every byte, which matches the
conventional presentation of arithmetic-coded and Rice-coded bitstreams and
makes the streams easy to inspect in a hex dump.

The three classes are:

``BitWriter``
    accumulates bits and exposes the result as :class:`bytes`.

``BitReader``
    consumes bits from a :class:`bytes`-like object and raises
    :class:`~repro.exceptions.BitstreamError` on over-read (decoders must
    never silently read past the end of a truncated stream).

``BitCounter``
    a sink with the same interface as ``BitWriter`` that only counts bits.
    It is used by the bit-rate estimation paths of the benchmark harness where
    the actual bytes are irrelevant.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.exceptions import BitstreamError

__all__ = ["BitWriter", "BitReader", "BitCounter"]


class BitWriter:
    """Accumulate bits MSB-first and return them as bytes.

    Example
    -------
    >>> w = BitWriter()
    >>> w.write_bit(1)
    >>> w.write_bits(0b0101, 4)
    >>> w.align_to_byte()
    >>> w.getvalue().hex()
    'a8'
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current = 0
        self._filled = 0
        self._bit_count = 0

    @property
    def bit_count(self) -> int:
        """Total number of bits written so far (before any alignment padding)."""
        return self._bit_count

    def write_bit(self, bit: int) -> None:
        """Append a single bit (anything truthy counts as 1)."""
        self._current = (self._current << 1) | (1 if bit else 0)
        self._filled += 1
        self._bit_count += 1
        if self._filled == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, most significant bit first."""
        if width < 0:
            raise ValueError("width must be non-negative, got %d" % width)
        if value < 0:
            raise ValueError("value must be non-negative, got %d" % value)
        if width and value >> width:
            raise ValueError(
                "value %d does not fit in %d bits" % (value, width)
            )
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """Append ``value`` zero bits followed by a single one bit."""
        if value < 0:
            raise ValueError("unary value must be non-negative, got %d" % value)
        self.write_run(0, value)
        self.write_bit(1)

    def write_run(self, bit: int, count: int) -> None:
        """Append ``count`` copies of ``bit`` (batched bit I/O).

        Equivalent to calling :meth:`write_bit` ``count`` times, but whole
        bytes inside the run are appended directly to the buffer.  The
        arithmetic coder's carry-resolution bursts (one decision can release
        many pending bits at once) go through this path.
        """
        if count < 0:
            raise ValueError("run length must be non-negative, got %d" % count)
        bit = 1 if bit else 0
        # Bit-by-bit until byte-aligned (or the run is exhausted).
        while count and self._filled:
            self.write_bit(bit)
            count -= 1
        whole_bytes, tail = divmod(count, 8)
        if whole_bytes:
            self._buffer.extend((0xFF if bit else 0x00,) * whole_bytes)
            self._bit_count += 8 * whole_bytes
        for _ in range(tail):
            self.write_bit(bit)

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes (the writer need not be byte-aligned)."""
        for byte in data:
            self.write_bits(byte, 8)

    def extend(self, bits: Iterable[int]) -> None:
        """Append an iterable of individual bits."""
        for bit in bits:
            self.write_bit(bit)

    def align_to_byte(self, fill_bit: int = 0) -> int:
        """Pad with ``fill_bit`` until byte-aligned; return number of pad bits."""
        padded = 0
        while self._filled:
            self.write_bit(fill_bit)
            padded += 1
        self._bit_count -= padded  # padding is framing, not payload
        return padded

    def getvalue(self) -> bytes:
        """Return the bytes written so far, padding the last byte with zeros.

        The writer remains usable afterwards; the padding is not committed to
        the internal buffer.
        """
        if self._filled == 0:
            return bytes(self._buffer)
        tail = self._current << (8 - self._filled)
        return bytes(self._buffer) + bytes([tail])

    def __len__(self) -> int:
        return len(self.getvalue())


class BitReader:
    """Consume bits MSB-first from a bytes-like object.

    Parameters
    ----------
    data:
        The buffer to read from.
    max_phantom_bits:
        Upper bound on the number of phantom zero bits
        :meth:`read_bit_or_zero` may serve past the end of the buffer.
        ``None`` (the default) keeps the historical unlimited behaviour;
        decoders of untrusted streams should pass a small multiple of their
        register width so a corrupt header cannot make them decode from an
        endless supply of phantom zeros.

    Raises
    ------
    BitstreamError
        when more bits are requested than the buffer contains.
    """

    def __init__(self, data: bytes, max_phantom_bits: Optional[int] = None) -> None:
        self._data = bytes(data)
        self._byte_pos = 0
        self._bit_pos = 0
        self._phantom_bits = 0
        self._max_phantom_bits = max_phantom_bits

    @property
    def bits_consumed(self) -> int:
        """Number of bits handed out so far."""
        return self._byte_pos * 8 + self._bit_pos

    @property
    def bits_remaining(self) -> int:
        """Number of bits still available."""
        return len(self._data) * 8 - self.bits_consumed

    def read_bit(self) -> int:
        """Return the next bit (0 or 1)."""
        if self._byte_pos >= len(self._data):
            raise BitstreamError(
                "bitstream exhausted after %d bits" % self.bits_consumed
            )
        byte = self._data[self._byte_pos]
        bit = (byte >> (7 - self._bit_pos)) & 1
        self._bit_pos += 1
        if self._bit_pos == 8:
            self._bit_pos = 0
            self._byte_pos += 1
        return bit

    def read_bit_or_zero(self) -> int:
        """Return the next bit, or 0 once the stream is exhausted.

        Arithmetic decoders legitimately read a handful of bits past the last
        payload bit while flushing their registers; those phantom bits are
        zero by convention.  When ``max_phantom_bits`` was given, exceeding it
        raises :class:`BitstreamError` — a decoder that keeps asking for data
        long after the stream ended is decoding a corrupt stream.
        """
        if self._byte_pos >= len(self._data):
            self._phantom_bits += 1
            if (
                self._max_phantom_bits is not None
                and self._phantom_bits > self._max_phantom_bits
            ):
                raise BitstreamError(
                    "read %d bits past the end of a %d-byte bitstream; "
                    "the stream is truncated or corrupt"
                    % (self._phantom_bits, len(self._data))
                )
            return 0
        return self.read_bit()

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits MSB-first and return them as an unsigned int."""
        if width < 0:
            raise ValueError("width must be non-negative, got %d" % width)
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self, limit: int = 1 << 20) -> int:
        """Read a unary code (count of zeros before the terminating one).

        ``limit`` bounds the number of zero bits so a corrupted stream cannot
        spin forever; exceeding it raises :class:`BitstreamError`.
        """
        count = 0
        while True:
            if self.read_bit():
                return count
            count += 1
            if count > limit:
                raise BitstreamError(
                    "unary run exceeded limit of %d bits" % limit
                )

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` whole bytes (reader need not be byte-aligned)."""
        return bytes(self.read_bits(8) for _ in range(count))

    def align_to_byte(self) -> None:
        """Skip forward to the next byte boundary."""
        if self._bit_pos:
            self._bit_pos = 0
            self._byte_pos += 1


class BitCounter:
    """A write-only sink that counts bits instead of storing them.

    It implements the subset of the :class:`BitWriter` interface the entropy
    coders use, so a coder can be pointed at a ``BitCounter`` to measure a
    code length without materialising the bytes.
    """

    def __init__(self) -> None:
        self._bit_count = 0

    @property
    def bit_count(self) -> int:
        return self._bit_count

    def write_bit(self, bit: int) -> None:  # noqa: ARG002 - value irrelevant
        self._bit_count += 1

    def write_bits(self, value: int, width: int) -> None:  # noqa: ARG002
        if width < 0:
            raise ValueError("width must be non-negative, got %d" % width)
        self._bit_count += width

    def write_unary(self, value: int) -> None:
        if value < 0:
            raise ValueError("unary value must be non-negative, got %d" % value)
        self._bit_count += value + 1

    def write_run(self, bit: int, count: int) -> None:  # noqa: ARG002
        if count < 0:
            raise ValueError("run length must be non-negative, got %d" % count)
        self._bit_count += count

    def write_bytes(self, data: bytes) -> None:
        self._bit_count += 8 * len(data)

    def align_to_byte(self, fill_bit: int = 0) -> int:  # noqa: ARG002
        pad = (-self._bit_count) % 8
        self._bit_count += pad
        return pad

    def getvalue(self) -> bytes:
        raise NotImplementedError("BitCounter does not store bytes")


def bits_to_bytes(bits: List[int]) -> bytes:
    """Pack a list of bits (MSB-first) into bytes, zero-padding the tail."""
    writer = BitWriter()
    writer.extend(bits)
    return writer.getvalue()


def bytes_to_bits(data: bytes) -> List[int]:
    """Unpack bytes into a list of bits, MSB-first."""
    reader = BitReader(data)
    return [reader.read_bit() for _ in range(8 * len(data))]
