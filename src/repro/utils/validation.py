"""Argument-validation helpers used at the public API boundary.

The internal per-pixel loops avoid re-validating their inputs (they run
hundreds of thousands of times per image); instead every public entry point
checks its arguments once with these helpers and raises
:class:`~repro.exceptions.ConfigError` with an actionable message.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union

from repro.exceptions import ConfigError

__all__ = [
    "require_type",
    "require_positive",
    "require_in_range",
    "require_power_of_two",
]


def require_type(name: str, value: Any, types: Union[Type, Tuple[Type, ...]]) -> None:
    """Raise :class:`ConfigError` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = " or ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise ConfigError(
            "%s must be %s, got %s" % (name, expected, type(value).__name__)
        )


def require_positive(name: str, value: int) -> None:
    """Raise :class:`ConfigError` unless ``value`` is a positive integer."""
    require_type(name, value, int)
    if isinstance(value, bool) or value <= 0:
        raise ConfigError("%s must be a positive integer, got %r" % (name, value))


def require_in_range(name: str, value: int, low: int, high: int) -> None:
    """Raise :class:`ConfigError` unless ``low <= value <= high``."""
    require_type(name, value, int)
    if isinstance(value, bool) or not low <= value <= high:
        raise ConfigError(
            "%s must be in [%d, %d], got %r" % (name, low, high, value)
        )


def require_power_of_two(name: str, value: int) -> None:
    """Raise :class:`ConfigError` unless ``value`` is a positive power of two."""
    require_positive(name, value)
    if value & (value - 1):
        raise ConfigError("%s must be a power of two, got %d" % (name, value))
