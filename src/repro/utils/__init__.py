"""Low-level utilities shared by the codecs and the hardware model.

The sub-modules are intentionally tiny and dependency-free:

* :mod:`repro.utils.bitio` — MSB-first bit-level readers and writers.
* :mod:`repro.utils.fixedpoint` — bounded hardware-style registers and
  counters (saturation, wrapping, halving rescale).
* :mod:`repro.utils.validation` — argument-checking helpers used by public
  entry points.
"""

from repro.utils.bitio import BitReader, BitWriter, BitCounter
from repro.utils.fixedpoint import (
    SaturatingCounter,
    SignedRegister,
    UnsignedRegister,
    clamp,
    signed_width,
    unsigned_width,
)
from repro.utils.validation import (
    require_in_range,
    require_positive,
    require_power_of_two,
    require_type,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "BitCounter",
    "SaturatingCounter",
    "SignedRegister",
    "UnsignedRegister",
    "clamp",
    "signed_width",
    "unsigned_width",
    "require_in_range",
    "require_positive",
    "require_power_of_two",
    "require_type",
]
