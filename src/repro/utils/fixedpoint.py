"""Hardware-style bounded integer registers.

The paper's architecture stores its adaptive state in narrow registers:

* the per-context error *count* is a 5-bit counter that is halved when it
  saturates at 31 (the "Overflow Guard"),
* the per-context error *sum* is a 13-bit magnitude plus a sign bit,
* the probability-estimator frequency counts are 10-16 bit counters that are
  halved when they reach their maximum.

These classes model that behaviour explicitly so the hardware-faithful codec
path manipulates the same quantities the RTL would, and so the resource
estimator can ask a register for its width.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "clamp",
    "unsigned_width",
    "signed_width",
    "UnsignedRegister",
    "SignedRegister",
    "SaturatingCounter",
]


def clamp(value: int, low: int, high: int) -> int:
    """Clamp ``value`` into the inclusive range ``[low, high]``."""
    if low > high:
        raise ValueError("empty clamp range [%d, %d]" % (low, high))
    if value < low:
        return low
    if value > high:
        return high
    return value


def unsigned_width(max_value: int) -> int:
    """Number of bits needed to store values ``0 .. max_value``."""
    if max_value < 0:
        raise ValueError("max_value must be non-negative, got %d" % max_value)
    return max(1, max_value.bit_length())


def signed_width(min_value: int, max_value: int) -> int:
    """Number of bits (two's complement) needed for ``min_value .. max_value``."""
    if min_value > max_value:
        raise ValueError("min_value %d exceeds max_value %d" % (min_value, max_value))
    width = 1
    while not (-(1 << (width - 1)) <= min_value and max_value <= (1 << (width - 1)) - 1):
        width += 1
    return width


@dataclass
class UnsignedRegister:
    """An unsigned register of fixed ``width`` bits with saturating writes.

    Attributes
    ----------
    width:
        Register width in bits.
    value:
        Current contents, always in ``[0, 2**width - 1]``.
    """

    width: int
    value: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("register width must be positive, got %d" % self.width)
        self.value = clamp(self.value, 0, self.max_value)

    @property
    def max_value(self) -> int:
        return (1 << self.width) - 1

    def load(self, value: int) -> None:
        """Store ``value``, saturating at the register bounds."""
        self.value = clamp(value, 0, self.max_value)

    def add(self, delta: int) -> None:
        """Add ``delta``, saturating at the register bounds."""
        self.load(self.value + delta)

    def halve(self) -> None:
        """Arithmetic right shift by one bit (the rescale operation)."""
        self.value >>= 1

    def is_saturated(self) -> bool:
        return self.value >= self.max_value


@dataclass
class SignedRegister:
    """A sign-magnitude register: ``magnitude_bits`` plus one sign bit.

    The paper stores the per-context error sum this way (13 bits + sign).
    Writes saturate at plus/minus the maximum magnitude.
    """

    magnitude_bits: int
    value: int = 0

    def __post_init__(self) -> None:
        if self.magnitude_bits <= 0:
            raise ValueError(
                "magnitude_bits must be positive, got %d" % self.magnitude_bits
            )
        self.value = clamp(self.value, -self.max_magnitude, self.max_magnitude)

    @property
    def max_magnitude(self) -> int:
        return (1 << self.magnitude_bits) - 1

    @property
    def width(self) -> int:
        """Total storage width including the sign bit."""
        return self.magnitude_bits + 1

    def load(self, value: int) -> None:
        self.value = clamp(value, -self.max_magnitude, self.max_magnitude)

    def add(self, delta: int) -> None:
        self.load(self.value + delta)

    def halve(self) -> None:
        """Halve the magnitude, preserving the sign (truncating towards zero)."""
        sign = -1 if self.value < 0 else 1
        self.value = sign * (abs(self.value) >> 1)


@dataclass
class SaturatingCounter:
    """An unsigned counter that halves itself when it reaches its maximum.

    This is the behaviour of both the Overflow Guard (5-bit error counts) and
    the probability-estimator frequency counts (10-16 bits): incrementing a
    counter that already holds its maximum value triggers a rescale instead of
    wrapping.

    The ``rescaled`` flag of :meth:`increment` lets the caller halve any
    companion state (the error *sum*, the sibling tree counts) in the same
    cycle, which is exactly what the hardware does.
    """

    width: int
    value: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("counter width must be positive, got %d" % self.width)
        self.value = clamp(self.value, 0, self.max_value)

    @property
    def max_value(self) -> int:
        return (1 << self.width) - 1

    def increment(self, step: int = 1) -> bool:
        """Add ``step``; halve first if that would exceed the maximum.

        Returns ``True`` when a rescale (halving) happened so companion state
        can be halved too.
        """
        if step < 0:
            raise ValueError("step must be non-negative, got %d" % step)
        rescaled = False
        if self.value + step > self.max_value:
            self.value >>= 1
            rescaled = True
        self.value = min(self.value + step, self.max_value)
        return rescaled

    def halve(self) -> None:
        self.value >>= 1
