"""Typed exceptions raised across the :mod:`repro` package.

Every error condition that a caller may reasonably want to catch has its own
exception class.  All of them derive from :class:`ReproError` so that a
blanket ``except ReproError`` catches anything this library raises on purpose
while letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class BitstreamError(ReproError):
    """A compressed bitstream is malformed, truncated or inconsistent."""


class HeaderError(BitstreamError):
    """A container header is missing, corrupted or of an unsupported version."""


class ConfigError(ReproError):
    """A configuration object holds values outside their legal range."""


class ImageFormatError(ReproError):
    """An image file or buffer cannot be parsed or has unsupported properties."""


class CodecMismatchError(ReproError):
    """Decoder configuration does not match the configuration used to encode."""


class ModelStateError(ReproError):
    """An adaptive model reached an internal state that violates an invariant."""


class HardwareModelError(ReproError):
    """The hardware resource/timing model was asked for something impossible."""


class StripingError(ReproError):
    """A stripe-parallel partition request cannot be satisfied."""


class CorpusError(ReproError):
    """A synthetic-corpus request referenced an unknown image or bad parameters."""


class StoreError(ReproError):
    """An image-store operation failed (backend I/O, bad key, bad request)."""


class BlobNotFoundError(StoreError):
    """A store lookup referenced a key the backend does not hold."""


class ServeError(ReproError):
    """The network serving tier hit a protocol or transport failure.

    Raised by the ``repro-serve`` client for non-2xx responses (the HTTP
    status is carried in :attr:`status`) and by the server's request
    parser for malformed or oversized HTTP traffic.
    """

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class DeadlineExceededError(ServeError):
    """A request ran past its deadline (or its client went away).

    Raised cooperatively inside decode work when the request context
    expires, by coalesced followers whose own deadline lapses before the
    flight leader finishes, and by the HTTP layer when the thread-pool
    offload outlives the request budget.  Answered as ``504``.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message, status=504)


class OverloadedError(ServeError):
    """The server shed a request to protect itself (admission control).

    Carries the ``Retry-After`` hint the HTTP layer should attach to the
    ``429`` answer.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message, status=429)
        self.retry_after = retry_after


class RemoteBadRequestError(ServeError):
    """The server answered with envelope code ``bad_request`` (or a
    protocol rejection): the request itself was malformed."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message, status=status)


class RemoteNotFoundError(ServeError):
    """The server answered with envelope code ``not_found``."""

    def __init__(self, message: str, status: int = 404) -> None:
        super().__init__(message, status=status)


class ServerDrainingError(ServeError):
    """The server answered with envelope code ``draining`` — it is
    shutting down gracefully and stopped taking new requests."""

    def __init__(self, message: str, status: int = 503) -> None:
        super().__init__(message, status=status)


class UpstreamUnhealthyError(ServeError):
    """The server answered with envelope code ``upstream_unhealthy``:
    every replica (or worker process) that could serve the request was
    unreachable.  Retryable — failover may heal before the next try."""

    def __init__(self, message: str, status: int = 503) -> None:
        super().__init__(message, status=status)
