"""General-data compression front-end ("Lossless Data Modelling" of Fig. 1).

The universal compressor needs a path for data that is not an image.  The
paper's companion work (Nunez-Yanez & Chouliaras, reference [7]) uses a
variable-order Markov byte model feeding the same arithmetic coder as the
image path; this module implements that front-end as an order-``k`` adaptive
context model (:class:`repro.entropy.models.AdaptiveByteModel`) driving the
multi-symbol arithmetic coder.

The codec is self-contained (it wraps its payload in the shared container)
so it can also be used directly for file compression from the CLI.
"""

from __future__ import annotations


from repro.core.bitstream import CodecId, pack_stream, unpack_stream
from repro.entropy.arithmetic import DEFAULT_PRECISION, ArithmeticDecoder, ArithmeticEncoder
from repro.entropy.models import AdaptiveByteModel
from repro.exceptions import CodecMismatchError, ConfigError
from repro.utils.bitio import BitReader, BitWriter

__all__ = ["GeneralDataCodec"]


class GeneralDataCodec:
    """Order-``k`` context-modelling byte compressor.

    Parameters
    ----------
    order:
        Number of previous bytes used as context (0-4 are practical).
    increment / max_total:
        Adaptation parameters of the per-context frequency models.
    """

    name = "general-data"

    def __init__(self, order: int = 2, increment: int = 24, max_total: int = 1 << 14) -> None:
        if not 0 <= order <= 8:
            raise ConfigError("context order must be in [0, 8], got %d" % order)
        self.order = order
        self.increment = increment
        self.max_total = max_total

    def _new_model(self) -> AdaptiveByteModel:
        return AdaptiveByteModel(
            order=self.order, increment=self.increment, max_total=self.max_total
        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def encode(self, data: bytes) -> bytes:
        """Compress a byte string into a self-contained container."""
        model = self._new_model()
        writer = BitWriter()
        coder = ArithmeticEncoder(writer)
        for byte in data:
            conditioned = model.current_model()
            low, high, total = conditioned.interval(byte)
            coder.encode(low, high, total)
            model.observe(byte)
        coder.finish()
        payload = writer.getvalue()
        # Width carries the byte count; height 1 keeps the container schema.
        return pack_stream(
            CodecId.GENERAL_DATA,
            max(1, len(data)),
            1,
            8,
            payload,
            parameter=self.order,
            flags=1 if len(data) == 0 else 0,
        )

    def decode(self, stream: bytes) -> bytes:
        """Reconstruct the exact byte string from :meth:`encode` output."""
        header, payload = unpack_stream(stream)
        if header.codec != CodecId.GENERAL_DATA:
            raise CodecMismatchError(
                "stream was produced by %s, not the general-data codec" % header.codec.name
            )
        if header.parameter != self.order:
            raise CodecMismatchError(
                "stream was encoded with order %d, decoder configured with %d"
                % (header.parameter, self.order)
            )
        if header.flags & 1:
            return b""
        length = header.width
        model = self._new_model()
        # Bound phantom reads so a corrupt length field raises instead of
        # decoding forever from zero bits past the end of the payload.
        reader = BitReader(payload, max_phantom_bits=4 * DEFAULT_PRECISION)
        coder = ArithmeticDecoder(reader)
        out = bytearray()
        for _ in range(length):
            conditioned = model.current_model()
            target = coder.decode_target(conditioned.total)
            byte = conditioned.symbol_from_target(target)
            low, high, total = conditioned.interval(byte)
            coder.consume(low, high, total)
            model.observe(byte)
            out.append(byte)
        return bytes(out)

    def compression_ratio(self, data: bytes) -> float:
        """Uncompressed size over compressed size for ``data``."""
        if not data:
            raise ConfigError("cannot compute a ratio for empty input")
        return len(data) / len(self.encode(data))
