"""The dynamically reconfigurable universal compressor (Figure 1).

Figure 1 of the paper shows uncompressed data entering a time-multiplexed
front-end — *Lossless Data Modelling*, *Lossless Image Modelling* or
*Lossless Video Modelling* — whose context-modelling output drives a shared
probability estimator and arithmetic coder.  A reconfiguration controller
("Dynamic Modelling Reconfiguration") switches the active front-end to match
the nature of the incoming data.

This module models that system at the block level:

* each input *block* is either raw bytes or a grey-scale image;
* the dispatcher classifies blocks (explicitly tagged, or sniffed from the
  payload), reconfigures the front-end when the type changes, and records
  every reconfiguration event together with its cost in cycles;
* image blocks go through the proposed codec, data blocks through the
  general-data codec — both share the arithmetic-coding back-end design,
  exactly as the figure describes.

Video modelling (motion estimation + predictive coding in the figure) is out
of the paper's scope — the paper only evaluates the image path — and is left
as an explicit extension point (:attr:`BlockType.VIDEO` raises a clear
error).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.codec import ProposedCodec
from repro.core.config import CodecConfig
from repro.exceptions import ConfigError
from repro.imaging.image import GrayImage
from repro.system.datamodel import GeneralDataCodec

__all__ = ["BlockType", "UniversalCompressor", "UniversalReport", "CompressedBlock"]


class BlockType(enum.Enum):
    """Kinds of input block the universal compressor handles."""

    DATA = "data"
    IMAGE = "image"
    VIDEO = "video"


@dataclass(frozen=True)
class CompressedBlock:
    """One compressed block plus the bookkeeping the report needs."""

    block_type: BlockType
    payload: bytes
    original_size_bytes: int
    reconfigured: bool


@dataclass
class UniversalReport:
    """Summary of one multi-block compression session."""

    blocks: List[CompressedBlock] = field(default_factory=list)
    reconfigurations: int = 0
    reconfiguration_cycles: int = 0

    @property
    def original_bytes(self) -> int:
        return sum(block.original_size_bytes for block in self.blocks)

    @property
    def compressed_bytes(self) -> int:
        return sum(len(block.payload) for block in self.blocks)

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return 0.0
        return self.original_bytes / self.compressed_bytes

    def format_summary(self) -> str:
        return (
            "%d blocks | %d -> %d bytes (ratio %.2f) | %d reconfigurations "
            "(%d cycles of overhead)"
            % (
                len(self.blocks),
                self.original_bytes,
                self.compressed_bytes,
                self.compression_ratio,
                self.reconfigurations,
                self.reconfiguration_cycles,
            )
        )


class UniversalCompressor:
    """Time-multiplexed front-end dispatcher over shared back-end codecs."""

    def __init__(
        self,
        image_config: Optional[CodecConfig] = None,
        data_order: int = 2,
        reconfiguration_cycles: int = 2048,
    ) -> None:
        """``reconfiguration_cycles`` models the cost of loading a different
        modelling front-end into the reconfigurable fabric (partial
        reconfiguration of the FPGA region)."""
        if reconfiguration_cycles < 0:
            raise ConfigError("reconfiguration cost must be non-negative")
        self.image_codec = ProposedCodec(image_config)
        self.data_codec = GeneralDataCodec(order=data_order)
        self.reconfiguration_cycles = reconfiguration_cycles
        self._active: Optional[BlockType] = None

    # ------------------------------------------------------------------ #
    # classification
    # ------------------------------------------------------------------ #

    @staticmethod
    def classify(block: Union[bytes, GrayImage]) -> BlockType:
        """Classify a block by its Python type (images are explicit objects)."""
        if isinstance(block, GrayImage):
            return BlockType.IMAGE
        if isinstance(block, (bytes, bytearray)):
            return BlockType.DATA
        raise ConfigError(
            "unsupported block type %s; expected bytes or GrayImage" % type(block).__name__
        )

    # ------------------------------------------------------------------ #
    # compression
    # ------------------------------------------------------------------ #

    def compress_stream(
        self, blocks: Sequence[Union[bytes, GrayImage]]
    ) -> Tuple[List[CompressedBlock], UniversalReport]:
        """Compress a heterogeneous sequence of blocks.

        Returns the compressed blocks (in order) and the session report with
        reconfiguration accounting.
        """
        report = UniversalReport()
        compressed: List[CompressedBlock] = []
        for block in blocks:
            block_type = self.classify(block)
            reconfigured = block_type is not self._active
            if reconfigured:
                report.reconfigurations += 1
                report.reconfiguration_cycles += self.reconfiguration_cycles
                self._active = block_type

            if block_type is BlockType.IMAGE:
                assert isinstance(block, GrayImage)
                payload = self.image_codec.encode(block)
                original = block.pixel_count * ((block.bit_depth + 7) // 8)
            elif block_type is BlockType.DATA:
                payload = self.data_codec.encode(bytes(block))
                original = len(block)
            else:  # pragma: no cover - VIDEO is a documented extension point
                raise ConfigError("video modelling is not implemented (out of paper scope)")

            entry = CompressedBlock(
                block_type=block_type,
                payload=payload,
                original_size_bytes=original,
                reconfigured=reconfigured,
            )
            compressed.append(entry)
            report.blocks.append(entry)
        return compressed, report

    # ------------------------------------------------------------------ #
    # decompression
    # ------------------------------------------------------------------ #

    def decompress_block(self, block: CompressedBlock) -> Union[bytes, GrayImage]:
        """Reconstruct one block produced by :meth:`compress_stream`."""
        if block.block_type is BlockType.IMAGE:
            return self.image_codec.decode(block.payload)
        if block.block_type is BlockType.DATA:
            return self.data_codec.decode(block.payload)
        raise ConfigError("video blocks cannot be decoded (not implemented)")
