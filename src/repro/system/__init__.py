"""The reconfigurable universal lossless compression system of Figure 1.

The paper positions the image codec as one front-end of a dynamically
reconfigurable compressor that time-multiplexes *data*, *image* and *video*
modelling modules in front of a shared probability estimator and arithmetic
coder.  This package models that system:

* :mod:`repro.system.datamodel` — the "Lossless Data Modelling" front-end: an
  order-k context model over raw bytes that drives the same arithmetic-coder
  back-end as the image path.
* :mod:`repro.system.universal` — the dispatcher: classifies each input block
  (general data vs. grey-scale image), reconfigures the modelling front-end
  accordingly, and tracks the reconfiguration events the way the
  time-multiplexing hardware would.
"""

from repro.system.datamodel import GeneralDataCodec
from repro.system.universal import BlockType, UniversalCompressor, UniversalReport

__all__ = [
    "GeneralDataCodec",
    "UniversalCompressor",
    "UniversalReport",
    "BlockType",
]
