"""Reproduction of Chen et al., "Hardware Architecture for Lossless Image
Compression Based on Context-based Modeling and Arithmetic Coding"
(IEEE SOCC 2007).

The package is organised as follows:

* :mod:`repro.core` — the proposed codec (prediction, context modelling,
  error feedback, probability estimation, binary arithmetic coding).
* :mod:`repro.baselines` — the comparison codecs of Table 1 (JPEG-LS, SLP,
  CALIC).
* :mod:`repro.entropy` — entropy-coding substrate shared by all codecs.
* :mod:`repro.imaging` — image containers (grey-scale and multi-component
  planar), Netpbm I/O (PGM/PPM/PAM), the synthetic test corpus and metrics.
* :mod:`repro.hardware` — the FPGA resource, timing and pipeline models that
  regenerate Table 2 and the throughput claims.
* :mod:`repro.system` — the reconfigurable universal compressor of Figure 1.
* :mod:`repro.fast` — the fast coding engine (row-vectorized modelling +
  inlined entropy back-end); byte-identical streams, selected through
  ``engine="fast"`` on the codec front-ends and the CLI.
* :mod:`repro.parallel` — the stripe-parallel codec subsystem (the paper's
  multi-core option in software: balanced stripe partitioning, a process
  pool with serial fallback and the :class:`ParallelCodec` facade).
* :mod:`repro.store` — the serving layer: a content-addressed image store
  (filesystem or SQLite backed) answering plane/region/batched queries
  straight off the version-3 random-access index through an LRU cache of
  decoded cells.
* :mod:`repro.serve` — the network tier over the store: an asyncio
  HTTP/1.1 service (``repro-serve``) with rendezvous-sharded routing,
  single-flight request coalescing, thread-pool decode offload and
  latency histograms behind ``/stats``; a pure-stdlib client included.
* :mod:`repro.experiments` — the table/figure regeneration harness used by
  the benchmarks, examples and the CLI.

Coding engines are pluggable: :mod:`repro.core.interface` hosts the engine
registry (``register_engine`` / ``get_engine``) through which every
front-end dispatches, with ``"reference"`` (:mod:`repro.core.refengine`)
and ``"fast"`` (:mod:`repro.fast`) built in; all inputs run the unified
(planes x stripes) cell-grid pipeline of :mod:`repro.core.cellgrid`.
"""

from repro.core import (
    CodecConfig,
    ProposedCodec,
    decode_image,
    decode_planar,
    decode_plane,
    decode_region,
    encode_image,
    encode_planar,
    stream_index,
)
from repro.imaging import GrayImage, PlanarImage, generate_corpus, generate_image
from repro.parallel import ParallelCodec

__version__ = "1.10.0"

__all__ = [
    "CodecConfig",
    "ProposedCodec",
    "ParallelCodec",
    "encode_image",
    "decode_image",
    "encode_planar",
    "decode_planar",
    "decode_plane",
    "decode_region",
    "stream_index",
    "GrayImage",
    "PlanarImage",
    "generate_image",
    "generate_corpus",
    "__version__",
]
