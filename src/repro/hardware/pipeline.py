"""Cycle-level model of the two-line pipeline and the bit-serial coder.

Section III describes two "lines" of work per pixel that the hardware
executes in parallel: Line 1 codes the *current* symbol (error, context
update, mapping) while Line 2 prepares the *next* symbol (neighbourhood,
gradients, prediction, texture, QE, error feedback).  With the two lines
overlapped the modelling front-end sustains one pixel per clock cycle.

The back-end, however, is bit-serial: the probability estimator walks one
tree level per cycle and the binary arithmetic coder consumes one decision
per cycle, so a ``2^n``-symbol alphabet costs ``n`` cycles per pixel (plus
``n`` more when the symbol escapes to the static tree).  The throughput of
the whole design is therefore::

    pixels/s = clock / max(modelling cycles per pixel, coder cycles per pixel)
    bits/s   = pixels/s * bits per pixel

which with an 8-bit alphabet and a 123 MHz clock gives the paper's
123 Mbit/s: 8 coder cycles per 8-bit pixel means the input-bit rate equals
the clock rate.

The model also exposes a *non-pipelined* variant (Line 1 and Line 2 executed
back to back) so the ablation benchmark can quantify what the two-line
pipeline buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import CodecConfig
from repro.core.encoder import EncodeStatistics
from repro.exceptions import HardwareModelError

__all__ = ["PipelineReport", "PipelineModel"]

#: Stages executed by Line 2 (next-symbol preparation), in dataflow order.
LINE2_STAGES = (
    "update-context-window",
    "gradients",
    "primary-prediction",
    "texture-and-qe",
    "error-feedback",
)

#: Stages executed by Line 1 (current-symbol coding), in dataflow order.
LINE1_STAGES = (
    "prediction-error",
    "context-statistics-update",
    "error-mapping",
    "qe-update",
)


@dataclass(frozen=True)
class PipelineReport:
    """Throughput estimate for one image (or one image's statistics)."""

    clock_mhz: float
    pixel_count: int
    total_cycles: int
    cycles_per_pixel: float
    pixels_per_second: float
    megabits_per_second: float
    frames_per_second: float
    bottleneck: str

    def format_summary(self) -> str:
        return (
            "clock %.1f MHz | %.2f cycles/pixel (%s bound) | "
            "%.2f Mpixel/s | %.1f Mbit/s | %.2f frames/s"
            % (
                self.clock_mhz,
                self.cycles_per_pixel,
                self.bottleneck,
                self.pixels_per_second / 1e6,
                self.megabits_per_second,
                self.frames_per_second,
            )
        )


class PipelineModel:
    """Throughput model of the modelling front-end + bit-serial back-end."""

    def __init__(
        self,
        config: Optional[CodecConfig] = None,
        clock_mhz: float = 123.0,
        pipelined: bool = True,
    ) -> None:
        if clock_mhz <= 0:
            raise HardwareModelError("clock must be positive, got %f MHz" % clock_mhz)
        self.config = config if config is not None else CodecConfig.hardware()
        self.clock_mhz = clock_mhz
        self.pipelined = pipelined

    # ------------------------------------------------------------------ #
    # per-pixel cycle counts
    # ------------------------------------------------------------------ #

    def modeling_cycles_per_pixel(self) -> float:
        """Cycles the modelling front-end needs per pixel.

        With the two-line pipeline every stage is busy every cycle, so the
        initiation interval is one.  Without it the two lines execute
        sequentially and the initiation interval is the total stage count.
        """
        if self.pipelined:
            return 1.0
        return float(len(LINE1_STAGES) + len(LINE2_STAGES))

    def coder_cycles_per_pixel(self, escape_rate: float = 0.0) -> float:
        """Cycles the estimator/coder pair needs per pixel.

        One tree level (= one binary decision) per cycle, so a ``2^n`` symbol
        alphabet costs ``n`` cycles; an escaped symbol additionally walks the
        static tree (another ``n`` cycles).  The hardware signals escapes with
        a dedicated tree decision, so they are accounted through
        ``escape_rate`` rather than by deepening every walk.
        """
        if not 0.0 <= escape_rate <= 1.0:
            raise HardwareModelError("escape rate must be in [0, 1], got %f" % escape_rate)
        depth = self.config.bit_depth
        return depth + escape_rate * (self.config.bit_depth + 1)

    def pipeline_fill_latency(self) -> int:
        """Cycles before the first coded bit emerges (pipeline fill)."""
        return len(LINE1_STAGES) + len(LINE2_STAGES) + self.config.bit_depth

    # ------------------------------------------------------------------ #
    # reports
    # ------------------------------------------------------------------ #

    def analyse(
        self,
        width: int,
        height: int,
        escape_rate: float = 0.0,
    ) -> PipelineReport:
        """Estimate the throughput for a ``width`` x ``height`` image."""
        if width <= 0 or height <= 0:
            raise HardwareModelError("image dimensions must be positive")
        pixel_count = width * height
        modeling = self.modeling_cycles_per_pixel()
        coder = self.coder_cycles_per_pixel(escape_rate)
        if self.pipelined:
            # Modelling, estimator and coder overlap: the slowest stage wins.
            per_pixel = max(modeling, coder)
            bottleneck = "modelling" if modeling >= coder else "coder"
        else:
            # Without pipelining the front-end and the coder alternate.
            per_pixel = modeling + coder
            bottleneck = "serialised modelling + coder"
        # Row changeover costs one cycle per row (line-pointer rotation).
        total_cycles = int(round(pixel_count * per_pixel)) + height + self.pipeline_fill_latency()
        cycles_per_pixel = total_cycles / pixel_count
        clock_hz = self.clock_mhz * 1e6
        pixels_per_second = clock_hz / cycles_per_pixel
        megabits_per_second = pixels_per_second * self.config.bit_depth / 1e6
        frames_per_second = pixels_per_second / pixel_count
        return PipelineReport(
            clock_mhz=self.clock_mhz,
            pixel_count=pixel_count,
            total_cycles=total_cycles,
            cycles_per_pixel=cycles_per_pixel,
            pixels_per_second=pixels_per_second,
            megabits_per_second=megabits_per_second,
            frames_per_second=frames_per_second,
            bottleneck=bottleneck,
        )

    def analyse_statistics(
        self, width: int, height: int, statistics: EncodeStatistics
    ) -> PipelineReport:
        """Throughput estimate using the measured escape rate of a real encode."""
        pixel_count = width * height
        if pixel_count <= 0:
            raise HardwareModelError("image dimensions must be positive")
        symbols = max(1, pixel_count)
        escape_rate = statistics.escapes / symbols
        return self.analyse(width, height, escape_rate=min(1.0, escape_rate))
