"""Static-timing estimate of the achievable clock frequency.

The paper reports that the design "was synthesized and optimized using
Xilinx ISE 8.1 and achieved a clock frequency of 123 MHz".  The analytical
equivalent is a static-timing estimate: every pipeline stage's combinational
depth is bounded by its slowest primitive (the architecture registers every
stage boundary), so the achievable clock period is the slowest stage delay
plus register overhead plus a routing/clock-distribution margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import HardwareModelError
from repro.hardware.blocks import HardwareBlock
from repro.hardware.device import VIRTEX4_LX60, FpgaDevice

__all__ = ["TimingReport", "TimingModel"]


@dataclass(frozen=True)
class TimingReport:
    """Outcome of the timing estimate."""

    critical_block: str
    critical_path_ns: float
    clock_period_ns: float
    clock_mhz: float
    per_block_ns: dict

    def meets(self, target_mhz: float) -> bool:
        """True when the estimated clock reaches ``target_mhz``."""
        return self.clock_mhz >= target_mhz


class TimingModel:
    """Estimate the clock frequency of a set of pipelined blocks."""

    def __init__(
        self,
        device: FpgaDevice = VIRTEX4_LX60,
        routing_margin: float = 0.35,
    ) -> None:
        """``routing_margin`` adds a fraction of the logic delay for global
        routing and clock skew (35 % is a typical post-place-and-route figure
        for a moderately full Virtex-4)."""
        if routing_margin < 0:
            raise HardwareModelError("routing margin must be non-negative")
        self.device = device
        self.routing_margin = routing_margin

    def analyse(self, blocks: List[HardwareBlock]) -> TimingReport:
        """Return the timing report for ``blocks`` (the slowest one governs)."""
        if not blocks:
            raise HardwareModelError("timing analysis needs at least one block")
        per_block = {}
        critical_block: Optional[str] = None
        critical_ns = 0.0
        for block in blocks:
            path = block.critical_path_ns()
            per_block[block.name] = path
            if path > critical_ns:
                critical_ns = path
                critical_block = block.name
        period = critical_ns * (1.0 + self.routing_margin)
        return TimingReport(
            critical_block=critical_block or blocks[0].name,
            critical_path_ns=critical_ns,
            clock_period_ns=period,
            clock_mhz=1000.0 / period,
            per_block_ns=per_block,
        )
