"""Multi-core scaling model (Section V: "a multi-core solution could be used
to scale up the performance").

The paper closes its evaluation by noting that the design's low complexity
allows several codec cores to be instantiated side by side to scale
throughput.  This module models that claim quantitatively:

* the image is partitioned into horizontal stripes, one per core;
* every core is an independent instance of the pipeline (its own modelling
  front-end, probability estimator and arithmetic coder), so stripes are
  coded with *independent adaptive state* — exactly what hardware
  replication gives you;
* each stripe pays a context "warm-up" penalty because its adaptive models
  restart cold, so compression degrades slightly as the core count grows;
* aggregate throughput scales with the number of cores (bounded by the
  stripe imbalance), and device utilisation scales linearly.

The model therefore captures the real trade-off of the multi-core option:
throughput and area scale linearly while the compression ratio degrades
gently.  ``estimate_scaling`` produces the summary; the companion benchmark
(`benchmarks/test_multicore_scaling.py`) measures the bit-rate penalty with
the actual codec by splitting corpus images into stripes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.codec import ProposedCodec
from repro.core.config import CodecConfig
from repro.exceptions import HardwareModelError
from repro.hardware.pipeline import PipelineModel
from repro.hardware.resources import UtilizationSummary
from repro.imaging.image import GrayImage

__all__ = ["CoreScalingPoint", "MulticoreModel", "split_into_stripes", "measure_stripe_penalty"]


@dataclass(frozen=True)
class CoreScalingPoint:
    """Predicted behaviour of an ``n``-core instantiation."""

    cores: int
    aggregate_megabits_per_second: float
    speedup: float
    total_slices: int
    total_brams: int
    stripe_rows: int

    def format_row(self) -> str:
        return "%2d cores | %8.1f Mbit/s | speedup %5.2fx | %6d slices | %3d BRAMs" % (
            self.cores,
            self.aggregate_megabits_per_second,
            self.speedup,
            self.total_slices,
            self.total_brams,
        )


class MulticoreModel:
    """Throughput/area scaling of stripe-parallel codec cores."""

    def __init__(
        self,
        single_core_summary: UtilizationSummary,
        clock_mhz: float = 123.0,
        config: Optional[CodecConfig] = None,
    ) -> None:
        self.summary = single_core_summary
        self.clock_mhz = clock_mhz
        self.config = config if config is not None else CodecConfig.hardware()

    def scaling(
        self, image_width: int, image_height: int, core_counts: List[int], escape_rate: float = 0.002
    ) -> List[CoreScalingPoint]:
        """Predict throughput and area for each core count.

        The image is split into equal horizontal stripes (the last stripe
        absorbs the remainder); the slowest stripe bounds the wall-clock, so
        the speedup is ``height / ceil(height / cores)`` rather than exactly
        ``cores``.
        """
        if image_width <= 0 or image_height <= 0:
            raise HardwareModelError("image dimensions must be positive")
        points: List[CoreScalingPoint] = []
        single_totals = self.summary.totals()
        pipeline = PipelineModel(config=self.config, clock_mhz=self.clock_mhz)
        baseline = pipeline.analyse(image_width, image_height, escape_rate=escape_rate)
        for cores in core_counts:
            if cores <= 0:
                raise HardwareModelError("core count must be positive, got %d" % cores)
            if cores > image_height:
                raise HardwareModelError(
                    "cannot split %d rows across %d cores" % (image_height, cores)
                )
            stripe_rows = -(-image_height // cores)  # ceiling division
            stripe_report = pipeline.analyse(image_width, stripe_rows, escape_rate=escape_rate)
            # All cores run concurrently; the largest stripe finishes last.
            wall_clock_seconds = stripe_report.total_cycles / (self.clock_mhz * 1e6)
            total_bits = image_width * image_height * self.config.bit_depth
            aggregate_mbps = total_bits / wall_clock_seconds / 1e6
            speedup = aggregate_mbps / baseline.megabits_per_second
            points.append(
                CoreScalingPoint(
                    cores=cores,
                    aggregate_megabits_per_second=aggregate_mbps,
                    speedup=speedup,
                    total_slices=single_totals.slices * cores,
                    total_brams=single_totals.brams * cores,
                    stripe_rows=stripe_rows,
                )
            )
        return points

    def format_table(self, points: List[CoreScalingPoint]) -> str:
        return "\n".join(point.format_row() for point in points)


def split_into_stripes(image: GrayImage, cores: int) -> List[GrayImage]:
    """Split an image into ``cores`` horizontal stripes (last one may be taller)."""
    if cores <= 0:
        raise HardwareModelError("core count must be positive, got %d" % cores)
    if cores > image.height:
        raise HardwareModelError("cannot split %d rows across %d cores" % (image.height, cores))
    stripe_rows = image.height // cores
    stripes: List[GrayImage] = []
    start = 0
    for index in range(cores):
        end = image.height if index == cores - 1 else start + stripe_rows
        rows = [image.row(y) for y in range(start, end)]
        stripes.append(
            GrayImage.from_rows(rows, bit_depth=image.bit_depth, name="%s-stripe%d" % (image.name, index))
        )
        start = end
    return stripes


def measure_stripe_penalty(
    image: GrayImage, cores: int, config: Optional[CodecConfig] = None
) -> dict:
    """Measure the bit-rate cost of coding an image as independent stripes.

    Returns a dict with the single-core bit rate, the multi-core bit rate
    (stripes coded independently, sizes summed) and the penalty in bpp.
    Every stripe is also round-trip verified.
    """
    config = config if config is not None else CodecConfig.hardware()
    codec = ProposedCodec(config)
    whole = codec.encode(image)
    single_bpp = 8.0 * len(whole) / image.pixel_count

    total_bytes = 0
    for stripe in split_into_stripes(image, cores):
        stream = codec.encode(stripe)
        if codec.decode(stream) != stripe:
            raise AssertionError("stripe round-trip failed")
        total_bytes += len(stream)
    multi_bpp = 8.0 * total_bytes / image.pixel_count
    return {
        "cores": cores,
        "single_core_bpp": single_bpp,
        "multi_core_bpp": multi_bpp,
        "penalty_bpp": multi_bpp - single_bpp,
    }
