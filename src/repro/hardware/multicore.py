"""Multi-core scaling model (Section V: "a multi-core solution could be used
to scale up the performance").

The paper closes its evaluation by noting that the design's low complexity
allows several codec cores to be instantiated side by side to scale
throughput.  This module models that claim quantitatively:

* the image is partitioned into horizontal stripes, one per core;
* every core is an independent instance of the pipeline (its own modelling
  front-end, probability estimator and arithmetic coder), so stripes are
  coded with *independent adaptive state* — exactly what hardware
  replication gives you;
* each stripe pays a context "warm-up" penalty because its adaptive models
  restart cold, so compression degrades slightly as the core count grows;
* aggregate throughput scales with the number of cores (bounded by the
  stripe imbalance), and device utilisation scales linearly.

The model therefore captures the real trade-off of the multi-core option:
throughput and area scale linearly while the compression ratio degrades
gently.  ``estimate_scaling`` produces the summary; the companion benchmark
(`benchmarks/test_multicore_scaling.py`) measures the bit-rate penalty with
the actual codec by splitting corpus images into stripes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.codec import ProposedCodec
from repro.core.config import CodecConfig
from repro.exceptions import HardwareModelError, StripingError
from repro.hardware.pipeline import PipelineModel
from repro.hardware.resources import UtilizationSummary
from repro.imaging.image import GrayImage

__all__ = [
    "CoreScalingPoint",
    "MulticoreModel",
    "split_into_stripes",
    "measure_stripe_penalty",
    "estimate_scaling",
    "validate_scaling",
    "predict_stripe_penalty_bpp",
    "format_validation_table",
    "DEFAULT_WARMUP_BITS_PER_STRIPE",
]

#: Calibrated adaptive-model warm-up cost of one additional stripe, in bits.
#: Every extra stripe restarts the context models and the probability
#: estimator cold and pays one extra arithmetic-coder flush; measured across
#: the synthetic corpus this costs on the order of 1.2 kbit per stripe
#: (see ``validate_scaling``, which compares this prediction with actual
#: striped encodes).  The version-2 stripe-table overhead (4 bytes per
#: stripe) is negligible next to it and folded into the same constant.
DEFAULT_WARMUP_BITS_PER_STRIPE = 1200.0


@dataclass(frozen=True)
class CoreScalingPoint:
    """Predicted behaviour of an ``n``-core instantiation."""

    cores: int
    aggregate_megabits_per_second: float
    speedup: float
    total_slices: int
    total_brams: int
    stripe_rows: int
    #: Predicted compression penalty of coding ``cores`` independent stripes.
    predicted_penalty_bpp: float = 0.0

    def format_row(self) -> str:
        return (
            "%2d cores | %8.1f Mbit/s | speedup %5.2fx | %6d slices | %3d BRAMs"
            " | +%.4f bpp"
            % (
                self.cores,
                self.aggregate_megabits_per_second,
                self.speedup,
                self.total_slices,
                self.total_brams,
                self.predicted_penalty_bpp,
            )
        )


class MulticoreModel:
    """Throughput/area scaling of stripe-parallel codec cores."""

    def __init__(
        self,
        single_core_summary: UtilizationSummary,
        clock_mhz: float = 123.0,
        config: Optional[CodecConfig] = None,
    ) -> None:
        self.summary = single_core_summary
        self.clock_mhz = clock_mhz
        self.config = config if config is not None else CodecConfig.hardware()

    def scaling(
        self, image_width: int, image_height: int, core_counts: List[int], escape_rate: float = 0.002
    ) -> List[CoreScalingPoint]:
        """Predict throughput and area for each core count.

        The image is split into equal horizontal stripes (the last stripe
        absorbs the remainder); the slowest stripe bounds the wall-clock, so
        the speedup is ``height / ceil(height / cores)`` rather than exactly
        ``cores``.
        """
        if image_width <= 0 or image_height <= 0:
            raise HardwareModelError("image dimensions must be positive")
        points: List[CoreScalingPoint] = []
        single_totals = self.summary.totals()
        pipeline = PipelineModel(config=self.config, clock_mhz=self.clock_mhz)
        baseline = pipeline.analyse(image_width, image_height, escape_rate=escape_rate)
        for cores in core_counts:
            if cores <= 0:
                raise HardwareModelError("core count must be positive, got %d" % cores)
            if cores > image_height:
                raise HardwareModelError(
                    "cannot split %d rows across %d cores" % (image_height, cores)
                )
            stripe_rows = -(-image_height // cores)  # ceiling division
            stripe_report = pipeline.analyse(image_width, stripe_rows, escape_rate=escape_rate)
            # All cores run concurrently; the largest stripe finishes last.
            wall_clock_seconds = stripe_report.total_cycles / (self.clock_mhz * 1e6)
            total_bits = image_width * image_height * self.config.bit_depth
            aggregate_mbps = total_bits / wall_clock_seconds / 1e6
            speedup = aggregate_mbps / baseline.megabits_per_second
            points.append(
                CoreScalingPoint(
                    cores=cores,
                    aggregate_megabits_per_second=aggregate_mbps,
                    speedup=speedup,
                    total_slices=single_totals.slices * cores,
                    total_brams=single_totals.brams * cores,
                    stripe_rows=stripe_rows,
                    predicted_penalty_bpp=predict_stripe_penalty_bpp(
                        image_width, image_height, cores
                    ),
                )
            )
        return points

    def format_table(self, points: List[CoreScalingPoint]) -> str:
        return "\n".join(point.format_row() for point in points)


def predict_stripe_penalty_bpp(
    width: int,
    height: int,
    cores: int,
    warmup_bits_per_stripe: float = DEFAULT_WARMUP_BITS_PER_STRIPE,
) -> float:
    """Predicted bit-rate penalty (bpp) of coding ``cores`` independent stripes.

    Each stripe beyond the first restarts the adaptive models cold, costing
    roughly ``warmup_bits_per_stripe`` extra bits; the penalty therefore
    grows linearly with the stripe count and vanishes as the image grows.
    """
    if width <= 0 or height <= 0:
        raise HardwareModelError("image dimensions must be positive")
    if cores <= 0:
        raise HardwareModelError("core count must be positive, got %d" % cores)
    stripes = min(cores, height)
    return (stripes - 1) * warmup_bits_per_stripe / (width * height)


def estimate_scaling(
    width: int,
    height: int,
    core_counts: List[int],
    clock_mhz: float = 123.0,
    config: Optional[CodecConfig] = None,
) -> List[CoreScalingPoint]:
    """Predict throughput, area and compression penalty for each core count.

    Convenience wrapper that instantiates :class:`MulticoreModel` with the
    paper's default resource summary; use the class directly to model a
    different device or block mix.
    """
    from repro.hardware.blocks import default_blocks
    from repro.hardware.resources import summarize_blocks

    model = MulticoreModel(
        summarize_blocks(default_blocks()), clock_mhz=clock_mhz, config=config
    )
    return model.scaling(width, height, core_counts)


def validate_scaling(
    image: GrayImage,
    core_counts: List[int],
    config: Optional[CodecConfig] = None,
    parallel: bool = False,
) -> List[dict]:
    """Validate the predicted stripe penalty against actual striped encodes.

    For every core count the image is encoded with the stripe-parallel codec
    (serially by default, so the validation is deterministic and cheap) and
    the measured penalty versus the single-payload stream is compared with
    :func:`predict_stripe_penalty_bpp`.  Every striped stream is round-trip
    verified.  Returns one dict per core count with the keys ``cores``,
    ``predicted_penalty_bpp``, ``measured_penalty_bpp``,
    ``prediction_error_bpp``, ``single_stream_bytes`` and
    ``striped_stream_bytes``.
    """
    from repro.parallel.codec import ParallelCodec
    from repro.parallel.executor import SerialExecutor

    config = config if config is not None else CodecConfig.hardware()
    baseline = ProposedCodec(config).encode(image)
    rows: List[dict] = []
    for cores in core_counts:
        codec = ParallelCodec(
            cores=cores,
            config=config,
            executor=None if parallel else SerialExecutor(),
        )
        striped = codec.encode(image)
        if codec.decode(striped) != image:
            raise AssertionError("striped round-trip failed at %d cores" % cores)
        measured = 8.0 * (len(striped) - len(baseline)) / image.pixel_count
        predicted = predict_stripe_penalty_bpp(image.width, image.height, cores)
        rows.append(
            {
                "cores": cores,
                "predicted_penalty_bpp": predicted,
                "measured_penalty_bpp": measured,
                "prediction_error_bpp": predicted - measured,
                "single_stream_bytes": len(baseline),
                "striped_stream_bytes": len(striped),
            }
        )
    return rows


def format_validation_table(rows: List[dict]) -> str:
    """Render :func:`validate_scaling` rows as an aligned text table."""
    lines = ["cores | predicted bpp | measured bpp | error bpp"]
    for row in rows:
        lines.append(
            "%5d | %+13.4f | %+12.4f | %+9.4f"
            % (
                row["cores"],
                row["predicted_penalty_bpp"],
                row["measured_penalty_bpp"],
                row["prediction_error_bpp"],
            )
        )
    return "\n".join(lines)


def split_into_stripes(image: GrayImage, cores: int) -> List[GrayImage]:
    """Split an image into ``cores`` horizontal stripes.

    Thin wrapper over the canonical balanced partitioner of
    :mod:`repro.parallel.partition`, so the hardware model and the
    stripe-parallel codec always agree on stripe geometry (heights differ by
    at most one row, taller stripes first).  Unlike the codec's
    ``plan_for_cores`` this does not clamp: asking for more stripes than
    rows raises :class:`HardwareModelError`, as replicating more hardware
    cores than image rows is a modelling mistake.
    """
    from repro.parallel.partition import extract_stripe, plan_stripes

    try:
        plan = plan_stripes(image.height, cores)
    except StripingError as exc:
        raise HardwareModelError(str(exc)) from exc
    return [extract_stripe(image, spec) for spec in plan]


def measure_stripe_penalty(
    image: GrayImage, cores: int, config: Optional[CodecConfig] = None
) -> dict:
    """Measure the bit-rate cost of coding an image as independent stripes.

    Returns a dict with the single-core bit rate, the multi-core bit rate
    (one striped version-2 container produced by the stripe-parallel codec)
    and the penalty in bpp.  The striped stream is round-trip verified.
    """
    from repro.parallel.codec import ParallelCodec
    from repro.parallel.executor import SerialExecutor

    config = config if config is not None else CodecConfig.hardware()
    codec = ProposedCodec(config)
    whole = codec.encode(image)
    single_bpp = 8.0 * len(whole) / image.pixel_count

    striped_codec = ParallelCodec(cores=cores, config=config, executor=SerialExecutor())
    striped = striped_codec.encode(image)
    if striped_codec.decode(striped) != image:
        raise AssertionError("stripe round-trip failed")
    multi_bpp = 8.0 * len(striped) / image.pixel_count
    return {
        "cores": cores,
        "single_core_bpp": single_bpp,
        "multi_core_bpp": multi_bpp,
        "penalty_bpp": multi_bpp - single_bpp,
    }
