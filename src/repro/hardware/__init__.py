"""Hardware model: FPGA resources, timing, memory and pipeline behaviour.

The paper's contribution is an *architecture*, so reproducing its evaluation
needs more than the algorithm: Table 2 reports device utilisation on a
Xilinx Virtex-4, the text quotes 3.7 KB / 4 KB of memory for the modelling
and probability-estimator blocks, and the headline performance claim is a
123 MHz clock sustaining 123 Mbit/s.

No synthesis tools are available offline, so this package provides an
analytical model (see DESIGN.md for the substitution rationale):

* :mod:`repro.hardware.device` — the Virtex-4 slice/LUT/BRAM geometry;
* :mod:`repro.hardware.primitives` — LUT/FF/BRAM costs and delays of RTL
  primitives (adders, comparators, muxes, shifters, RAMs, ROMs);
* :mod:`repro.hardware.blocks` — the three architectural blocks of the
  design (Modelling, Probability Estimator, Arithmetic Coder) composed from
  those primitives;
* :mod:`repro.hardware.resources` — aggregation into the slice / flip-flop /
  LUT / IOB summary of Table 2;
* :mod:`repro.hardware.timing` — a static-timing estimate of the achievable
  clock frequency;
* :mod:`repro.hardware.pipeline` — a cycle-level simulator of the two-line
  modelling pipeline and the bit-serial coder that turns a clock frequency
  into a throughput figure;
* :mod:`repro.hardware.memory` — the memory inventory (line buffers, context
  statistics, division ROM, estimator SRAM);
* :mod:`repro.hardware.multicore` — the Section V multi-core scaling model,
  validated against real striped encodes from :mod:`repro.parallel`.
"""

from repro.hardware.blocks import (
    ArithmeticCoderBlock,
    ModelingBlock,
    ProbabilityEstimatorBlock,
    default_blocks,
)
from repro.hardware.device import FpgaDevice, VIRTEX4_LX60
from repro.hardware.memory import MemoryInventory, build_memory_inventory
from repro.hardware.multicore import (
    MulticoreModel,
    estimate_scaling,
    measure_stripe_penalty,
    predict_stripe_penalty_bpp,
    split_into_stripes,
    validate_scaling,
)
from repro.hardware.pipeline import PipelineModel, PipelineReport
from repro.hardware.primitives import ResourceCount
from repro.hardware.resources import BlockUtilization, UtilizationSummary, summarize_blocks
from repro.hardware.timing import TimingModel, TimingReport

__all__ = [
    "FpgaDevice",
    "VIRTEX4_LX60",
    "ResourceCount",
    "ModelingBlock",
    "ProbabilityEstimatorBlock",
    "ArithmeticCoderBlock",
    "default_blocks",
    "BlockUtilization",
    "UtilizationSummary",
    "summarize_blocks",
    "TimingModel",
    "TimingReport",
    "PipelineModel",
    "PipelineReport",
    "MemoryInventory",
    "build_memory_inventory",
    "MulticoreModel",
    "split_into_stripes",
    "measure_stripe_penalty",
]
