"""Aggregation of block resources into a Table 2 style utilisation summary."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hardware.blocks import PAPER_TABLE2, HardwareBlock
from repro.hardware.device import FpgaDevice

__all__ = ["BlockUtilization", "UtilizationSummary", "summarize_blocks"]


@dataclass(frozen=True)
class BlockUtilization:
    """Utilisation of one architectural block (one column of Table 2)."""

    name: str
    slices: int
    flipflops: int
    lut4: int
    iobs: int
    gclk: int
    brams: int
    memory_bytes: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "slices": self.slices,
            "flipflops": self.flipflops,
            "lut4": self.lut4,
            "iobs": self.iobs,
            "gclk": self.gclk,
            "brams": self.brams,
            "memory_bytes": self.memory_bytes,
        }


@dataclass(frozen=True)
class UtilizationSummary:
    """The whole Table 2: one entry per block plus device totals."""

    device: FpgaDevice
    blocks: List[BlockUtilization]

    def block(self, name: str) -> BlockUtilization:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError("no block named %r in the summary" % name)

    def totals(self) -> BlockUtilization:
        """Sum over all blocks (the full design)."""
        return BlockUtilization(
            name="total",
            slices=sum(b.slices for b in self.blocks),
            flipflops=sum(b.flipflops for b in self.blocks),
            lut4=sum(b.lut4 for b in self.blocks),
            iobs=sum(b.iobs for b in self.blocks),
            gclk=max((b.gclk for b in self.blocks), default=0),
            brams=sum(b.brams for b in self.blocks),
            memory_bytes=sum(b.memory_bytes for b in self.blocks),
        )

    def slice_utilisation_percent(self) -> float:
        """Fraction of the target device's slices used by the full design."""
        return 100.0 * self.totals().slices / self.device.total_slices

    def comparison_with_paper(self) -> Dict[str, Dict[str, Dict[str, Optional[int]]]]:
        """Per-block comparison of the model's estimate with Table 2."""
        comparison: Dict[str, Dict[str, Dict[str, Optional[int]]]] = {}
        for block in self.blocks:
            published = PAPER_TABLE2.get(block.name)
            comparison[block.name] = {
                "estimated": {
                    "slices": block.slices,
                    "flipflops": block.flipflops,
                    "lut4": block.lut4,
                    "iobs": block.iobs,
                    "gclk": block.gclk,
                },
                "paper": dict(published) if published else {},
            }
        return comparison

    def format_table(self) -> str:
        """Render the summary as a fixed-width text table (Table 2 layout)."""
        headers = ["", *[b.name for b in self.blocks]]
        rows = [
            ("No. of Slices", [b.slices for b in self.blocks]),
            ("No. of Slice Flip-flops", [b.flipflops for b in self.blocks]),
            ("No. of 4 input LUT", [b.lut4 for b in self.blocks]),
            ("No. of bonded IOBs", [b.iobs for b in self.blocks]),
            ("No. of GCLK", [b.gclk for b in self.blocks]),
            ("Block RAMs", [b.brams for b in self.blocks]),
            ("Memory (bytes)", [b.memory_bytes for b in self.blocks]),
        ]
        width = max(len(h) for h in headers[1:]) + 2
        lines = ["%-26s" % headers[0] + "".join("%*s" % (width, h) for h in headers[1:])]
        for label, values in rows:
            lines.append("%-26s" % label + "".join("%*d" % (width, v) for v in values))
        return "\n".join(lines)


def summarize_blocks(blocks: List[HardwareBlock], device: Optional[FpgaDevice] = None) -> UtilizationSummary:
    """Build the utilisation summary for a list of architectural blocks."""
    if not blocks:
        raise ValueError("summarize_blocks needs at least one block")
    device = device if device is not None else blocks[0].device
    utilizations = []
    for block in blocks:
        resources = block.resources()
        utilizations.append(
            BlockUtilization(
                name=block.name,
                slices=block.slices(),
                flipflops=resources.ffs,
                lut4=resources.luts,
                iobs=resources.iobs,
                gclk=block.gclk_count,
                brams=resources.brams,
                memory_bytes=block.memory_bytes(),
            )
        )
    return UtilizationSummary(device=device, blocks=utilizations)
