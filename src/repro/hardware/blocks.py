"""Architectural blocks of the paper's design, composed from primitives.

Table 2 of the paper splits the design into three blocks — *Modelling*,
*Probability Estimator* and *Arithmetic Coder* — and reports the slice /
flip-flop / LUT / IOB counts of each after synthesis with Xilinx ISE 8.1.
Without a synthesis flow we re-derive those numbers analytically: each block
lists the RTL primitives its datapath needs (straight from the architecture
description in Sections III and IV) and sums their costs from
:class:`~repro.hardware.primitives.PrimitiveLibrary`.

An analytical model cannot capture every piece of glue logic a real netlist
contains, so the absolute numbers differ from the paper's (the comparison —
estimate vs. published — is exactly what ``benchmarks/test_table2_resources``
and EXPERIMENTS.md report).  What the model does preserve is the *structure*
of Table 2: the arithmetic coder is by far the largest block, the
probability estimator the smallest, the modelling block sits in between, and
the memory budgets (3.7 KB modelling / 4 KB estimator) follow directly from
the algorithm's data structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import CodecConfig
from repro.hardware.device import VIRTEX4_LX60, FpgaDevice
from repro.hardware.primitives import Primitive, PrimitiveLibrary, ResourceCount

__all__ = [
    "HardwareBlock",
    "ModelingBlock",
    "ProbabilityEstimatorBlock",
    "ArithmeticCoderBlock",
    "default_blocks",
    "PAPER_TABLE2",
]

#: The utilisation figures published in Table 2 of the paper, for comparison.
PAPER_TABLE2: Dict[str, Dict[str, int]] = {
    "modeling": {"slices": 508, "flipflops": 224, "lut4": 912, "iobs": 31, "gclk": 1},
    "probability_estimator": {"slices": 297, "flipflops": 124, "lut4": 561, "iobs": 60, "gclk": 1},
    "arithmetic_coder": {"slices": 1123, "flipflops": 283, "lut4": 2131, "iobs": 53, "gclk": 1},
}


@dataclass
class HardwareBlock:
    """A named block: its primitives, IOB budget and memory contents."""

    name: str
    device: FpgaDevice
    primitives: List[Primitive] = field(default_factory=list)
    memories_bits: Dict[str, int] = field(default_factory=dict)
    iob_count: int = 0
    gclk_count: int = 1

    def add(self, primitive: Primitive, copies: int = 1) -> None:
        """Add ``copies`` instances of ``primitive`` to the block."""
        for _ in range(copies):
            self.primitives.append(primitive)

    def add_memory(self, name: str, bits: int, use_bram: bool = True) -> None:
        """Register an on-chip memory (BRAM by default, distributed otherwise)."""
        self.memories_bits[name] = self.memories_bits.get(name, 0) + bits
        library = PrimitiveLibrary(self.device)
        if use_bram:
            self.add(library.block_ram(bits, name=name))
        else:
            self.add(library.distributed_rom(bits, name=name))

    # ------------------------------------------------------------------ #
    # aggregate queries
    # ------------------------------------------------------------------ #

    def resources(self) -> ResourceCount:
        """Total LUT / FF / BRAM / IOB count of the block."""
        total = ResourceCount(iobs=self.iob_count)
        for primitive in self.primitives:
            total = total + primitive.resources
        return total

    def slices(self) -> int:
        """Estimated slice count after packing."""
        total = self.resources()
        return self.device.slices_for(total.luts, total.ffs)

    def critical_path_ns(self) -> float:
        """Longest single-primitive delay plus register overhead.

        The architecture registers every stage boundary (that is the point of
        the two-line pipeline), so the combinational depth per cycle is one
        primitive group; the slowest one sets the clock.
        """
        if not self.primitives:
            return self.device.register_overhead_ns
        slowest = max(primitive.delay_ns for primitive in self.primitives)
        return slowest + self.device.register_overhead_ns

    def memory_bytes(self) -> int:
        """Total on-chip memory of the block in bytes."""
        return sum(bits for bits in self.memories_bits.values()) // 8


# --------------------------------------------------------------------------- #
# Block builders
# --------------------------------------------------------------------------- #


class ModelingBlock(HardwareBlock):
    """The image-modelling module of Figure 3 (prediction + context + bias).

    Parameters
    ----------
    config:
        Codec configuration (register widths follow it).
    image_width:
        Line-buffer length; the paper evaluates 512-pixel-wide images.
    device:
        Target FPGA.
    """

    def __init__(
        self,
        config: Optional[CodecConfig] = None,
        image_width: int = 512,
        device: FpgaDevice = VIRTEX4_LX60,
    ) -> None:
        super().__init__(name="modeling", device=device)
        config = config if config is not None else CodecConfig.hardware()
        self.config = config
        self.image_width = image_width
        library = PrimitiveLibrary(device)
        pixel_bits = config.bit_depth
        gradient_bits = pixel_bits + 3          # sums of three absolute differences
        energy_bits = gradient_bits + 2         # dh + dv + 2|e_W|
        sum_bits = config.bias_sum_magnitude_bits + 1
        count_bits = config.bias_count_bits

        # --- Line 2: gradients, GAP, texture pattern, QE --------------------
        self.add(library.absolute_difference(pixel_bits, "gradient-absdiff"), copies=6)
        self.add(library.adder(gradient_bits, "gradient-sum"), copies=4)
        self.add(library.subtractor(gradient_bits + 1, "gap-dv-dh"), copies=1)
        self.add(library.comparator(gradient_bits + 1, "gap-threshold"), copies=5)
        self.add(library.adder(pixel_bits + 1, "gap-average"), copies=2)
        self.add(library.adder(pixel_bits + 2, "gap-blend"), copies=2)
        self.add(library.mux_n(pixel_bits, 6, "gap-select"))
        self.add(library.comparator(pixel_bits, "texture-compare"), copies=6)
        self.add(library.adder(energy_bits, "energy-sum"), copies=2)
        self.add(library.comparator(energy_bits, "qe-quantiser"), copies=config.energy_levels - 1)
        self.add(library.register(pixel_bits + config.texture_bits + config.energy_index_bits,
                                  "line2-pipeline"), copies=2)

        # --- Line 1: error, mapping, context update, error feedback ---------
        self.add(library.subtractor(pixel_bits + 1, "prediction-error"))
        self.add(library.adder(pixel_bits + 1, "error-remap"))
        self.add(library.mux2(pixel_bits, "error-remap-select"))
        self.add(library.adder(sum_bits, "context-sum-update"))
        self.add(library.counter(count_bits, "context-count-update"))
        self.add(library.comparator(count_bits, "overflow-guard-compare"))
        self.add(library.mux2(sum_bits + count_bits, "overflow-guard-halve"))
        self.add(library.comparator(config.bias_dividend_bits + 1, "dividend-bound"))
        self.add(library.mux2(config.bias_dividend_bits, "dividend-clamp"))
        self.add(library.multiplier(config.bias_dividend_bits, 16, "reciprocal-multiply"))
        self.add(library.adder(pixel_bits + 1, "feedback-add"))
        self.add(library.register(sum_bits + count_bits, "line1-pipeline"), copies=2)

        # --- Address generation and line-pointer rotation -------------------
        address_bits = max(1, (image_width - 1).bit_length())
        self.add(library.counter(address_bits, "column-counter"))
        self.add(library.register(address_bits, "line-pointer"), copies=3)
        self.add(library.mux_n(address_bits, 3, "line-pointer-rotate"))
        self.add(library.counter(6, "control-fsm"))
        self.add(library.register(32, "control-state"))

        # --- Memories --------------------------------------------------------
        self.add_memory("line-buffer", 3 * image_width * pixel_bits, use_bram=True)
        self.add_memory(
            "context-statistics",
            config.compound_contexts * (sum_bits + count_bits),
            use_bram=True,
        )
        if config.use_lut_division:
            self.add_memory("division-rom", 512 * 16, use_bram=True)

        # --- External interface ----------------------------------------------
        # pixel in (8), mapped error out (8), QE out (3), handshake/clock/reset.
        self.iob_count = pixel_bits + pixel_bits + config.energy_index_bits + 12


class ProbabilityEstimatorBlock(HardwareBlock):
    """The tree-based probability estimator of Section IV."""

    def __init__(
        self,
        config: Optional[CodecConfig] = None,
        device: FpgaDevice = VIRTEX4_LX60,
    ) -> None:
        super().__init__(name="probability_estimator", device=device)
        config = config if config is not None else CodecConfig.hardware()
        self.config = config
        library = PrimitiveLibrary(device)
        count_bits = config.count_bits
        node_bits = count_bits + config.bit_depth  # internal nodes hold subtree sums

        # Tree walk datapath: fetch node, compare against the arithmetic
        # coder's probability request, update the count, write back.
        self.add(library.adder(node_bits, "node-increment"))
        self.add(library.comparator(node_bits, "branch-compare"))
        self.add(library.subtractor(node_bits, "right-count"))
        self.add(library.barrel_shifter(node_bits, 4, "rescale-shift"))
        self.add(library.comparator(count_bits, "saturation-detect"))
        self.add(library.mux_n(node_bits, config.energy_levels, "context-select"))
        self.add(library.counter(config.bit_depth + 1, "level-counter"))
        self.add(library.counter(config.bit_depth + 2, "rescale-address"))
        self.add(library.register(node_bits, "node-pipeline"), copies=3)
        self.add(library.register(config.bit_depth + config.energy_index_bits, "symbol-latch"))
        self.add(library.comparator(config.bit_depth, "escape-detect"))
        self.add(library.counter(5, "control-fsm"))
        self.add(library.register(24, "control-state"))

        # Frequency-count SRAM: one leaf counter per symbol per dynamic tree.
        tree_bits = config.energy_levels * config.alphabet_size * count_bits
        self.add_memory("frequency-counts", tree_bits, use_bram=True)
        # Static (escape) tree needs no storage: its probabilities are constant.

        # Interface: symbol in (8) + QE (3), probability out (count_bits + total),
        # binary decision out, handshake.
        self.iob_count = (
            config.bit_depth
            + config.energy_index_bits
            + count_bits
            + count_bits
            + 2
            + 8
        )


class ArithmeticCoderBlock(HardwareBlock):
    """The binary arithmetic coder back-end (after Nunez-Yanez & Chouliaras).

    The coder is the largest block in Table 2: it holds the wide low/high/
    code registers, the range-scaling datapath, the renormalisation shifter,
    carry (follow-bit) resolution and the output bit packer.
    """

    def __init__(
        self,
        precision: int = 32,
        count_bits: int = 14,
        device: FpgaDevice = VIRTEX4_LX60,
    ) -> None:
        super().__init__(name="arithmetic_coder", device=device)
        self.precision = precision
        library = PrimitiveLibrary(device)

        # --- Encoder datapath -------------------------------------------------
        # Range split: span * zero_count / total.  The product is a shift-add
        # array of the probability width; the division by the model total is a
        # restoring divider array, which dominates the block's area (and is why
        # the coder is the largest block of Table 2).
        self.add(library.multiplier(count_bits + 2, precision // 2, "range-scale"))
        self.add(library.multiplier(count_bits + 2, precision // 2, "total-divide"))
        self.add(library.adder(precision, "low-update"))
        self.add(library.adder(precision, "high-update"))
        self.add(library.subtractor(precision, "span"))
        self.add(library.comparator(precision, "interval-compare"), copies=3)
        self.add(library.barrel_shifter(precision, 5, "renormalise"))
        self.add(library.counter(precision // 4, "pending-bits"))
        self.add(library.counter(6, "bit-counter"))
        self.add(library.register(precision, "low-register"))
        self.add(library.register(precision, "high-register"))
        self.add(library.mux_n(8, 4, "byte-packer"))
        self.add(library.register(64, "output-fifo-regs"))

        # --- Decoder datapath -------------------------------------------------
        # The coder IP of reference [7] is a full codec core: the decoder side
        # mirrors the encoder's interval arithmetic and adds the target search.
        self.add(library.multiplier(count_bits + 2, precision // 2, "decode-target"))
        self.add(library.adder(precision, "decode-low-update"))
        self.add(library.adder(precision, "decode-high-update"))
        self.add(library.comparator(precision, "decode-compare"), copies=2)
        self.add(library.barrel_shifter(precision, 5, "decode-renormalise"))
        self.add(library.register(precision, "code-register"))
        self.add(library.register(precision, "decode-low-register"))
        self.add(library.register(precision, "decode-high-register"))
        self.add(library.mux_n(8, 4, "byte-unpacker"))

        # --- Control and buffering -------------------------------------------
        self.add(library.counter(5, "control-fsm"))
        self.add(library.register(32, "control-state"))
        self.add(library.counter(6, "handshake-counters"), copies=2)
        # Output staging FIFO in distributed RAM.
        self.add_memory("output-fifo", 64 * 8, use_bram=False)

        # Interface: probability in, decision in, byte stream out, handshake.
        self.iob_count = count_bits + count_bits + 1 + 8 + 2 + 6


def default_blocks(
    config: Optional[CodecConfig] = None,
    image_width: int = 512,
    device: FpgaDevice = VIRTEX4_LX60,
) -> List[HardwareBlock]:
    """The three blocks of Table 2 with default parameters."""
    config = config if config is not None else CodecConfig.hardware()
    return [
        ModelingBlock(config=config, image_width=image_width, device=device),
        ProbabilityEstimatorBlock(config=config, device=device),
        ArithmeticCoderBlock(
            precision=config.coder_precision, count_bits=config.count_bits, device=device
        ),
    ]
