"""FPGA device descriptions.

The paper targets a Xilinx Virtex-4; the relevant geometry for the resource
model is how many 4-input LUTs and flip-flops a slice provides, how large
the block RAMs are, and the typical logic/routing delays used by the timing
model.  The values below are taken from the public Virtex-4 data sheet
(DS302) and user guide and are deliberately conservative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import HardwareModelError

__all__ = ["FpgaDevice", "VIRTEX4_LX60", "VIRTEX4_LX25"]


@dataclass(frozen=True)
class FpgaDevice:
    """Geometry and timing characteristics of one FPGA family member."""

    name: str
    #: 4-input LUTs per slice (2 on Virtex-4).
    luts_per_slice: int
    #: Flip-flops per slice (2 on Virtex-4).
    ffs_per_slice: int
    #: LUT input count (4 on Virtex-4).
    lut_inputs: int
    #: Total slices available on the device.
    total_slices: int
    #: Block RAM capacity in kilobits per block (18 kbit on Virtex-4).
    bram_kbits: int
    #: Total block RAMs on the device.
    total_brams: int
    #: Available bonded I/O blocks.
    total_iobs: int
    #: Global clock buffers.
    total_gclks: int
    #: Typical LUT propagation delay in nanoseconds.
    lut_delay_ns: float
    #: Typical net (routing) delay per hop in nanoseconds.
    routing_delay_ns: float
    #: Flip-flop clock-to-out plus setup in nanoseconds.
    register_overhead_ns: float
    #: Block RAM access time in nanoseconds.
    bram_access_ns: float
    #: Carry-chain delay per bit in nanoseconds.
    carry_delay_ns: float

    def slices_for(self, luts: int, ffs: int, packing_efficiency: float = 0.85) -> int:
        """Slices needed for ``luts`` LUTs and ``ffs`` flip-flops.

        ``packing_efficiency`` models the fact that place-and-route rarely
        packs unrelated logic into the same slice; 0.85 matches the
        LUT-to-slice ratios reported in Table 2 of the paper (roughly 1.8
        LUTs per slice out of the theoretical 2).
        """
        if luts < 0 or ffs < 0:
            raise HardwareModelError("resource counts must be non-negative")
        if not 0.1 <= packing_efficiency <= 1.0:
            raise HardwareModelError(
                "packing efficiency must be in [0.1, 1.0], got %f" % packing_efficiency
            )
        lut_slices = luts / (self.luts_per_slice * packing_efficiency)
        ff_slices = ffs / (self.ffs_per_slice * packing_efficiency)
        return max(1, int(round(max(lut_slices, ff_slices))))

    def brams_for(self, bits: int) -> int:
        """Number of block RAMs needed to hold ``bits`` of storage."""
        if bits < 0:
            raise HardwareModelError("memory size must be non-negative")
        if bits == 0:
            return 0
        capacity = self.bram_kbits * 1024
        return (bits + capacity - 1) // capacity


#: The mid-range Virtex-4 used as the default synthesis target.
VIRTEX4_LX60 = FpgaDevice(
    name="Xilinx Virtex-4 LX60",
    luts_per_slice=2,
    ffs_per_slice=2,
    lut_inputs=4,
    total_slices=26624,
    bram_kbits=18,
    total_brams=160,
    total_iobs=448,
    total_gclks=32,
    lut_delay_ns=0.37,
    routing_delay_ns=0.55,
    register_overhead_ns=0.65,
    bram_access_ns=1.65,
    carry_delay_ns=0.055,
)

#: A smaller family member (useful for utilisation-percentage reports).
VIRTEX4_LX25 = FpgaDevice(
    name="Xilinx Virtex-4 LX25",
    luts_per_slice=2,
    ffs_per_slice=2,
    lut_inputs=4,
    total_slices=10752,
    bram_kbits=18,
    total_brams=72,
    total_iobs=448,
    total_gclks=32,
    lut_delay_ns=0.37,
    routing_delay_ns=0.55,
    register_overhead_ns=0.65,
    bram_access_ns=1.65,
    carry_delay_ns=0.055,
)
