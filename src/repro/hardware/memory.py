"""On-chip memory inventory of the design.

Section V of the paper quotes two memory figures: 3.7 KBytes for the
modelling block and 4 KBytes for the probability estimator.  Both follow
directly from the algorithm's data structures, so this module derives them
from the codec configuration instead of hard-coding them:

Modelling block (512-pixel-wide image, 8-bit pixels)
    * three-row line buffer: ``3 * 512 * 8 bits = 1.5 KB``
    * per-context error statistics: ``512 contexts * (13 + 1 + 5) bits ≈ 1.2 KB``
    * division reciprocal ROM: ``512 * 16 bits = 1.0 KB``
    * total ≈ 3.7 KB

Probability estimator
    * eight dynamic trees * 256 leaf counters * 14 bits ≈ 3.5 KB (the paper
      rounds to 4 KB; internal-node sums are recomputed on the fly by the
      tree-walk datapath, so only the leaves need storage)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import CodecConfig

__all__ = ["MemoryInventory", "build_memory_inventory"]


@dataclass(frozen=True)
class MemoryInventory:
    """Byte-level breakdown of every on-chip memory in the design."""

    line_buffer_bytes: int
    context_statistics_bytes: int
    division_rom_bytes: int
    estimator_bytes: int

    @property
    def modeling_bytes(self) -> int:
        """Total memory attributed to the modelling block."""
        return self.line_buffer_bytes + self.context_statistics_bytes + self.division_rom_bytes

    @property
    def total_bytes(self) -> int:
        return self.modeling_bytes + self.estimator_bytes

    def as_dict(self) -> Dict[str, int]:
        return {
            "line_buffer_bytes": self.line_buffer_bytes,
            "context_statistics_bytes": self.context_statistics_bytes,
            "division_rom_bytes": self.division_rom_bytes,
            "modeling_bytes": self.modeling_bytes,
            "estimator_bytes": self.estimator_bytes,
            "total_bytes": self.total_bytes,
        }

    def format_summary(self) -> str:
        kb = 1024.0
        return (
            "modelling: %.2f KB (line buffer %.2f + context stats %.2f + "
            "division ROM %.2f) | probability estimator: %.2f KB | total %.2f KB"
            % (
                self.modeling_bytes / kb,
                self.line_buffer_bytes / kb,
                self.context_statistics_bytes / kb,
                self.division_rom_bytes / kb,
                self.estimator_bytes / kb,
                self.total_bytes / kb,
            )
        )


def build_memory_inventory(
    config: Optional[CodecConfig] = None, image_width: int = 512
) -> MemoryInventory:
    """Derive the memory inventory from a codec configuration."""
    config = config if config is not None else CodecConfig.hardware()

    line_buffer_bits = 3 * image_width * config.bit_depth
    per_context_bits = config.bias_sum_magnitude_bits + 1 + config.bias_count_bits
    context_bits = config.compound_contexts * per_context_bits
    division_bits = 512 * 16 if config.use_lut_division else 0
    estimator_bits = config.energy_levels * config.alphabet_size * config.count_bits

    return MemoryInventory(
        line_buffer_bytes=(line_buffer_bits + 7) // 8,
        context_statistics_bytes=(context_bits + 7) // 8,
        division_rom_bytes=(division_bits + 7) // 8,
        estimator_bytes=(estimator_bits + 7) // 8,
    )
