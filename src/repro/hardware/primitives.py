"""Resource and delay costs of RTL primitives on a 4-LUT FPGA fabric.

The paper's design avoids multipliers and dividers, so the architectural
blocks decompose into a small set of primitives: ripple-carry adders and
subtractors, magnitude comparators, two-input multiplexers, fixed and barrel
shifters, registers, distributed-RAM ROMs and block RAMs.  This module gives
each primitive a LUT / flip-flop / BRAM cost and a combinational delay so
:mod:`repro.hardware.blocks` can compose whole blocks and
:mod:`repro.hardware.timing` can estimate the critical path.

The cost formulas are the standard first-order estimates for the Virtex-4
fabric (one LUT per result bit for add/sub using the carry chain, one LUT
per 2:1 mux bit, one LUT per 16×1 bits of distributed ROM, …).  They are
estimates, not synthesis results; the calibration against the paper's
Table 2 is discussed in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import HardwareModelError
from repro.hardware.device import FpgaDevice

__all__ = ["ResourceCount", "Primitive", "PrimitiveLibrary"]


@dataclass
class ResourceCount:
    """LUT / flip-flop / BRAM / IOB totals of a primitive or a block."""

    luts: int = 0
    ffs: int = 0
    brams: int = 0
    iobs: int = 0

    def __add__(self, other: "ResourceCount") -> "ResourceCount":
        return ResourceCount(
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            brams=self.brams + other.brams,
            iobs=self.iobs + other.iobs,
        )

    def scaled(self, factor: int) -> "ResourceCount":
        """Return this count replicated ``factor`` times."""
        if factor < 0:
            raise HardwareModelError("replication factor must be non-negative")
        return ResourceCount(
            luts=self.luts * factor,
            ffs=self.ffs * factor,
            brams=self.brams * factor,
            iobs=self.iobs * factor,
        )


@dataclass(frozen=True)
class Primitive:
    """One instantiated primitive: a name, its resources and its delay."""

    name: str
    resources: ResourceCount
    delay_ns: float


class PrimitiveLibrary:
    """Factory of primitives costed for a particular device."""

    def __init__(self, device: FpgaDevice) -> None:
        self.device = device

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #

    def adder(self, width: int, name: str = "adder") -> Primitive:
        """Ripple-carry adder/subtractor of ``width`` bits (carry chain)."""
        self._check_width(width)
        delay = (
            self.device.lut_delay_ns
            + self.device.routing_delay_ns
            + width * self.device.carry_delay_ns
        )
        return Primitive(name, ResourceCount(luts=width), delay)

    def subtractor(self, width: int, name: str = "subtractor") -> Primitive:
        """Same cost as an adder on LUT fabric."""
        return self.adder(width, name)

    def absolute_difference(self, width: int, name: str = "absdiff") -> Primitive:
        """|a - b|: a subtractor plus a conditional negation stage."""
        self._check_width(width)
        sub = self.adder(width, name)
        negate = self.mux2(width, name)
        return Primitive(
            name,
            sub.resources + negate.resources,
            sub.delay_ns + negate.delay_ns,
        )

    def comparator(self, width: int, name: str = "comparator") -> Primitive:
        """Magnitude comparator (carry-chain based, ~width/2 LUTs)."""
        self._check_width(width)
        luts = max(1, (width + 1) // 2)
        delay = (
            self.device.lut_delay_ns
            + self.device.routing_delay_ns
            + width * self.device.carry_delay_ns
        )
        return Primitive(name, ResourceCount(luts=luts), delay)

    def multiplier(self, width_a: int, width_b: int, name: str = "multiplier") -> Primitive:
        """LUT-fabric array multiplier (only the coder's range scaling uses one)."""
        self._check_width(width_a)
        self._check_width(width_b)
        luts = width_a * width_b
        delay = (
            2 * (self.device.lut_delay_ns + self.device.routing_delay_ns)
            + (width_a + width_b) * self.device.carry_delay_ns
        )
        return Primitive(name, ResourceCount(luts=luts), delay)

    # ------------------------------------------------------------------ #
    # steering logic
    # ------------------------------------------------------------------ #

    def mux2(self, width: int, name: str = "mux2") -> Primitive:
        """2:1 multiplexer, one LUT per bit."""
        self._check_width(width)
        return Primitive(
            name,
            ResourceCount(luts=width),
            self.device.lut_delay_ns + self.device.routing_delay_ns,
        )

    def mux_n(self, width: int, inputs: int, name: str = "muxN") -> Primitive:
        """N:1 multiplexer built from a tree of 2:1 muxes."""
        self._check_width(width)
        if inputs < 2:
            raise HardwareModelError("mux needs at least 2 inputs, got %d" % inputs)
        levels = (inputs - 1).bit_length()
        luts = width * (inputs - 1)
        delay = levels * (self.device.lut_delay_ns + self.device.routing_delay_ns)
        return Primitive(name, ResourceCount(luts=luts), delay)

    def barrel_shifter(self, width: int, stages: int, name: str = "barrel") -> Primitive:
        """Logarithmic barrel shifter: one mux layer per stage."""
        self._check_width(width)
        if stages <= 0:
            raise HardwareModelError("shifter needs at least 1 stage, got %d" % stages)
        luts = width * stages
        delay = stages * (self.device.lut_delay_ns + self.device.routing_delay_ns)
        return Primitive(name, ResourceCount(luts=luts), delay)

    # ------------------------------------------------------------------ #
    # storage
    # ------------------------------------------------------------------ #

    def register(self, width: int, name: str = "register") -> Primitive:
        """Pipeline register: flip-flops only."""
        self._check_width(width)
        return Primitive(name, ResourceCount(ffs=width), self.device.register_overhead_ns)

    def counter(self, width: int, name: str = "counter") -> Primitive:
        """Loadable counter: an adder plus a register."""
        add = self.adder(width, name)
        reg = self.register(width, name)
        return Primitive(name, add.resources + reg.resources, add.delay_ns)

    def distributed_rom(self, bits: int, name: str = "dist-rom") -> Primitive:
        """ROM in distributed (LUT) RAM: one LUT per 16 bits on a 4-LUT fabric."""
        if bits < 0:
            raise HardwareModelError("ROM size must be non-negative")
        luts = (bits + 15) // 16
        return Primitive(
            name,
            ResourceCount(luts=luts),
            self.device.lut_delay_ns + self.device.routing_delay_ns,
        )

    def block_ram(self, bits: int, name: str = "bram") -> Primitive:
        """Dedicated block RAM storage."""
        return Primitive(
            name,
            ResourceCount(brams=self.device.brams_for(bits)),
            self.device.bram_access_ns,
        )

    def io_pins(self, count: int, name: str = "io") -> Primitive:
        """Bonded IOBs for a block-level interface."""
        if count < 0:
            raise HardwareModelError("IOB count must be non-negative")
        return Primitive(name, ResourceCount(iobs=count), 0.0)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_width(width: int) -> None:
        if width <= 0:
            raise HardwareModelError("primitive width must be positive, got %d" % width)
