"""Array marshalling around the native kernels.

The functions here mirror :func:`repro.fast.engine.encode_payload_fast` /
``decode_payload_fast`` exactly — same inputs, same outputs, same exception
types on the same inputs — but execute the hot loops through the
``nopython`` kernels of :mod:`repro.native.kernels`.  The encode side reuses
the fast engine's row-vectorized modelling front-end
(:func:`repro.fast.rowmodel.model_image`); the decode side consumes the
payload through :func:`numpy.frombuffer`, so a ``memoryview`` over an
mmap'ed blob is decoded **without copying the encoded bytes** (the
zero-copy read path of the store tier).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.config import CodecConfig
from repro.core.encoder import EncodeStatistics
from repro.core.tables import ModelingTables
from repro.entropy.freqtree import StaticTree, symbol_path_table
from repro.exceptions import BitstreamError, ConfigError, ModelStateError
from repro.fast.rowmodel import model_image
from repro.imaging.image import GrayImage
from repro.native.kernels import (
    DECODE_IMPOSSIBLE,
    DECODE_OK,
    DECODE_PADDING_LEAF,
    DECODE_STATIC_OVERFLOW,
    DECODE_TRUNCATED,
    decode_cell_kernel,
    encode_cell_kernel,
)

__all__ = ["encode_payload_native", "decode_payload_native"]

#: Widest kernel intermediate is ``span * left`` < 2**(precision +
#: count_bits + tree depth); int64 gives 62 usable magnitude bits.
_INT64_BUDGET_BITS = 62


def _next_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power <<= 1
    return power


def _tree_geometry(config: CodecConfig) -> Tuple[int, int]:
    """``(num_leaves, depth)`` of the per-context escape-carrying tree."""
    num_leaves = _next_power_of_two(config.alphabet_size + 1)
    return num_leaves, num_leaves.bit_length() - 1


def _require_int64_headroom(config: CodecConfig, depth: int) -> None:
    needed = config.coder_precision + config.count_bits + depth
    if needed > _INT64_BUDGET_BITS:
        raise ConfigError(
            "native engine: coder_precision (%d) + count_bits (%d) + tree depth (%d) "
            "= %d bits exceeds the %d-bit int64 kernel budget; use the reference or "
            "fast engine for this configuration"
            % (config.coder_precision, config.count_bits, depth, needed, _INT64_BUDGET_BITS)
        )


def _fresh_counts(config: CodecConfig, num_leaves: int) -> np.ndarray:
    """One implicit-heap frequency tree per context, fresh initial state.

    Identical numbers to :class:`repro.entropy.freqtree.FrequencyTree`:
    every real leaf and the escape leaf start at one, internal nodes sum
    their children, padding leaves stay zero.
    """
    counts = np.zeros((config.energy_levels, 2 * num_leaves), dtype=np.int64)
    counts[:, num_leaves : num_leaves + config.alphabet_size + 1] = 1
    for node in range(num_leaves - 1, 0, -1):
        counts[:, node] = counts[:, 2 * node] + counts[:, 2 * node + 1]
    return counts


class _KernelTables:
    """Array-shaped :class:`~repro.core.tables.ModelingTables`, per config."""

    def __init__(self, config: CodecConfig) -> None:
        tables = ModelingTables(config)
        self.energy_lut = np.asarray(tables.energy_lut, dtype=np.int64)
        self.energy_lut_limit = tables.energy_lut_limit
        if tables.reciprocal_rom is not None:
            self.use_rom = 1
            self.rom = np.asarray(tables.reciprocal_rom, dtype=np.int64)
        else:
            self.use_rom = 0
            self.rom = np.zeros(1, dtype=np.int64)
        self.rom_shift = tables.reciprocal_shift
        self.rom_rounding = tables.reciprocal_rounding
        self.dividend_max = tables.dividend_max
        self.sum_max = tables.sum_max
        self.bias_count_max = tables.count_max
        self.num_leaves, self.depth = _tree_geometry(config)
        self.static_depth = StaticTree(config.alphabet_size).depth
        # Shared with the other engines so all three warm the same cache.
        symbol_path_table(self.depth)


_TABLE_CACHE: dict = {}


def _kernel_tables(config: CodecConfig) -> _KernelTables:
    cached = _TABLE_CACHE.get(config)
    if cached is None:
        cached = _KernelTables(config)
        _TABLE_CACHE[config] = cached
    return cached


def encode_payload_native(image: GrayImage, config: CodecConfig) -> tuple:
    """Native-engine equivalent of :func:`repro.core.encoder.encode_payload`.

    Returns ``(payload, statistics)`` with a byte-identical payload and the
    same :class:`~repro.core.encoder.EncodeStatistics` counters.
    """
    kt = _kernel_tables(config)
    _require_int64_headroom(config, kt.depth)
    width = image.width
    height = image.height
    px = np.asarray(image.pixels(), dtype=np.int64).reshape(height, width)
    if px.size and (px.max() > config.max_sample or px.min() < 0):
        out_of_range = px[(px > config.max_sample) | (px < 0)]
        raise ModelStateError(
            "pixel value %d outside [0, %d]" % (int(out_of_range.flat[0]), config.max_sample)
        )
    model = model_image(px, config)
    values = np.ascontiguousarray(px)
    predicted = np.ascontiguousarray(model.predicted)
    texture = np.ascontiguousarray(model.texture)
    gradient = np.ascontiguousarray(model.gradient)

    size = 1 << config.bit_depth
    out = np.empty(px.size * 4 + 1024, dtype=np.uint8)
    while True:
        # Fresh adaptive state per attempt: the kernel mutates it in place.
        counts = _fresh_counts(config, kt.num_leaves)
        bias_sums = np.zeros(config.compound_contexts, dtype=np.int64)
        bias_counts = np.zeros(config.compound_contexts, dtype=np.int64)
        stats = np.zeros(4, dtype=np.int64)
        symbols_per_context = np.zeros(config.energy_levels, dtype=np.int64)
        written = encode_cell_kernel(
            values,
            predicted,
            texture,
            gradient,
            kt.energy_lut,
            kt.energy_lut_limit,
            config.energy_levels - 1,
            config.energy_levels,
            kt.use_rom,
            kt.rom,
            kt.rom_shift,
            kt.rom_rounding,
            kt.dividend_max,
            kt.sum_max,
            kt.bias_count_max,
            1 if config.use_overflow_guard_aging else 0,
            1 if config.use_error_feedback else 0,
            counts,
            kt.num_leaves,
            kt.depth,
            config.estimator_increment,
            (1 << config.count_bits) - 1,
            config.alphabet_size,
            kt.static_depth,
            bias_sums,
            bias_counts,
            config.max_sample,
            size,
            size - 1,
            size >> 1,
            config.coder_precision,
            out,
            stats,
            symbols_per_context,
        )
        if written <= out.shape[0]:
            break
        # The kernel kept counting past the buffer: retry with the exact size.
        out = np.empty(int(written), dtype=np.uint8)

    payload = out[: int(written)].tobytes()
    statistics = EncodeStatistics(
        payload_bytes=len(payload),
        escapes=int(stats[0]),
        tree_rescales=int(stats[1]),
        binary_decisions=int(stats[2]),
        context_usage={
            context: int(used)
            for context, used in enumerate(symbols_per_context)
            if used
        },
        bias_saturations=int(stats[3]),
    )
    return payload, statistics


def decode_payload_native(
    payload, width: int, height: int, config: CodecConfig
) -> List[int]:
    """Native-engine equivalent of :func:`repro.core.decoder.decode_payload`.

    ``payload`` may be any object exposing the buffer protocol (``bytes``,
    ``memoryview``, an mmap'ed slice): the kernel reads it in place through
    :func:`numpy.frombuffer` without copying.
    """
    if width <= 0:
        raise ModelStateError("window width must be positive, got %d" % width)
    kt = _kernel_tables(config)
    _require_int64_headroom(config, kt.depth)
    data = np.frombuffer(payload, dtype=np.uint8)
    pixels = np.empty(height * width, dtype=np.int64)
    counts = _fresh_counts(config, kt.num_leaves)
    bias_sums = np.zeros(config.compound_contexts, dtype=np.int64)
    bias_counts = np.zeros(config.compound_contexts, dtype=np.int64)
    size = 1 << config.bit_depth
    status = decode_cell_kernel(
        data,
        pixels,
        width,
        height,
        kt.energy_lut,
        kt.energy_lut_limit,
        config.energy_levels - 1,
        config.energy_levels,
        kt.use_rom,
        kt.rom,
        kt.rom_shift,
        kt.rom_rounding,
        kt.dividend_max,
        kt.sum_max,
        kt.bias_count_max,
        1 if config.use_overflow_guard_aging else 0,
        1 if config.use_error_feedback else 0,
        counts,
        kt.num_leaves,
        kt.depth,
        config.estimator_increment,
        (1 << config.count_bits) - 1,
        config.alphabet_size,
        kt.static_depth,
        bias_sums,
        bias_counts,
        config.max_sample,
        size,
        size - 1,
        size >> 1,
        (config.max_sample + 1) // 2,
        config.gap_sharp_threshold,
        config.gap_strong_threshold,
        config.gap_weak_threshold,
        (1 << config.texture_bits) - 1,
        config.coder_precision,
    )
    if status == DECODE_OK:
        return pixels.tolist()
    if status == DECODE_TRUNCATED:
        raise BitstreamError(
            "read past the end of a %d-byte bitstream; "
            "the stream is truncated or corrupt" % data.shape[0]
        )
    if status == DECODE_IMPOSSIBLE:
        raise BitstreamError("decoded a decision the model deems impossible")
    if status == DECODE_STATIC_OVERFLOW:
        raise ModelStateError(
            "static tree decoded a symbol outside the alphabet of %d" % config.alphabet_size
        )
    if status == DECODE_PADDING_LEAF:
        raise ModelStateError("decoded padding leaf; bitstream is corrupt")
    raise ModelStateError("native decode kernel returned unknown status %d" % status)
