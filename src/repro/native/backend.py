"""Registry backend of the native coding engine.

Wraps the functional entry points of :mod:`repro.native.engine` in the
:class:`~repro.core.interface.EngineBackend` protocol and registers them as
``engine="native"``.  :func:`repro.core.interface.get_engine` imports this
module lazily — and only after its availability gate passed (numba
importable, or the ``REPRO_NATIVE_PURE_PYTHON=1`` test opt-in) — so a
process without numba never pays the import and gets a clear
:class:`~repro.exceptions.ConfigError` instead of an ``ImportError``.

Importing this module directly is itself an opt-in: the kernels then run
pure-Python when numba is missing (byte-identical, slow), which is what the
without-numba conformance tests do on purpose.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.core.config import CodecConfig
from repro.core.interface import EngineBackend, register_engine
from repro.imaging.image import GrayImage
from repro.native.engine import decode_payload_native, encode_payload_native
from repro.native.jit import NUMBA_AVAILABLE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.encoder import EncodeStatistics

__all__ = ["NativeEngine"]


class NativeEngine(EngineBackend):
    """JIT-compiled entropy kernels + shared row modelling; byte-identical."""

    name = "native"

    #: Whether this process runs the kernels JIT-compiled (False means the
    #: pure-Python fallback — same bytes, interpreter speed).
    jit = NUMBA_AVAILABLE

    def encode_payload(
        self, image: GrayImage, config: CodecConfig
    ) -> Tuple[bytes, "EncodeStatistics"]:
        return encode_payload_native(image, config)

    def decode_payload(
        self, payload: bytes, width: int, height: int, config: CodecConfig
    ) -> List[int]:
        return decode_payload_native(payload, width, height, config)


register_engine(NativeEngine())
