"""``nopython`` kernels of the native engine — the codec's hot loops.

Each kernel is a module-level function over plain ``int64``/``uint8`` NumPy
arrays and scalars, written in the intersection of numba's ``nopython``
dialect and ordinary Python: the same source either JIT-compiles (numba
installed) or runs interpreted (the ``REPRO_NATIVE_PURE_PYTHON=1`` test
mode), producing bit-for-bit identical output either way.

The arithmetic replicates :mod:`repro.fast.engine` decision for decision —
same register geometry, same split computation, same renormalisation and
adaptation order — with one deliberate restructuring: the fast engine
batches pending-bit emission through an *unbounded* Python integer
(``bitbuf << (1 + pending)``), which an ``int64`` kernel cannot do.  The
kernels emit carry-safe, bit by bit (:func:`_put_bit` keeps the staging
buffer under one byte), which produces exactly the same byte stream: a
renormalisation that emits ``b`` then ``pending`` complements of ``b`` is
the same MSB-first bit sequence whichever way it is buffered.

Register-width budget: the widest intermediate is ``span * left`` with
``span < 2**precision`` and ``left`` bounded by the tree root (at most
``2**(count_bits + depth)``), so the wrapper refuses configurations where
``precision + count_bits + depth`` exceeds 62 — every default and every
bit depth up to 15 fits comfortably.

Errors are returned as status codes (see ``DECODE_*``), not raised: numba
restricts in-kernel exceptions, and status returns keep the JIT and
pure-Python paths identical.  The wrappers in :mod:`repro.native.engine`
translate them into the package's exception types.
"""

from __future__ import annotations

from repro.native.jit import njit

__all__ = [
    "encode_cell_kernel",
    "decode_cell_kernel",
    "DECODE_OK",
    "DECODE_TRUNCATED",
    "DECODE_IMPOSSIBLE",
    "DECODE_STATIC_OVERFLOW",
    "DECODE_PADDING_LEAF",
]

DECODE_OK = 0
DECODE_TRUNCATED = 1
DECODE_IMPOSSIBLE = 2
DECODE_STATIC_OVERFLOW = 3
DECODE_PADDING_LEAF = 4


@njit(cache=True, nogil=True)
def _put_bit(out, pos, bitbuf, nbits, bit):
    """Append one bit MSB-first; flush whole bytes into ``out``.

    ``pos`` keeps advancing past the end of ``out`` without writing, so a
    too-small buffer still yields the exact byte count for the retry.
    """
    bitbuf = (bitbuf << 1) | bit
    nbits += 1
    if nbits == 8:
        if pos < out.shape[0]:
            out[pos] = bitbuf
        pos += 1
        bitbuf = 0
        nbits = 0
    return pos, bitbuf, nbits


@njit(cache=True, nogil=True)
def _encoder_renorm(
    out, pos, bitbuf, nbits, low, high, pending, reg_half, reg_quarter, reg_three_quarters
):
    """E1/E2/E3 renormalisation after one coded decision (encoder side)."""
    while True:
        if high < reg_half:
            pos, bitbuf, nbits = _put_bit(out, pos, bitbuf, nbits, 0)
            while pending > 0:
                pos, bitbuf, nbits = _put_bit(out, pos, bitbuf, nbits, 1)
                pending -= 1
        elif low >= reg_half:
            pos, bitbuf, nbits = _put_bit(out, pos, bitbuf, nbits, 1)
            while pending > 0:
                pos, bitbuf, nbits = _put_bit(out, pos, bitbuf, nbits, 0)
                pending -= 1
            low -= reg_half
            high -= reg_half
        elif low >= reg_quarter and high < reg_three_quarters:
            pending += 1
            low -= reg_quarter
            high -= reg_quarter
        else:
            break
        low <<= 1
        high = (high << 1) | 1
    return pos, bitbuf, nbits, low, high, pending


@njit(cache=True, nogil=True)
def _read_bit(data, byte_pos, bit_pos, phantom, max_phantom):
    """One MSB-first bit; phantom zeros past the end, ``-1`` = truncated."""
    if byte_pos < data.shape[0]:
        bit = (int(data[byte_pos]) >> (7 - bit_pos)) & 1
        bit_pos += 1
        if bit_pos == 8:
            bit_pos = 0
            byte_pos += 1
        return bit, byte_pos, bit_pos, phantom
    phantom += 1
    if phantom > max_phantom:
        return -1, byte_pos, bit_pos, phantom
    return 0, byte_pos, bit_pos, phantom


@njit(cache=True, nogil=True)
def _decoder_renorm(
    data,
    low,
    high,
    code,
    byte_pos,
    bit_pos,
    phantom,
    reg_half,
    reg_quarter,
    reg_three_quarters,
    max_phantom,
):
    """Decoder-side renormalisation; the trailing flag is 0 on truncation."""
    while True:
        if high < reg_half:
            pass
        elif low >= reg_half:
            low -= reg_half
            high -= reg_half
            code -= reg_half
        elif low >= reg_quarter and high < reg_three_quarters:
            low -= reg_quarter
            high -= reg_quarter
            code -= reg_quarter
        else:
            break
        low <<= 1
        high = (high << 1) | 1
        bit, byte_pos, bit_pos, phantom = _read_bit(data, byte_pos, bit_pos, phantom, max_phantom)
        if bit < 0:
            return low, high, code, byte_pos, bit_pos, phantom, 0
        code = (code << 1) | bit
    return low, high, code, byte_pos, bit_pos, phantom, 1


@njit(cache=True, nogil=True)
def encode_cell_kernel(
    values,
    predicted,
    texture,
    gradient,
    energy_lut,
    energy_lut_limit,
    top_level,
    levels,
    use_rom,
    rom,
    rom_shift,
    rom_rounding,
    dividend_max,
    sum_max,
    bias_count_max,
    aging,
    use_feedback,
    counts,
    num_leaves,
    depth,
    increment,
    max_count,
    alphabet,
    static_depth,
    bias_sums,
    bias_counts,
    maxv,
    size,
    mask,
    half,
    precision,
    out,
    stats,
    symbols_per_context,
):
    """Serial back-end of the encoder over a pre-modelled cell.

    ``values``/``predicted``/``texture``/``gradient`` are the row-model
    outputs (``int64``, height x width); ``counts`` is one implicit-heap
    frequency tree per context (``levels x 2*num_leaves``) with fresh
    initial state; ``stats`` receives ``[escapes, rescales, decisions,
    bias_saturations]``.  Returns the payload byte count — which exceeds
    ``out.shape[0]`` when the buffer was too small (re-run with a buffer of
    exactly that size; all state arrays must be re-initialised first).
    """
    height = values.shape[0]
    width = values.shape[1]

    reg_half = 1 << (precision - 1)
    reg_quarter = 1 << (precision - 2)
    reg_three_quarters = reg_half + reg_quarter
    low = 0
    high = (1 << precision) - 1
    pending = 0

    pos = 0
    bitbuf = 0
    nbits = 0

    for y in range(height):
        twice_prev = 0
        for x in range(width):
            # --- serial modelling tail: QE, compound context, feedback --- #
            energy = gradient[y, x] + twice_prev
            if energy <= energy_lut_limit:
                q = energy_lut[energy]
            else:
                q = top_level
            compound = texture[y, x] * levels + q
            adjusted = predicted[y, x]
            count = bias_counts[compound]
            if count != 0 and use_feedback != 0:
                total = bias_sums[compound]
                if total > dividend_max:
                    total = dividend_max
                elif total < -dividend_max:
                    total = -dividend_max
                if use_rom != 0:
                    if total < 0:
                        mean = -((-total * rom[count] + rom_rounding) >> rom_shift)
                    else:
                        mean = (total * rom[count] + rom_rounding) >> rom_shift
                else:
                    if total < 0:
                        mean = -((-total + count // 2) // count)
                    else:
                        mean = (total + count // 2) // count
                adjusted = adjusted + mean
                if adjusted < 0:
                    adjusted = 0
                elif adjusted > maxv:
                    adjusted = maxv

            # --- error mapping (modulo reduction + interleaved fold) ----- #
            error = (values[y, x] - adjusted) & mask
            if error >= half:
                error -= size
            if error >= 0:
                symbol = error + error
            else:
                symbol = -error - error - 1

            # --- entropy coding: tree path walk + arithmetic coder ------- #
            escaped = counts[q, num_leaves + symbol] <= 0
            walk = alphabet if escaped else symbol
            node = 1
            for level in range(depth - 1, -1, -1):
                direction = (walk >> level) & 1
                left = counts[q, node + node]
                span = high - low + 1
                split = low + (span * left) // counts[q, node] - 1
                if direction == 0:
                    high = split
                else:
                    low = split + 1
                node = node + node + direction
                pos, bitbuf, nbits, low, high, pending = _encoder_renorm(
                    out, pos, bitbuf, nbits, low, high, pending,
                    reg_half, reg_quarter, reg_three_quarters,
                )
            stats[2] += depth
            if escaped:
                # Escape: the raw symbol goes through the uniform static
                # tree (probability one half per level).
                stats[0] += 1
                stats[2] += static_depth
                for level in range(static_depth - 1, -1, -1):
                    span = high - low + 1
                    split = low + (span >> 1) - 1
                    if (symbol >> level) & 1:
                        low = split + 1
                    else:
                        high = split
                    pos, bitbuf, nbits, low, high, pending = _encoder_renorm(
                        out, pos, bitbuf, nbits, low, high, pending,
                        reg_half, reg_quarter, reg_three_quarters,
                    )

            # --- probability-estimator adaptation ------------------------ #
            leaf = num_leaves + symbol
            if counts[q, leaf] + increment > max_count:
                for i in range(num_leaves, num_leaves + num_leaves):
                    counts[q, i] >>= 1
                if counts[q, num_leaves + alphabet] < 1:
                    counts[q, num_leaves + alphabet] = 1
                for parent in range(num_leaves - 1, 0, -1):
                    counts[q, parent] = counts[q, parent + parent] + counts[q, parent + parent + 1]
                stats[1] += 1
            counts[q, leaf] += increment
            up = leaf >> 1
            while up:
                counts[q, up] += increment
                up >>= 1
            symbols_per_context[q] += 1

            # --- bias-corrector adaptation (Overflow Guard) -------------- #
            count = bias_counts[compound]
            if count < bias_count_max or aging != 0:
                total = bias_sums[compound]
                if count >= bias_count_max:
                    count >>= 1
                    if total < 0:
                        total = -((-total) >> 1)
                    else:
                        total = total >> 1
                count += 1
                total += error
                if total > sum_max:
                    total = sum_max
                elif total < -sum_max:
                    total = -sum_max
                bias_counts[compound] = count
                bias_sums[compound] = total
                if count == bias_count_max:
                    stats[3] += 1

            if error >= 0:
                twice_prev = error + error
            else:
                twice_prev = -error - error

    # Coder termination: one extra pending bit, then one disambiguating bit
    # (0 selects the lower quarter, 1 the upper) with its pending complement.
    pending += 1
    if low < reg_quarter:
        pos, bitbuf, nbits = _put_bit(out, pos, bitbuf, nbits, 0)
        while pending > 0:
            pos, bitbuf, nbits = _put_bit(out, pos, bitbuf, nbits, 1)
            pending -= 1
    else:
        pos, bitbuf, nbits = _put_bit(out, pos, bitbuf, nbits, 1)
        while pending > 0:
            pos, bitbuf, nbits = _put_bit(out, pos, bitbuf, nbits, 0)
            pending -= 1
    if nbits > 0:
        if pos < out.shape[0]:
            out[pos] = (bitbuf << (8 - nbits)) & 0xFF
        pos += 1
    return pos


@njit(cache=True, nogil=True)
def decode_cell_kernel(
    data,
    pixels,
    width,
    height,
    energy_lut,
    energy_lut_limit,
    top_level,
    levels,
    use_rom,
    rom,
    rom_shift,
    rom_rounding,
    dividend_max,
    sum_max,
    bias_count_max,
    aging,
    use_feedback,
    counts,
    num_leaves,
    depth,
    increment,
    max_count,
    alphabet,
    static_depth,
    bias_sums,
    bias_counts,
    maxv,
    size,
    mask,
    half,
    default,
    sharp,
    strong,
    weak,
    texture_mask,
    precision,
):
    """Fully inlined decoder over one cell payload.

    ``data`` is the raw payload (``uint8``, possibly a zero-copy view over
    an mmap'ed blob — the kernel only reads it); ``pixels`` (``int64``,
    ``height * width``) receives the reconstruction and doubles as the
    causal window (rows decoded earlier are read back by index).  Returns
    one of the ``DECODE_*`` status codes.
    """
    reg_half = 1 << (precision - 1)
    reg_quarter = 1 << (precision - 2)
    reg_three_quarters = reg_half + reg_quarter
    max_phantom = 4 * precision
    byte_pos = 0
    bit_pos = 0
    phantom = 0
    low = 0
    high = (1 << precision) - 1
    code = 0
    for _ in range(precision):
        bit, byte_pos, bit_pos, phantom = _read_bit(data, byte_pos, bit_pos, phantom, max_phantom)
        if bit < 0:
            return DECODE_TRUNCATED
        code = (code << 1) | bit

    for y in range(height):
        row = y * width
        twice_prev = 0
        for x in range(width):
            # --- causal neighbourhood (three-row window, inlined) -------- #
            if x >= 1:
                w = pixels[row + x - 1]
            elif y >= 1:
                w = pixels[row - width]
            else:
                w = default
            ww = pixels[row + x - 2] if x >= 2 else w
            if y >= 1:
                n = pixels[row - width + x]
                nw = pixels[row - width + x - 1] if x >= 1 else n
                ne = pixels[row - width + x + 1] if x + 1 < width else n
            else:
                n = w
                nw = w
                ne = w
            if y >= 2:
                nn = pixels[row - width - width + x]
                nne = pixels[row - width - width + x + 1] if x + 1 < width else nn
            else:
                nn = n
                nne = ne

            # --- GAP prediction (inlined scalar cascade) ----------------- #
            dh = abs(w - ww) + abs(n - nw) + abs(n - ne)
            dv = abs(w - nw) + abs(n - nn) + abs(ne - nne)
            diff = dv - dh
            if diff > sharp:
                pred = w
            elif -diff > sharp:
                pred = n
            else:
                pred = ((w + n) >> 1) + ((ne - nw) >> 2)
                if diff > strong:
                    pred = (pred + w) >> 1
                elif diff > weak:
                    pred = (3 * pred + w) >> 2
                elif -diff > strong:
                    pred = (pred + n) >> 1
                elif -diff > weak:
                    pred = (3 * pred + n) >> 2
            if pred < 0:
                pred = 0
            elif pred > maxv:
                pred = maxv

            # --- texture pattern + coding context ------------------------ #
            pattern = 0
            if n < pred:
                pattern |= 1
            if w < pred:
                pattern |= 2
            if nw < pred:
                pattern |= 4
            if ne < pred:
                pattern |= 8
            if nn < pred:
                pattern |= 16
            if ww < pred:
                pattern |= 32
            pattern &= texture_mask
            energy = dh + dv + twice_prev
            if energy <= energy_lut_limit:
                q = energy_lut[energy]
            else:
                q = top_level
            compound = pattern * levels + q

            # --- error feedback ------------------------------------------ #
            adjusted = pred
            count = bias_counts[compound]
            if count != 0 and use_feedback != 0:
                total = bias_sums[compound]
                if total > dividend_max:
                    total = dividend_max
                elif total < -dividend_max:
                    total = -dividend_max
                if use_rom != 0:
                    if total < 0:
                        mean = -((-total * rom[count] + rom_rounding) >> rom_shift)
                    else:
                        mean = (total * rom[count] + rom_rounding) >> rom_shift
                else:
                    if total < 0:
                        mean = -((-total + count // 2) // count)
                    else:
                        mean = (total + count // 2) // count
                adjusted = adjusted + mean
                if adjusted < 0:
                    adjusted = 0
                elif adjusted > maxv:
                    adjusted = maxv

            # --- entropy decoding: tree walk + arithmetic coder ---------- #
            symbol = 0
            node = 1
            for _level in range(depth):
                left = counts[q, node + node]
                span = high - low + 1
                split = low + (span * left) // counts[q, node] - 1
                if code <= split:
                    if left <= 0:
                        return DECODE_IMPOSSIBLE
                    bit = 0
                    high = split
                else:
                    if left >= counts[q, node]:
                        return DECODE_IMPOSSIBLE
                    bit = 1
                    low = split + 1
                low, high, code, byte_pos, bit_pos, phantom, alive = _decoder_renorm(
                    data, low, high, code, byte_pos, bit_pos, phantom,
                    reg_half, reg_quarter, reg_three_quarters, max_phantom,
                )
                if alive == 0:
                    return DECODE_TRUNCATED
                symbol = (symbol << 1) | bit
                node = node + node + bit

            if symbol == alphabet:
                # Escaped symbol: read it from the uniform static tree.
                symbol = 0
                for _level in range(static_depth):
                    span = high - low + 1
                    split = low + (span >> 1) - 1
                    if code <= split:
                        bit = 0
                        high = split
                    else:
                        bit = 1
                        low = split + 1
                    low, high, code, byte_pos, bit_pos, phantom, alive = _decoder_renorm(
                        data, low, high, code, byte_pos, bit_pos, phantom,
                        reg_half, reg_quarter, reg_three_quarters, max_phantom,
                    )
                    if alive == 0:
                        return DECODE_TRUNCATED
                    symbol = (symbol << 1) | bit
                if symbol >= alphabet:
                    return DECODE_STATIC_OVERFLOW
            elif symbol > alphabet:
                return DECODE_PADDING_LEAF

            # --- probability-estimator adaptation ------------------------ #
            leaf = num_leaves + symbol
            if counts[q, leaf] + increment > max_count:
                for i in range(num_leaves, num_leaves + num_leaves):
                    counts[q, i] >>= 1
                if counts[q, num_leaves + alphabet] < 1:
                    counts[q, num_leaves + alphabet] = 1
                for parent in range(num_leaves - 1, 0, -1):
                    counts[q, parent] = counts[q, parent + parent] + counts[q, parent + parent + 1]
            counts[q, leaf] += increment
            up = leaf >> 1
            while up:
                counts[q, up] += increment
                up >>= 1

            # --- error unmapping + model commit -------------------------- #
            if symbol % 2 == 0:
                error = symbol >> 1
            else:
                error = -(symbol + 1) >> 1
            value = (adjusted + error) & mask

            count = bias_counts[compound]
            if count < bias_count_max or aging != 0:
                total = bias_sums[compound]
                if count >= bias_count_max:
                    count >>= 1
                    if total < 0:
                        total = -((-total) >> 1)
                    else:
                        total = total >> 1
                count += 1
                total += error
                if total > sum_max:
                    total = sum_max
                elif total < -sum_max:
                    total = -sum_max
                bias_counts[compound] = count
                bias_sums[compound] = total

            if error >= 0:
                twice_prev = error + error
            else:
                twice_prev = -error - error
            pixels[row + x] = value

    return DECODE_OK
