"""Native (JIT-compiled) entropy engine — ``engine="native"``.

This package compiles the hot loops of the codec — the frequency-tree path
walk, the binary arithmetic coder's renormalisation and the bit-level I/O —
into `numba <https://numba.pydata.org>`_ ``nopython`` kernels operating on
plain ``int64``/``uint8`` NumPy arrays.  The modelling front-end is shared
with the fast engine (:func:`repro.fast.rowmodel.model_image` on the encode
side; the decode side inlines the same causal window the fast engine uses),
so streams are **byte-identical** to the reference and fast engines: the
engine name stays a speed knob, never a format choice.

The dependency is *build-optional*: numba is not a package requirement.

* With numba importable, ``get_engine("native")``
  resolves to :class:`~repro.native.backend.NativeEngine` and the kernels run
  JIT-compiled (``cache=True`` so the compilation cost is paid once per
  machine, ``nogil=True`` so concurrent decodes scale across threads).
* Without numba, ``engine="native"`` raises a clear
  :class:`~repro.exceptions.ConfigError` naming the missing dependency, and
  ``native`` is absent from :func:`~repro.core.interface.engine_names` so
  CLIs and benchmarks skip it instead of failing.
* Setting ``REPRO_NATIVE_PURE_PYTHON=1`` runs the *same* kernel source as
  plain Python (the decorator becomes a no-op).  That mode is how the
  without-numba CI leg and this repo's test-suite assert byte-identity of
  the kernel algorithms themselves — slow, but bit-for-bit the same code
  path the JIT compiles.
"""

from repro.native.jit import NUMBA_AVAILABLE, PURE_PYTHON_ENV, native_available

__all__ = ["NUMBA_AVAILABLE", "PURE_PYTHON_ENV", "native_available"]
