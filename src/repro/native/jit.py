"""The numba import guard and the ``njit`` shim the kernels compile under.

Everything numba-specific lives here so the rest of the package can be
imported — and executed — without numba installed:

* :data:`NUMBA_AVAILABLE` is the import probe's verdict;
* :func:`njit` is numba's decorator when available, otherwise an identity
  decorator that leaves the kernel as plain Python (the pure-Python mode
  the without-numba CI leg runs byte-identity tests under);
* :func:`native_available` is the policy gate the engine registry asks:
  numba importable, or the explicit ``REPRO_NATIVE_PURE_PYTHON=1`` opt-in.

The kernels are written against the intersection of numba's ``nopython``
dialect and plain Python over NumPy arrays: module-level functions, scalar
``int64`` locals, no Python objects, exceptions raised with constant
messages only.  That discipline is what makes "the same source runs both
ways" true rather than aspirational.
"""

from __future__ import annotations

import os

PURE_PYTHON_ENV = "REPRO_NATIVE_PURE_PYTHON"

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _numba_njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the common CI leg
    _numba_njit = None
    NUMBA_AVAILABLE = False


def njit(func=None, **kwargs):
    """``numba.njit`` when importable; otherwise the identity decorator.

    Accepts the same call shapes numba does (``@njit`` and
    ``@njit(cache=True, ...)``); the keyword arguments are dropped in the
    pure-Python fallback.
    """
    if _numba_njit is not None:
        if func is not None:
            return _numba_njit(func, **kwargs)
        return _numba_njit(**kwargs)
    if func is not None:
        return func

    def identity(inner):
        return inner

    return identity


def native_available() -> bool:
    """Whether ``engine="native"`` should dispatch in this process.

    True when numba is importable (the kernels JIT-compile) or when the
    ``REPRO_NATIVE_PURE_PYTHON=1`` escape hatch is set (the kernels run as
    interpreted Python — byte-identical, slow, meant for tests and for the
    without-numba CI leg to prove the fallback path).
    """
    if NUMBA_AVAILABLE:
        return True
    return os.environ.get(PURE_PYTHON_ENV, "") not in ("", "0")
