"""Multi-component experiment — colour bit rates and random-access speed.

The version-3 container opens two workloads the paper's single-plane
pipeline did not serve: colour / multi-band payloads and random access into
large streams.  This experiment quantifies both on the synthetic RGB corpus
(:func:`repro.imaging.synthetic.generate_planar_image`):

* per image, the bits-per-sample with planes coded independently and with
  the inter-plane delta predictor — the predictor's win is the headline
  number, mirroring how the paper's GAP prediction exploits intra-plane
  correlation;
* per image, the wall-clock ratio of a full decode to a single-plane decode
  through the byte-offset index — on an independently coded C-plane stream
  the indexed decode should approach ``1/C`` of the full decode.

Byte identity between the two engines is enforced on every stream, like the
``engines`` experiment does, so this experiment doubles as a conformance
check for the multi-component path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.components import (
    decode_planar,
    encode_planar,
    measure_random_access,
)
from repro.core.config import CodecConfig
from repro.exceptions import ConfigError, ReproError
from repro.imaging.synthetic import CORPUS_IMAGE_NAMES, generate_planar_image

__all__ = ["ComponentRow", "ComponentsResult", "run_components"]


@dataclass(frozen=True)
class ComponentRow:
    """Measured multi-component behaviour for one corpus image."""

    image: str
    planes: int
    independent_bits_per_sample: float
    delta_bits_per_sample: float
    full_decode_seconds: float
    plane_decode_seconds: float

    @property
    def delta_saving_percent(self) -> float:
        """Bit-rate saving of the inter-plane predictor."""
        if self.independent_bits_per_sample <= 0.0:
            return 0.0
        return 100.0 * (
            1.0 - self.delta_bits_per_sample / self.independent_bits_per_sample
        )

    @property
    def random_access_speedup(self) -> float:
        """Full decode over single-plane decode (ideal: the plane count)."""
        if self.plane_decode_seconds <= 0.0:
            return float("inf")
        return self.full_decode_seconds / self.plane_decode_seconds

    def format_row(self) -> str:
        return "%-10s %8.3f bps %8.3f bps %7.1f%% %10.2fx" % (
            self.image,
            self.independent_bits_per_sample,
            self.delta_bits_per_sample,
            self.delta_saving_percent,
            self.random_access_speedup,
        )


@dataclass
class ComponentsResult:
    """Complete multi-component comparison over a corpus subset."""

    size: int
    seed: int
    planes: int
    stripes: int
    rows: List[ComponentRow] = field(default_factory=list)

    def mean_delta_saving(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.delta_saving_percent for row in self.rows) / len(self.rows)

    def format_report(self) -> str:
        lines = [
            "%-10s %12s %12s %8s %11s"
            % ("Image", "independent", "plane-delta", "saving", "1-plane RA")
        ]
        for row in self.rows:
            lines.append(row.format_row())
        lines.append(
            "mean inter-plane predictor saving: %.1f%% (%d planes, %d stripes)"
            % (self.mean_delta_saving(), self.planes, self.stripes)
        )
        return "\n".join(lines)

    def as_json(self) -> Dict[str, dict]:
        """Machine-readable summary for ``repro-bench --json``."""
        return {
            "bpp": {
                key: value
                for row in self.rows
                for key, value in (
                    ("%s/independent" % row.image, row.independent_bits_per_sample),
                    ("%s/delta" % row.image, row.delta_bits_per_sample),
                )
            },
            "mb_per_s": {},
            "extra": {
                "mean_delta_saving_percent": self.mean_delta_saving(),
                "random_access_speedup": {
                    row.image: row.random_access_speedup for row in self.rows
                },
                "planes": self.planes,
                "stripes": self.stripes,
                "size": self.size,
                "seed": self.seed,
            },
        }


def run_components(
    size: int = 64,
    seed: int = 2007,
    planes: int = 3,
    stripes: int = 2,
    images: Optional[Sequence[str]] = None,
    config: Optional[CodecConfig] = None,
    repeats: int = 2,
) -> ComponentsResult:
    """Measure colour compression and random access on the synthetic corpus.

    Raises :class:`~repro.exceptions.ReproError` if the fast engine ever
    produces a multi-component stream that differs from the reference
    engine's, or if either stream fails to round-trip.
    """
    if size < 16:
        raise ConfigError("components image size must be at least 16, got %d" % size)
    if planes < 2:
        raise ConfigError("components experiment needs at least 2 planes, got %d" % planes)
    if stripes < 1 or stripes > size:
        raise ConfigError("stripes must be in [1, %d], got %d" % (size, stripes))
    if repeats < 1:
        raise ConfigError("repeats must be at least 1, got %d" % repeats)
    config = config if config is not None else CodecConfig.hardware()
    selected = list(images) if images is not None else list(CORPUS_IMAGE_NAMES)

    result = ComponentsResult(size=size, seed=seed, planes=planes, stripes=stripes)
    for image_name in selected:
        image = generate_planar_image(image_name, size=size, seed=seed, planes=planes)
        streams = {}
        for delta in (False, True):
            reference = encode_planar(
                image, config, engine="reference", stripes=stripes, plane_delta=delta
            )
            fast = encode_planar(
                image, config, engine="fast", stripes=stripes, plane_delta=delta
            )
            if fast != reference:
                raise ReproError(
                    "fast engine diverged from the reference engine on %r "
                    "(plane_delta=%s)" % (image_name, delta)
                )
            if decode_planar(reference, config) != image:
                raise ReproError(
                    "multi-component stream failed to losslessly reconstruct %r"
                    % image_name
                )
            streams[delta] = reference

        full_seconds, plane_seconds = measure_random_access(
            streams[False], planes - 1, config, repeats=repeats
        )
        result.rows.append(
            ComponentRow(
                image=image_name,
                planes=planes,
                independent_bits_per_sample=8.0
                * len(streams[False])
                / image.sample_count,
                delta_bits_per_sample=8.0 * len(streams[True]) / image.sample_count,
                full_decode_seconds=full_seconds,
                plane_decode_seconds=plane_seconds,
            )
        )
    return result
