"""Figure 4 — average bit rate as a function of the frequency-count width.

The probability estimator's frequency counters have a configurable width;
the paper sweeps 10, 12, 14 and 16 bits, finds a shallow minimum at 14 and
explains the two failure directions: too few bits cause frequent rescaling
and therefore escapes, too many bits let the distribution become so skewed
that rare symbols get very long codes.

``run_figure4`` re-runs that sweep on the synthetic corpus and also records
the escape and rescale counts, which make the mechanism behind the curve
visible in the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import CodecConfig
from repro.core.encoder import encode_image_with_statistics
from repro.exceptions import ConfigError
from repro.imaging.synthetic import CORPUS_IMAGE_NAMES, generate_image

__all__ = ["Figure4Point", "Figure4Result", "run_figure4", "PAPER_FIGURE4"]

#: Approximate values read off the paper's Figure 4 (bits per pixel).
PAPER_FIGURE4: Dict[int, float] = {10: 4.68, 12: 4.58, 14: 4.50, 16: 4.53}


@dataclass(frozen=True)
class Figure4Point:
    """One point of the sweep: a count width and the resulting statistics."""

    count_bits: int
    average_bits_per_pixel: float
    per_image_bits_per_pixel: Dict[str, float]
    total_escapes: int
    total_rescales: int


@dataclass
class Figure4Result:
    """Complete sweep result."""

    size: int
    seed: int
    points: List[Figure4Point] = field(default_factory=list)

    def best_count_bits(self) -> int:
        """Count width with the lowest average bit rate."""
        if not self.points:
            raise ConfigError("figure 4 sweep produced no points")
        return min(self.points, key=lambda p: p.average_bits_per_pixel).count_bits

    def as_json(self) -> Dict[str, dict]:
        """Machine-readable summary for ``repro-bench --json``."""
        return {
            "bpp": {
                "count_bits=%d" % point.count_bits: point.average_bits_per_pixel
                for point in self.points
            },
            "mb_per_s": {},
            "extra": {"size": self.size, "seed": self.seed},
        }

    def as_series(self) -> Tuple[List[int], List[float]]:
        """Return (count_bits, average_bpp) series for plotting."""
        return (
            [point.count_bits for point in self.points],
            [point.average_bits_per_pixel for point in self.points],
        )

    def format_table(self, include_paper: bool = True) -> str:
        lines = ["%-18s%14s%12s%12s" % ("Frequency bits", "Bit rate", "Escapes", "Rescales")]
        for point in self.points:
            lines.append(
                "%-18d%14.3f%12d%12d"
                % (
                    point.count_bits,
                    point.average_bits_per_pixel,
                    point.total_escapes,
                    point.total_rescales,
                )
            )
        if include_paper:
            lines.append("")
            lines.append("Paper (512x512 corpus): " + ", ".join(
                "%d bits -> %.2f bpp" % (bits, bpp) for bits, bpp in sorted(PAPER_FIGURE4.items())
            ))
        return "\n".join(lines)


def run_figure4(
    count_bits_values: Sequence[int] = (10, 12, 14, 16),
    size: int = 128,
    seed: int = 2007,
    images: Optional[Sequence[str]] = None,
    base_config: Optional[CodecConfig] = None,
) -> Figure4Result:
    """Sweep the probability-estimator count width over the corpus."""
    if not count_bits_values:
        raise ConfigError("figure 4 sweep needs at least one count width")
    selected_images = list(images) if images is not None else list(CORPUS_IMAGE_NAMES)
    base = base_config if base_config is not None else CodecConfig.hardware()

    result = Figure4Result(size=size, seed=seed)
    corpus = {name: generate_image(name, size=size, seed=seed) for name in selected_images}
    for count_bits in count_bits_values:
        config = base.with_count_bits(count_bits)
        per_image: Dict[str, float] = {}
        escapes = 0
        rescales = 0
        for name, image in corpus.items():
            stream, statistics = encode_image_with_statistics(image, config)
            per_image[name] = 8.0 * len(stream) / image.pixel_count
            escapes += statistics.escapes
            rescales += statistics.tree_rescales
        average = sum(per_image.values()) / len(per_image)
        result.points.append(
            Figure4Point(
                count_bits=count_bits,
                average_bits_per_pixel=average,
                per_image_bits_per_pixel=per_image,
                total_escapes=escapes,
                total_rescales=rescales,
            )
        )
    return result
