"""Table 2 — device utilisation, memory budgets and clock estimate.

This experiment runs the analytical hardware model: it builds the three
architectural blocks (Modelling, Probability Estimator, Arithmetic Coder),
sums their primitive costs into the slice / flip-flop / LUT / IOB summary of
Table 2, derives the memory budgets quoted in Section V (3.7 KB modelling,
4 KB probability estimator), and estimates the achievable clock with the
static-timing model.

The published Table 2 values are attached to every result so reports can put
the estimate and the synthesis result side by side; the model is analytical,
so exact agreement is not expected (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import CodecConfig
from repro.hardware.blocks import PAPER_TABLE2, default_blocks
from repro.hardware.device import VIRTEX4_LX60, FpgaDevice
from repro.hardware.memory import MemoryInventory, build_memory_inventory
from repro.hardware.resources import UtilizationSummary, summarize_blocks
from repro.hardware.timing import TimingModel, TimingReport

__all__ = ["Table2Result", "run_table2", "PAPER_MEMORY_BYTES", "PAPER_CLOCK_MHZ"]

#: Memory budgets quoted in Section V of the paper.
PAPER_MEMORY_BYTES: Dict[str, int] = {
    "modeling": int(3.7 * 1024),
    "probability_estimator": 4 * 1024,
}

#: Clock frequency and throughput reported in Section V.
PAPER_CLOCK_MHZ = 123.0
PAPER_THROUGHPUT_MBITS = 123.0


@dataclass(frozen=True)
class Table2Result:
    """Everything the hardware-model experiment produces."""

    summary: UtilizationSummary
    memory: MemoryInventory
    timing: TimingReport
    paper_table2: Dict[str, Dict[str, int]]
    paper_memory_bytes: Dict[str, int]
    paper_clock_mhz: float

    def format_report(self) -> str:
        lines = ["Estimated device utilisation (analytical model):", self.summary.format_table(), ""]
        lines.append("Published Table 2 (Xilinx ISE 8.1 synthesis):")
        header = "%-26s" % "" + "".join("%23s" % name for name in self.paper_table2)
        lines.append(header)
        for metric, label in (
            ("slices", "No. of Slices"),
            ("flipflops", "No. of Slice Flip-flops"),
            ("lut4", "No. of 4 input LUT"),
            ("iobs", "No. of bonded IOBs"),
            ("gclk", "No. of GCLK"),
        ):
            lines.append(
                "%-26s" % label
                + "".join("%23d" % self.paper_table2[name][metric] for name in self.paper_table2)
            )
        lines.append("")
        lines.append("Memory model: " + self.memory.format_summary())
        lines.append(
            "Paper memory: modelling %.1f KB, probability estimator %.1f KB"
            % (
                self.paper_memory_bytes["modeling"] / 1024.0,
                self.paper_memory_bytes["probability_estimator"] / 1024.0,
            )
        )
        lines.append(
            "Clock estimate: %.1f MHz (critical path %s, %.2f ns); paper: %.1f MHz"
            % (
                self.timing.clock_mhz,
                self.timing.critical_block,
                self.timing.critical_path_ns,
                self.paper_clock_mhz,
            )
        )
        return "\n".join(lines)


def run_table2(
    config: Optional[CodecConfig] = None,
    image_width: int = 512,
    device: FpgaDevice = VIRTEX4_LX60,
) -> Table2Result:
    """Run the hardware model and assemble the Table 2 comparison."""
    config = config if config is not None else CodecConfig.hardware()
    blocks = default_blocks(config=config, image_width=image_width, device=device)
    summary = summarize_blocks(blocks, device=device)
    memory = build_memory_inventory(config=config, image_width=image_width)
    timing = TimingModel(device=device).analyse(blocks)
    return Table2Result(
        summary=summary,
        memory=memory,
        timing=timing,
        paper_table2=PAPER_TABLE2,
        paper_memory_bytes=PAPER_MEMORY_BYTES,
        paper_clock_mhz=PAPER_CLOCK_MHZ,
    )
