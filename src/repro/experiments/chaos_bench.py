"""Chaos experiment — a multi-phase overload and fault drill of the tier.

Where :mod:`repro.experiments.serve_bench` measures the serving tier on a
good day, this experiment measures it on a bad one.  It boots the full
network stack in-process with a deliberately small admission watermark,
wraps every shard's blob backend in a
:class:`~repro.serve.chaos.FaultInjector`, and drives five phases of
closed-loop load through real sockets:

1. **baseline** — a few clients over warm regions: the unloaded p50/p99
   every later phase is judged against;
2. **ramp** — more clients, still under the watermark: latency should
   hold;
3. **spike** — far more clients than admission slots: the server must
   *shed* (429 + ``Retry-After``) rather than queue, and the requests it
   does admit must stay near baseline latency;
4. **stall** — one shard's backend hangs mid-run (picked by key
   ownership, so the fault deterministically bites): requests touching it
   must fail fast with 504 deadline errors while the healthy shard keeps
   serving;
5. **recovery** — the stall clears: latency and error rate must return to
   baseline;
6. **failover** — with replication (default R=2) one shard is *killed*
   outright: every read must keep succeeding from the surviving replica
   (zero errors, zero 504s) with the failovers surfaced in ``/stats``;
7. **reshard** — the killed shard revives and a **live N -> N+1 reshard**
   starts under continuous load: the error rate while keys migrate must
   stay within a small budget, and the migration must commit.

A :class:`~repro.serve.health.HealthProber` runs for the whole drill, so
replica preference reacts to the injected faults the way production
would.

Every phase snapshots ``GET /stats`` before and after, so the per-phase
latency quantiles used by the SLO checks come from the *server's own
histogram deltas* — recovery is asserted from ``/stats``, not from client
logs.  Client-side samples are kept too (exact percentiles for the
report).  :meth:`ChaosBenchResult.assert_slos` turns the checks into a
hard pass/fail, which is what the CI chaos-smoke and nightly soak jobs
gate on.
"""

from __future__ import annotations

import io
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigError, ReproError, ServeError
from repro.experiments.serve_bench import _percentile
from repro.imaging.pnm import write_pgm, write_ppm
from repro.imaging.synthetic import (
    CORPUS_IMAGE_NAMES,
    generate_image,
    generate_planar_image,
)
from repro.serve.app import ImageService, start_server_thread
from repro.serve.chaos import FaultInjector
from repro.serve.client import ServeClient
from repro.serve.health import HealthProber
from repro.store.store import ImageStore

__all__ = [
    "ChaosBenchResult",
    "PhaseResult",
    "quantile_from_bucket_delta",
    "run_chaos_bench",
]

#: Additive slack (ms) on top of the multiplicative latency SLOs, so the
#: 2x criterion does not flap on sub-millisecond baselines and histogram
#: bucket quantisation.
DEFAULT_SLACK_MS = 25.0


def quantile_from_bucket_delta(
    before: Dict[str, int], after: Dict[str, int], q: float
) -> float:
    """Quantile (ms) of the observations recorded *between* two snapshots.

    ``before`` and ``after`` are ``buckets_le_ms`` maps from the server's
    ``/stats`` document (bucket upper bound — or ``"+inf"`` — to
    cumulative count).  The difference isolates exactly the requests of
    one phase, which is how a phase's latency is asserted from the
    server's own histograms rather than from client-side logs.
    """
    deltas: List[Tuple[float, int]] = []
    for label, count in after.items():
        delta = count - before.get(label, 0)
        if delta <= 0:
            continue
        bound = float("inf") if label == "+inf" else float(label)
        deltas.append((bound, delta))
    deltas.sort()
    total = sum(count for _, count in deltas)
    if total == 0:
        return 0.0
    target = max(1, int(q * total + 0.5))
    cumulative = 0
    largest_finite = max(
        (bound for bound, _ in deltas if bound != float("inf")), default=0.0
    )
    for bound, count in deltas:
        cumulative += count
        if cumulative >= target:
            return bound if bound != float("inf") else largest_finite
    return largest_finite  # pragma: no cover - cumulative always reaches total


@dataclass
class PhaseResult:
    """Outcome of one load phase: client-side and server-side views."""

    name: str
    clients: int
    seconds: float = 0.0
    requests: int = 0
    ok: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    errors: int = 0
    samples_ms: List[float] = field(default_factory=list)
    stats_p50_ms: float = 0.0
    stats_p99_ms: float = 0.0
    stats_shed: int = 0
    stats_deadline_exceeded: int = 0
    stats_errors: int = 0
    stats_failovers: int = 0

    @property
    def p50_ms(self) -> float:
        return _percentile(self.samples_ms, 0.50)

    @property
    def p99_ms(self) -> float:
        return _percentile(self.samples_ms, 0.99)

    def as_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "clients": self.clients,
            "seconds": self.seconds,
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "errors": self.errors,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "stats_p50_ms": self.stats_p50_ms,
            "stats_p99_ms": self.stats_p99_ms,
            "stats_shed": self.stats_shed,
            "stats_deadline_exceeded": self.stats_deadline_exceeded,
            "stats_errors": self.stats_errors,
            "stats_failovers": self.stats_failovers,
        }

    def format_row(self) -> str:
        return "%-9s %3d cl %6d req %6d ok %5d shed %5d 504 %4d err  %8.2f/%8.2f ms  (/stats %8.2f/%8.2f ms)" % (
            self.name,
            self.clients,
            self.requests,
            self.ok,
            self.shed,
            self.deadline_exceeded,
            self.errors,
            self.p50_ms,
            self.p99_ms,
            self.stats_p50_ms,
            self.stats_p99_ms,
        )


@dataclass
class ChaosBenchResult:
    """All phases of one chaos drill plus the evaluated SLOs."""

    size: int
    seed: int
    shards: int
    max_inflight: int
    replication: int = 1
    stalled_shard: str = ""
    killed_shard: str = ""
    phases: List[PhaseResult] = field(default_factory=list)
    slos: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    server_stats: Dict[str, Any] = field(default_factory=dict)
    reshard: Dict[str, Any] = field(default_factory=dict)

    def phase(self, name: str) -> PhaseResult:
        for entry in self.phases:
            if entry.name == name:
                return entry
        raise ConfigError("no phase named %r in this run" % name)

    def slo_failures(self) -> List[str]:
        return [
            "%s: %s" % (name, outcome["detail"])
            for name, outcome in sorted(self.slos.items())
            if not outcome["passed"]
        ]

    def assert_slos(self) -> None:
        """Raise :class:`ReproError` naming every violated SLO."""
        failures = self.slo_failures()
        if failures:
            raise ReproError(
                "chaos drill violated %d SLO(s):\n  %s"
                % (len(failures), "\n  ".join(failures))
            )

    def format_report(self) -> str:
        lines = [
            "phase       load   traffic                                      client p50/p99",
        ]
        lines.extend(phase.format_row() for phase in self.phases)
        lines.append(
            "admission watermark %d, %d shard(s), replication %d; "
            "stalled shard: %s; killed shard: %s"
            % (
                self.max_inflight,
                self.shards,
                self.replication,
                self.stalled_shard or "-",
                self.killed_shard or "-",
            )
        )
        if self.reshard:
            lines.append(
                "reshard onto %s: %s, %d key(s) moved, %d copied, %d deleted"
                % (
                    self.reshard.get("joining", "-"),
                    "committed" if self.reshard.get("completed") else "NOT committed",
                    int(self.reshard.get("moved", 0)),
                    int(self.reshard.get("copies", 0)),
                    int(self.reshard.get("deletions", 0)),
                )
            )
        for name, outcome in sorted(self.slos.items()):
            lines.append(
                "SLO %-22s %s  (%s)"
                % (name, "PASS" if outcome["passed"] else "FAIL", outcome["detail"])
            )
        return "\n".join(lines)

    def as_json(self) -> Dict[str, Any]:
        """Machine-readable summary for ``repro-bench --json`` and CI gates."""
        extra: Dict[str, Any] = {
            "size": self.size,
            "seed": self.seed,
            "shards": self.shards,
            "max_inflight": self.max_inflight,
            "replication": self.replication,
            "stalled_shard": self.stalled_shard,
            "killed_shard": self.killed_shard,
            "reshard": dict(self.reshard),
            "phases": [phase.as_json() for phase in self.phases],
            "slos": {
                name: dict(outcome) for name, outcome in sorted(self.slos.items())
            },
            "slo_failures": self.slo_failures(),
        }
        if self.server_stats:
            extra["server_stats"] = self.server_stats
        return {"bpp": {}, "mb_per_s": {}, "extra": extra}


def _endpoint_buckets(stats: Dict[str, Any], endpoint: str) -> Dict[str, int]:
    endpoints = stats.get("server", {}).get("endpoints", {})
    return dict(endpoints.get(endpoint, {}).get("buckets_le_ms", {}))

def _endpoint_errors(stats: Dict[str, Any], endpoint: str) -> int:
    endpoints = stats.get("server", {}).get("endpoints", {})
    return int(endpoints.get(endpoint, {}).get("errors", 0))


def _counter(stats: Dict[str, Any], name: str) -> int:
    return int(stats.get("server", {}).get("counters", {}).get(name, 0))


def _run_phase(
    result: PhaseResult,
    address: Tuple[str, int],
    pairs: Sequence[Tuple[str, Tuple[int, int]]],
    seconds: float,
    deadline_ms: int,
) -> None:
    """Drive one closed-loop phase; mutates ``result`` with the outcome."""
    lock = threading.Lock()
    stop_at = time.monotonic() + seconds

    def worker(worker_index: int) -> None:
        client = ServeClient(*address, deadline_ms=deadline_ms)
        samples: List[float] = []
        requests = ok = shed = timed_out = errors = 0
        index = worker_index
        try:
            while time.monotonic() < stop_at:
                key, (start, stop) = pairs[index % len(pairs)]
                index += result.clients
                requests += 1
                begin = time.perf_counter()
                try:
                    client.get_region(key, start, stop)
                except ServeError as error:
                    if error.status == 429:
                        shed += 1
                    elif error.status == 504:
                        timed_out += 1
                    else:
                        errors += 1
                    continue
                ok += 1
                samples.append(1e3 * (time.perf_counter() - begin))
        finally:
            client.close()
            with lock:
                result.requests += requests
                result.ok += ok
                result.shed += shed
                result.deadline_exceeded += timed_out
                result.errors += errors
                result.samples_ms.extend(samples)

    began = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(result.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.seconds = time.perf_counter() - began


def run_chaos_bench(
    size: int = 32,
    seed: int = 2007,
    planes: int = 3,
    stripes: int = 4,
    shards: int = 2,
    max_inflight: int = 8,
    baseline_clients: int = 4,
    ramp_clients: int = 8,
    spike_clients: int = 32,
    phase_seconds: float = 2.0,
    deadline_ms: int = 400,
    backend: str = "filesystem",
    engine: str = "reference",
    images: Optional[Sequence[str]] = None,
    p50_factor: float = 2.0,
    slack_ms: float = DEFAULT_SLACK_MS,
    warm_p99_slo_ms: Optional[float] = None,
    replication: int = 2,
    reshard_error_budget: float = 0.01,
) -> ChaosBenchResult:
    """Run the seven-phase overload + fault drill against an in-process server.

    ``p50_factor`` and ``slack_ms`` parameterise the latency SLOs (admitted
    p50 under overload, and p50 after recovery, must stay within
    ``factor * baseline + slack``).  ``warm_p99_slo_ms`` optionally adds an
    absolute ceiling on the baseline warm p99 — the nightly soak's SLO.
    ``replication`` is the per-key owner count (>= 2 arms the failover and
    reshard phases); ``reshard_error_budget`` caps the tolerated error
    fraction while a live reshard runs under load.
    """
    if size < 16:
        raise ConfigError("chaos bench image size must be at least 16, got %d" % size)
    if shards < 2:
        raise ConfigError("the stall phase needs at least 2 shards, got %d" % shards)
    if spike_clients <= max_inflight:
        raise ConfigError(
            "spike clients (%d) must exceed the admission watermark (%d) "
            "or nothing is ever shed" % (spike_clients, max_inflight)
        )
    if phase_seconds <= 0:
        raise ConfigError("phase_seconds must be positive, got %r" % phase_seconds)
    if deadline_ms < 50:
        raise ConfigError("deadline_ms must be at least 50, got %d" % deadline_ms)
    if backend not in ("filesystem", "sqlite"):
        raise ConfigError("backend must be 'filesystem' or 'sqlite', got %r" % (backend,))
    if replication < 2:
        raise ConfigError(
            "the failover phase needs replication >= 2, got %d" % replication
        )
    if not 0.0 <= reshard_error_budget <= 1.0:
        raise ConfigError(
            "reshard_error_budget must be in [0, 1], got %r" % reshard_error_budget
        )
    selected = list(images) if images is not None else list(CORPUS_IMAGE_NAMES)[:3]

    result = ChaosBenchResult(
        size=size,
        seed=seed,
        shards=shards,
        max_inflight=max_inflight,
        replication=replication,
    )

    with tempfile.TemporaryDirectory(prefix="repro-chaos-bench-") as root:
        stores: List[ImageStore] = []
        injectors: List[FaultInjector] = []
        for index in range(shards):
            path = (
                "%s/shard-%02d.sqlite" % (root, index)
                if backend == "sqlite"
                else "%s/shard-%02d" % (root, index)
            )
            store = ImageStore.open(path, engine=engine)
            injector = store.wrap_backend(FaultInjector)
            assert isinstance(injector, FaultInjector)
            stores.append(store)
            injectors.append(injector)
        service = ImageService(
            stores, max_inflight=max_inflight, replication=replication
        )
        by_shard = dict(zip(service.router.names, injectors))
        # The prober runs for the whole drill, so replica preference reacts
        # to the injected faults (down on kill/stall, back up on revive)
        # exactly the way a production deployment's would.
        prober = HealthProber(
            service.router, service.health, interval=0.5, timeout=0.5
        ).start()
        with start_server_thread(service) as handle:
            client = ServeClient(*handle.address)

            # -------- ingest + pre-warm ------------------------------- #
            pairs: List[Tuple[str, Tuple[int, int]]] = []
            for name in selected:
                image = generate_planar_image(name, size=size, seed=seed, planes=planes)
                buffer = io.BytesIO()
                write_ppm(image, buffer)
                key = str(client.put_image(buffer.getvalue(), stripes=stripes)["key"])
                pairs.extend((key, (s, s + 1)) for s in range(stripes))
            for key, (start, stop) in pairs:
                client.get_region(key, start, stop)

            # Fresh, never-decoded keys for the stall phase.  put_image
            # reports the owning shard, so the stalled shard is picked by
            # actual key ownership — the fault deterministically bites.
            stall_keys: Dict[str, List[str]] = {}
            for offset in range(4):
                gray = generate_image(
                    selected[offset % len(selected)], size=size, seed=seed + 11 + offset
                )
                buffer = io.BytesIO()
                write_pgm(gray, buffer)
                outcome = client.put_image(buffer.getvalue(), stripes=stripes)
                stall_keys.setdefault(str(outcome["shard"]), []).append(
                    str(outcome["key"])
                )
            stalled_shard = max(stall_keys, key=lambda name: len(stall_keys[name]))
            result.stalled_shard = stalled_shard
            stalled_pairs = [
                (key, (s, s + 1))
                for key in stall_keys[stalled_shard]
                for s in range(stripes)
            ]
            # The stall phase mixes warm traffic with reads that need the
            # hung shard: partial availability is part of what it asserts.
            mixed_pairs: List[Tuple[str, Tuple[int, int]]] = []
            for index in range(max(len(pairs), len(stalled_pairs))):
                mixed_pairs.append(pairs[index % len(pairs)])
                mixed_pairs.append(stalled_pairs[index % len(stalled_pairs)])

            plan: List[Tuple[str, int, Sequence[Tuple[str, Tuple[int, int]]]]] = [
                ("baseline", baseline_clients, pairs),
                ("ramp", ramp_clients, pairs),
                ("spike", spike_clients, pairs),
                ("stall", ramp_clients, mixed_pairs),
                ("recovery", baseline_clients, mixed_pairs),
                ("failover", ramp_clients, pairs),
                ("reshard", ramp_clients, pairs),
            ]
            reshard_thread: Optional[threading.Thread] = None
            resharder = None
            for name, clients, phase_pairs in plan:
                if name == "stall":
                    by_shard[stalled_shard].stall()
                elif name == "recovery":
                    by_shard[stalled_shard].clear_stall()
                    # Let requests abandoned during the stall finish
                    # recording before the recovery snapshot is taken.
                    time.sleep(max(1.0, 2.0 * deadline_ms / 1000.0))
                elif name == "failover":
                    # With R owners per key, losing one outright must not
                    # lose a single read: the shard most stall keys call
                    # primary is killed dead (instant StoreError, unlike
                    # the stall's slow burn).  Decoded-cell caches are
                    # dropped first — warm hits never touch the backend,
                    # and a failover drill that never reads the dead
                    # backend proves nothing.
                    for store in service.router.stores:
                        store.cache.clear()
                        store._headers.clear()
                    result.killed_shard = stalled_shard
                    by_shard[stalled_shard].kill()
                elif name == "reshard":
                    by_shard[stalled_shard].revive()
                    joining_name = "shard-%02d" % shards
                    joining_path = (
                        "%s/%s.sqlite" % (root, joining_name)
                        if backend == "sqlite"
                        else "%s/%s" % (root, joining_name)
                    )
                    joining = ImageStore.open(joining_path, engine=engine)
                    injector = joining.wrap_backend(FaultInjector)
                    assert isinstance(injector, FaultInjector)
                    by_shard[joining_name] = injector
                    resharder = service.begin_reshard(joining, joining_name)
                    reshard_thread = resharder.start()
                phase = PhaseResult(name=name, clients=clients)
                before = client.stats()
                _run_phase(
                    phase, handle.address, phase_pairs, phase_seconds, deadline_ms
                )
                after = client.stats()
                phase.stats_p50_ms = quantile_from_bucket_delta(
                    _endpoint_buckets(before, "get_region"),
                    _endpoint_buckets(after, "get_region"),
                    0.50,
                )
                phase.stats_p99_ms = quantile_from_bucket_delta(
                    _endpoint_buckets(before, "get_region"),
                    _endpoint_buckets(after, "get_region"),
                    0.99,
                )
                phase.stats_shed = _counter(after, "shed") - _counter(before, "shed")
                phase.stats_deadline_exceeded = _counter(
                    after, "deadline_exceeded"
                ) - _counter(before, "deadline_exceeded")
                phase.stats_errors = _endpoint_errors(
                    after, "get_region"
                ) - _endpoint_errors(before, "get_region")
                phase.stats_failovers = _counter(after, "failovers") - _counter(
                    before, "failovers"
                )
                result.phases.append(phase)

            if reshard_thread is not None:
                reshard_thread.join(timeout=60.0)
            if resharder is not None:
                result.reshard = resharder.report.as_json()
            result.server_stats = client.stats()["server"]
            client.close()
            prober.stop()

    _evaluate_slos(result, p50_factor, slack_ms, warm_p99_slo_ms, reshard_error_budget)
    return result


def _evaluate_slos(
    result: ChaosBenchResult,
    p50_factor: float,
    slack_ms: float,
    warm_p99_slo_ms: Optional[float],
    reshard_error_budget: float,
) -> None:
    """Fill ``result.slos`` from the recorded phases."""
    baseline = result.phase("baseline")
    spike = result.phase("spike")
    stall = result.phase("stall")
    recovery = result.phase("recovery")
    failover = result.phase("failover")
    reshard = result.phase("reshard")

    def record(name: str, passed: bool, detail: str) -> None:
        result.slos[name] = {"passed": bool(passed), "detail": detail}

    record(
        "spike_sheds",
        spike.stats_shed > 0,
        "overloaded server shed %d request(s) with 429 (/stats counter)"
        % spike.stats_shed,
    )
    admitted_budget = p50_factor * baseline.p50_ms + slack_ms
    record(
        "spike_admitted_p50",
        spike.ok > 0 and spike.p50_ms <= admitted_budget,
        "admitted p50 %.2f ms vs budget %.2f ms (%.1fx baseline %.2f ms + %.0f ms)"
        % (spike.p50_ms, admitted_budget, p50_factor, baseline.p50_ms, slack_ms),
    )
    record(
        "stall_bites",
        stall.stats_deadline_exceeded > 0,
        "hung shard produced %d deadline-exceeded 504(s) (/stats counter)"
        % stall.stats_deadline_exceeded,
    )
    record(
        "stall_partial_availability",
        stall.ok > 0,
        "healthy shard answered %d request(s) during the stall" % stall.ok,
    )
    recovery_budget = p50_factor * max(baseline.stats_p50_ms, 0.1) + slack_ms
    record(
        "recovery_latency",
        recovery.stats_p50_ms > 0 and recovery.stats_p50_ms <= recovery_budget,
        "/stats p50 %.2f ms after recovery vs budget %.2f ms "
        "(%.1fx baseline /stats p50 %.2f ms + %.0f ms)"
        % (
            recovery.stats_p50_ms,
            recovery_budget,
            p50_factor,
            baseline.stats_p50_ms,
            slack_ms,
        ),
    )
    record(
        "recovery_clean",
        recovery.stats_shed == 0 and recovery.stats_deadline_exceeded == 0,
        "after the stall cleared: %d shed, %d deadline-exceeded (/stats counters)"
        % (recovery.stats_shed, recovery.stats_deadline_exceeded),
    )
    record(
        "failover_availability",
        failover.ok > 0
        and failover.errors == 0
        and failover.stats_deadline_exceeded == 0,
        "with %s killed: %d ok, %d error(s), %d deadline-exceeded — every "
        "read must survive losing one replica"
        % (
            result.killed_shard or "-",
            failover.ok,
            failover.errors,
            failover.stats_deadline_exceeded,
        ),
    )
    record(
        "failover_serves",
        failover.stats_failovers > 0,
        "reads failed over %d time(s) to a surviving replica (/stats counter)"
        % failover.stats_failovers,
    )
    reshard_bad = reshard.errors + reshard.deadline_exceeded
    reshard_rate = reshard_bad / max(1, reshard.requests)
    record(
        "reshard_bounded_errors",
        reshard.ok > 0 and reshard_rate <= reshard_error_budget,
        "error rate %.4f during the live reshard (%d bad / %d requests) "
        "vs budget %.4f"
        % (reshard_rate, reshard_bad, reshard.requests, reshard_error_budget),
    )
    record(
        "reshard_commits",
        bool(result.reshard.get("completed")),
        "live reshard onto %s %s (%d key(s) moved, %d copied, %d deleted)"
        % (
            result.reshard.get("joining", "-"),
            "committed" if result.reshard.get("completed") else "did NOT commit",
            int(result.reshard.get("moved", 0)),
            int(result.reshard.get("copies", 0)),
            int(result.reshard.get("deletions", 0)),
        ),
    )
    if warm_p99_slo_ms is not None:
        record(
            "warm_p99_slo",
            baseline.p99_ms <= warm_p99_slo_ms,
            "baseline warm p99 %.2f ms vs SLO %.2f ms"
            % (baseline.p99_ms, warm_p99_slo_ms),
        )
