"""Catalog experiment — query latency at scale and lifecycle space reclaim.

The data-plane management layer (:mod:`repro.store.catalog`,
:mod:`repro.store.gc`, :mod:`repro.store.compactor`) has two costs worth
numbers:

* **query latency at scale** — ``repro-store ls`` is Python-side
  filtering over an in-memory entry map; this experiment loads the
  catalog with ``entries`` synthetic rows (default 10k) for *both*
  persistence flavours (journal and SQLite) and times a full unfiltered
  page, a tag-filtered scan, and a deep-offset page (pagination near the
  end of the result set, the worst case for offset-based paging);
* **bytes reclaimed by the lifecycle** — a small real corpus is
  ingested, half the streams are tombstoned with an already-lapsed TTL
  and GC-swept (measuring purged bytes), and the survivors are
  recompacted to a different stripe layout (measuring the byte delta of
  a verified, atomic in-place re-encode).

Catalog rows are synthesised directly (no 10k encodes): the filter path
never touches blobs, so entry volume is the only variable that matters
for the latency half.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.config import CodecConfig
from repro.exceptions import ConfigError
from repro.imaging.synthetic import CORPUS_IMAGE_NAMES, generate_planar_image
from repro.store.catalog import CatalogEntry, CatalogFilter, JournalCatalog, SQLiteCatalog
from repro.store.compactor import compact
from repro.store.gc import sweep
from repro.store.store import ImageStore

__all__ = ["CatalogQueryRow", "CatalogBenchResult", "run_catalog_bench"]


def _best_of(repeats: int, action: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - start)
    return best


def _synthetic_entry(index: int, created_at: float) -> CatalogEntry:
    """A plausible catalog row; every 10th entry carries the rare tag."""
    tags = [("set", "bench"), ("bucket", "b%d" % (index % 7))]
    if index % 10 == 0:
        tags.append(("rare", "yes"))
    return CatalogEntry(
        key="%064x" % index,
        width=64,
        height=64,
        planes=3,
        bit_depth=8,
        version=3,
        stripes=4,
        plane_delta=False,
        engine="reference",
        encoded_bytes=4096 + index % 512,
        decoded_bytes=64 * 64 * 3,
        created_at=created_at + index,
        tags=tuple(sorted(tags)),
    )


@dataclass(frozen=True)
class CatalogQueryRow:
    """ls/filter latency against one persisted catalog flavour."""

    catalog: str
    entries: int
    ls_page_seconds: float
    tag_filter_seconds: float
    deep_offset_seconds: float
    reopen_seconds: float

    def format_row(self) -> str:
        return "%-16s %7d %10.2f ms %10.2f ms %10.2f ms %10.1f ms" % (
            self.catalog,
            self.entries,
            1e3 * self.ls_page_seconds,
            1e3 * self.tag_filter_seconds,
            1e3 * self.deep_offset_seconds,
            1e3 * self.reopen_seconds,
        )


@dataclass
class CatalogBenchResult:
    """Query latency rows plus the lifecycle space-reclaim numbers."""

    entries: int
    corpus_images: int
    rows: List[CatalogQueryRow] = field(default_factory=list)
    gc_bytes_reclaimed: int = 0
    gc_purged: int = 0
    compact_bytes_delta: int = 0
    compact_swapped: int = 0
    corpus_bytes_before: int = 0

    def format_report(self) -> str:
        lines = [
            "%-16s %7s %13s %13s %13s %12s"
            % ("Catalog", "entries", "ls page", "tag filter", "deep offset", "reopen")
        ]
        for row in self.rows:
            lines.append(row.format_row())
        lines.append(
            "lifecycle over %d corpus image(s), %d bytes stored: gc purged %d "
            "stream(s) reclaiming %d bytes; compaction swapped %d stream(s), "
            "%+d bytes"
            % (
                self.corpus_images,
                self.corpus_bytes_before,
                self.gc_purged,
                self.gc_bytes_reclaimed,
                self.compact_swapped,
                self.compact_bytes_delta,
            )
        )
        return "\n".join(lines)

    def as_json(self) -> Dict[str, dict]:
        """Machine-readable summary for ``repro-bench --json``."""
        return {
            "bpp": {},
            "mb_per_s": {},
            "extra": {
                "entries": self.entries,
                "ls_page_ms": {
                    row.catalog: 1e3 * row.ls_page_seconds for row in self.rows
                },
                "tag_filter_ms": {
                    row.catalog: 1e3 * row.tag_filter_seconds for row in self.rows
                },
                "deep_offset_ms": {
                    row.catalog: 1e3 * row.deep_offset_seconds for row in self.rows
                },
                "reopen_ms": {
                    row.catalog: 1e3 * row.reopen_seconds for row in self.rows
                },
                "gc_bytes_reclaimed": self.gc_bytes_reclaimed,
                "gc_purged": self.gc_purged,
                "compact_bytes_delta": self.compact_bytes_delta,
                "compact_swapped": self.compact_swapped,
                "corpus_bytes_before": self.corpus_bytes_before,
            },
        }


def _time_queries(
    name: str, catalog, entries: int, repeats: int, reopen: Callable[[], object]
) -> CatalogQueryRow:
    def page():
        return catalog.query(CatalogFilter(), limit=50)

    def rare():
        return catalog.query(CatalogFilter(tags=(("rare", "yes"),)))

    def deep():
        return catalog.query(CatalogFilter(), limit=50, offset=max(0, entries - 50))

    row = CatalogQueryRow(
        catalog=name,
        entries=len(catalog),
        ls_page_seconds=_best_of(repeats, page),
        tag_filter_seconds=_best_of(repeats, rare),
        deep_offset_seconds=_best_of(repeats, deep),
        reopen_seconds=_best_of(1, reopen),
    )
    return row


def run_catalog_bench(
    entries: int = 10_000,
    size: int = 24,
    seed: int = 2007,
    images: Optional[int] = None,
    config: Optional[CodecConfig] = None,
    engine: str = "reference",
    repeats: int = 3,
) -> CatalogBenchResult:
    """Measure catalog query latency at ``entries`` rows + lifecycle reclaim.

    The latency half loads both catalog flavours with synthetic rows and
    times unfiltered, tag-filtered and deep-offset queries plus a cold
    reopen (journal replay / table load).  The lifecycle half ingests a
    real corpus, GC-sweeps half of it and recompacts the rest.
    """
    if entries < 100:
        raise ConfigError("catalog bench needs at least 100 entries, got %d" % entries)
    if repeats < 1:
        raise ConfigError("repeats must be at least 1, got %d" % repeats)
    image_count = images if images is not None else len(CORPUS_IMAGE_NAMES)
    if image_count < 2 or image_count > len(CORPUS_IMAGE_NAMES):
        raise ConfigError(
            "images must be in [2, %d], got %d" % (len(CORPUS_IMAGE_NAMES), image_count)
        )

    result = CatalogBenchResult(entries=entries, corpus_images=image_count)
    base_time = 1_600_000_000.0

    with tempfile.TemporaryDirectory(prefix="repro-catalog-bench-") as root:
        # -- query latency at scale, both persistence flavours ---------- #
        journal_path = root + "/catalog.jsonl"
        journal = JournalCatalog(journal_path, rewrite_factor=10_000)
        for index in range(entries):
            journal.record_put(_synthetic_entry(index, base_time))
        result.rows.append(
            _time_queries(
                "journal",
                journal,
                entries,
                repeats,
                reopen=lambda: JournalCatalog(journal_path).close(),
            )
        )
        journal.close()

        sqlite_path = root + "/catalog.sqlite"
        sqlite_catalog = SQLiteCatalog(sqlite_path)
        for index in range(entries):
            sqlite_catalog.record_put(_synthetic_entry(index, base_time))
        result.rows.append(
            _time_queries(
                "sqlite",
                sqlite_catalog,
                entries,
                repeats,
                reopen=lambda: SQLiteCatalog(sqlite_path).close(),
            )
        )
        sqlite_catalog.close()

        # -- lifecycle: GC reclaim + recompaction delta ----------------- #
        with ImageStore.open(root + "/corpus", engine=engine, config=config) as store:
            keys = []
            for image_name in CORPUS_IMAGE_NAMES[:image_count]:
                image = generate_planar_image(image_name, size=size, seed=seed)
                keys.append(store.put(image, stripes=2, tags={"set": "bench"}))
            result.corpus_bytes_before = sum(
                store.backend.length(key) for key in keys
            )
            doomed = keys[: len(keys) // 2]
            for key in doomed:
                store.soft_delete(key, ttl_seconds=0.0, now=0.0)
            gc_result = sweep(store, now=1.0)
            result.gc_bytes_reclaimed = gc_result.bytes_reclaimed
            result.gc_purged = gc_result.purged
            compaction = compact(store, keys=keys[len(keys) // 2 :], stripes=4)
            result.compact_swapped = compaction.swapped
            result.compact_bytes_delta = sum(
                row.bytes_after - row.bytes_before
                for row in compaction.rows
                if row.status == "swapped"
            )
    return result
