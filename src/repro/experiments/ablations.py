"""In-text ablations of Section III.

The paper makes two experimental claims about its hardware approximations:

1. *Overflow-guard aging helps*: "this rescaling technique slightly improves
   the compression ratio by 'aging' the observed data."
2. *LUT division is harmless*: "although the result of division is only an
   approximation, it does not affect the compression performance in our
   experiments."

``run_overflow_guard_ablation`` and ``run_division_ablation`` re-run the
proposed codec with the corresponding feature toggled and report the average
bit-rate difference over the corpus, so both claims can be checked
quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import CodecConfig
from repro.core.encoder import encode_image_with_statistics
from repro.imaging.synthetic import CORPUS_IMAGE_NAMES, generate_image

__all__ = ["AblationResult", "run_overflow_guard_ablation", "run_division_ablation"]


@dataclass(frozen=True)
class AblationResult:
    """Average bit rates of the two arms of an ablation."""

    name: str
    baseline_label: str
    variant_label: str
    baseline_bpp: float
    variant_bpp: float
    per_image_baseline: Dict[str, float]
    per_image_variant: Dict[str, float]

    @property
    def delta_bpp(self) -> float:
        """variant minus baseline (positive = the variant is worse)."""
        return self.variant_bpp - self.baseline_bpp

    def as_json(self) -> Dict[str, dict]:
        """Machine-readable summary for ``repro-bench --json``."""
        return {
            "bpp": {
                "%s/baseline" % self.name: self.baseline_bpp,
                "%s/variant" % self.name: self.variant_bpp,
            },
            "mb_per_s": {},
            "extra": {"delta_bpp": self.delta_bpp},
        }

    def format_report(self) -> str:
        lines = [
            "%s: %s %.4f bpp vs %s %.4f bpp (delta %+0.4f bpp)"
            % (
                self.name,
                self.baseline_label,
                self.baseline_bpp,
                self.variant_label,
                self.variant_bpp,
                self.delta_bpp,
            )
        ]
        for image in self.per_image_baseline:
            lines.append(
                "  %-10s %8.3f -> %8.3f"
                % (image, self.per_image_baseline[image], self.per_image_variant[image])
            )
        return "\n".join(lines)


def _average_bpp(
    config: CodecConfig, images: Sequence[str], size: int, seed: int
) -> Dict[str, float]:
    rates: Dict[str, float] = {}
    for name in images:
        image = generate_image(name, size=size, seed=seed)
        stream, _ = encode_image_with_statistics(image, config)
        rates[name] = 8.0 * len(stream) / image.pixel_count
    return rates


def _build_result(
    name: str,
    baseline_label: str,
    variant_label: str,
    baseline: Dict[str, float],
    variant: Dict[str, float],
) -> AblationResult:
    return AblationResult(
        name=name,
        baseline_label=baseline_label,
        variant_label=variant_label,
        baseline_bpp=sum(baseline.values()) / len(baseline),
        variant_bpp=sum(variant.values()) / len(variant),
        per_image_baseline=baseline,
        per_image_variant=variant,
    )


def run_overflow_guard_ablation(
    size: int = 128,
    seed: int = 2007,
    images: Optional[Sequence[str]] = None,
) -> AblationResult:
    """Compare overflow-guard aging enabled (paper) vs disabled."""
    selected: List[str] = list(images) if images is not None else list(CORPUS_IMAGE_NAMES)
    with_aging = CodecConfig.hardware(use_overflow_guard_aging=True)
    without_aging = CodecConfig.hardware(use_overflow_guard_aging=False)
    return _build_result(
        "overflow-guard aging",
        "aging enabled",
        "aging disabled",
        _average_bpp(with_aging, selected, size, seed),
        _average_bpp(without_aging, selected, size, seed),
    )


def run_division_ablation(
    size: int = 128,
    seed: int = 2007,
    images: Optional[Sequence[str]] = None,
) -> AblationResult:
    """Compare the 1 KB reciprocal-LUT division (paper) with exact division."""
    selected: List[str] = list(images) if images is not None else list(CORPUS_IMAGE_NAMES)
    lut_division = CodecConfig.hardware(use_lut_division=True)
    exact_division = CodecConfig.hardware(use_lut_division=False)
    return _build_result(
        "LUT division",
        "LUT division",
        "exact division",
        _average_bpp(lut_division, selected, size, seed),
        _average_bpp(exact_division, selected, size, seed),
    )
