"""Experiment harness: regenerate every table and figure of the paper.

Each module reproduces one evaluation artefact:

* :mod:`repro.experiments.table1` — the bit-rate comparison (Table 1);
* :mod:`repro.experiments.figure4` — the frequency-count-bit sweep (Fig. 4);
* :mod:`repro.experiments.table2` — the device-utilisation summary (Table 2)
  plus the memory budgets quoted in Section V;
* :mod:`repro.experiments.throughput` — the 123 MHz / 123 Mbit/s claim;
* :mod:`repro.experiments.ablations` — the two in-text ablations (overflow-
  guard aging and LUT division);
* :mod:`repro.experiments.engines` — reference vs fast coding engine
  (byte-identity + speedup, the CI performance gate's data source);
* :mod:`repro.experiments.components` — multi-component bit rates and
  random-access speed on the version-3 indexed container.

The benchmarks under ``benchmarks/``, the examples under ``examples/`` and
the ``repro-bench`` CLI all delegate to these functions, so the numbers in
EXPERIMENTS.md can be regenerated from any of the three entry points.
"""

from repro.experiments.table1 import Table1Result, Table1Row, run_table1
from repro.experiments.figure4 import Figure4Point, Figure4Result, run_figure4
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.throughput import ThroughputResult, run_throughput
from repro.experiments.ablations import AblationResult, run_division_ablation, run_overflow_guard_ablation
from repro.experiments.engines import (
    EngineComparisonResult,
    EngineImageRow,
    run_engine_comparison,
)
from repro.experiments.components import (
    ComponentRow,
    ComponentsResult,
    run_components,
)

__all__ = [
    "run_table1",
    "Table1Result",
    "Table1Row",
    "run_figure4",
    "Figure4Result",
    "Figure4Point",
    "run_table2",
    "Table2Result",
    "run_throughput",
    "ThroughputResult",
    "run_overflow_guard_ablation",
    "run_division_ablation",
    "AblationResult",
    "run_engine_comparison",
    "EngineComparisonResult",
    "EngineImageRow",
    "run_components",
    "ComponentsResult",
    "ComponentRow",
]
