"""Store experiment — cold-vs-warm random-access latency and batch throughput.

The serving layer (:mod:`repro.store`) exists for region-heavy read traffic
over large stored signals: workloads that repeatedly pull row bands out of
a few hot streams (cumulative-plot scans, cohort-style batched region
pulls).  This experiment quantifies what the layer buys on the synthetic
planar corpus, per image:

* **cold full** — decoding the whole blob (the only option without an
  index): fetch + entropy-decode every cell;
* **cold region** — one stripe-range query on an empty cache: range reads
  and decodes of exactly the region's cells;
* **warm region** — the same query again: pure cache reassembly, no
  backend bytes, no entropy decoding;
* **batch throughput** — a duplicate-heavy batch of region queries served
  by :meth:`~repro.store.store.ImageStore.get_regions` (cells deduped
  across regions) versus the same list as sequential
  :meth:`~repro.store.store.ImageStore.get_region` calls, both from cold.

The headline number is the warm-over-cold-full speedup; the acceptance
floor asserted by ``benchmarks/test_store_latency.py`` is 5x.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import CodecConfig
from repro.exceptions import ConfigError, ReproError
from repro.imaging.synthetic import CORPUS_IMAGE_NAMES, generate_planar_image
from repro.store.store import ImageStore

__all__ = ["StoreBenchRow", "StoreBenchResult", "run_store_bench"]


def _best_of(repeats: int, action: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass(frozen=True)
class StoreBenchRow:
    """Measured serving behaviour for one stored corpus image."""

    image: str
    blob_bytes: int
    cold_full_seconds: float
    cold_region_seconds: float
    warm_region_seconds: float
    batch_requests: int
    batched_seconds: float
    sequential_seconds: float

    @property
    def warm_speedup(self) -> float:
        """Cold full-blob decode over warm cached region read."""
        if self.warm_region_seconds <= 0.0:
            return float("inf")
        return self.cold_full_seconds / self.warm_region_seconds

    @property
    def index_speedup(self) -> float:
        """Cold full-blob decode over cold indexed region read."""
        if self.cold_region_seconds <= 0.0:
            return float("inf")
        return self.cold_full_seconds / self.cold_region_seconds

    @property
    def batched_requests_per_second(self) -> float:
        if self.batched_seconds <= 0.0:
            return float("inf")
        return self.batch_requests / self.batched_seconds

    @property
    def sequential_requests_per_second(self) -> float:
        if self.sequential_seconds <= 0.0:
            return float("inf")
        return self.batch_requests / self.sequential_seconds

    def format_row(self) -> str:
        return "%-10s %8.2f ms %8.2f ms %8.3f ms %8.1fx %8.1fx %9.0f/s %9.0f/s" % (
            self.image,
            1e3 * self.cold_full_seconds,
            1e3 * self.cold_region_seconds,
            1e3 * self.warm_region_seconds,
            self.index_speedup,
            self.warm_speedup,
            self.batched_requests_per_second,
            self.sequential_requests_per_second,
        )


@dataclass
class StoreBenchResult:
    """Complete store-serving comparison over a corpus subset."""

    size: int
    seed: int
    planes: int
    stripes: int
    backend: str
    engine: str
    rows: List[StoreBenchRow] = field(default_factory=list)

    def min_warm_speedup(self) -> float:
        if not self.rows:
            return 0.0
        return min(row.warm_speedup for row in self.rows)

    def mean_warm_speedup(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.warm_speedup for row in self.rows) / len(self.rows)

    def format_report(self) -> str:
        lines = [
            "%-10s %11s %11s %11s %9s %9s %11s %11s"
            % (
                "Image",
                "cold full",
                "cold region",
                "warm region",
                "index",
                "warm",
                "batched",
                "sequential",
            )
        ]
        for row in self.rows:
            lines.append(row.format_row())
        lines.append(
            "warm-cache region reads: %.1fx mean / %.1fx min over cold full decode "
            "(%d planes, %d stripes, %s backend, %s engine)"
            % (
                self.mean_warm_speedup(),
                self.min_warm_speedup(),
                self.planes,
                self.stripes,
                self.backend,
                self.engine,
            )
        )
        return "\n".join(lines)

    def as_json(self) -> Dict[str, dict]:
        """Machine-readable summary for ``repro-bench --json``."""
        return {
            "bpp": {},
            "mb_per_s": {},
            "extra": {
                "warm_speedup": {row.image: row.warm_speedup for row in self.rows},
                "index_speedup": {row.image: row.index_speedup for row in self.rows},
                "batched_requests_per_second": {
                    row.image: row.batched_requests_per_second for row in self.rows
                },
                "sequential_requests_per_second": {
                    row.image: row.sequential_requests_per_second for row in self.rows
                },
                "min_warm_speedup": self.min_warm_speedup(),
                "mean_warm_speedup": self.mean_warm_speedup(),
                "planes": self.planes,
                "stripes": self.stripes,
                "backend": self.backend,
                "engine": self.engine,
                "size": self.size,
                "seed": self.seed,
            },
        }


def run_store_bench(
    size: int = 48,
    seed: int = 2007,
    planes: int = 3,
    stripes: int = 4,
    images: Optional[Sequence[str]] = None,
    config: Optional[CodecConfig] = None,
    backend: str = "filesystem",
    engine: str = "reference",
    repeats: int = 3,
) -> StoreBenchResult:
    """Measure cold/warm random-access latency and batch throughput.

    Every corpus image is encoded into a throwaway store (``backend`` is
    ``"filesystem"`` or ``"sqlite"``), then served three ways: whole-blob
    decode, cold indexed region read, warm cached region read, plus a
    duplicate-heavy batch of region queries both batched and sequential.
    """
    if size < 16:
        raise ConfigError("store bench image size must be at least 16, got %d" % size)
    if planes < 2:
        raise ConfigError("store bench needs at least 2 planes, got %d" % planes)
    if stripes < 2 or stripes > size:
        raise ConfigError("stripes must be in [2, %d], got %d" % (size, stripes))
    if repeats < 1:
        raise ConfigError("repeats must be at least 1, got %d" % repeats)
    if backend not in ("filesystem", "sqlite"):
        raise ConfigError(
            "backend must be 'filesystem' or 'sqlite', got %r" % (backend,)
        )
    selected = list(images) if images is not None else list(CORPUS_IMAGE_NAMES)

    result = StoreBenchResult(
        size=size,
        seed=seed,
        planes=planes,
        stripes=stripes,
        backend=backend,
        engine=engine,
    )
    # A duplicate-heavy request mix: every stripe once, then the first half
    # again — the overlap is what batching dedupes.
    ranges: List[Tuple[int, int]] = [(s, s + 1) for s in range(stripes)]
    ranges += ranges[: max(1, stripes // 2)]
    region = (stripes // 2, stripes // 2 + 1)

    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as root:
        path = root if backend == "filesystem" else root + "/corpus.sqlite"
        with ImageStore.open(path, engine=engine, config=config) as store:
            for image_name in selected:
                image = generate_planar_image(
                    image_name, size=size, seed=seed, planes=planes
                )
                key = store.put(image, stripes=stripes)
                if store.get(key) != image:
                    raise ReproError(
                        "store round-trip failed to reconstruct %r" % image_name
                    )

                cold_full = _best_of(repeats, lambda: store.get(key))

                def cold_region():
                    store.cache.clear()
                    return store.get_region(key, region)

                cold_region_seconds = _best_of(repeats, cold_region)
                store.get_region(key, region)  # prime the cache
                warm_region_seconds = _best_of(
                    repeats, lambda: store.get_region(key, region)
                )

                def batched():
                    store.cache.clear()
                    return store.get_regions(key, ranges)

                def sequential():
                    store.cache.clear()
                    return [store.get_region(key, r) for r in ranges]

                batched_seconds = _best_of(repeats, batched)
                sequential_seconds = _best_of(repeats, sequential)

                result.rows.append(
                    StoreBenchRow(
                        image=image_name,
                        blob_bytes=store.backend.length(key),
                        cold_full_seconds=cold_full,
                        cold_region_seconds=cold_region_seconds,
                        warm_region_seconds=warm_region_seconds,
                        batch_requests=len(ranges),
                        batched_seconds=batched_seconds,
                        sequential_seconds=sequential_seconds,
                    )
                )
    return result
