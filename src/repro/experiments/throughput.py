"""Throughput experiment — the 123 MHz / 123 Mbit/s claim of Section V.

The pipeline model turns a clock frequency into a sustained input-data rate.
At the paper's 123 MHz, the bit-serial coder (one tree level per cycle, 8+1
levels per 8-bit pixel) is the bottleneck and the sustained rate lands at
one uncompressed input bit per clock — the paper's 123 Mbit/s.

The experiment reports three variants:

* the pipelined design at the paper's clock (the headline number);
* the pipelined design at the clock our timing model estimates;
* a non-pipelined modelling front-end (Line 1 and Line 2 serialised), the
  ablation that shows what the two-line pipeline of Figure 3 buys.

It also measures the escape rate of a real encode so the coder-cycle model
uses a realistic value instead of zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import CodecConfig
from repro.core.encoder import encode_image_with_statistics
from repro.exceptions import ConfigError
from repro.hardware.pipeline import PipelineModel, PipelineReport
from repro.imaging.synthetic import generate_image

__all__ = ["ThroughputResult", "run_throughput", "PAPER_CLOCK_MHZ", "PAPER_THROUGHPUT_MBITS"]

PAPER_CLOCK_MHZ = 123.0
PAPER_THROUGHPUT_MBITS = 123.0


@dataclass(frozen=True)
class ThroughputResult:
    """Pipeline-model reports for the three variants."""

    escape_rate: float
    at_paper_clock: PipelineReport
    at_estimated_clock: PipelineReport
    without_pipelining: PipelineReport
    paper_clock_mhz: float
    paper_throughput_mbits: float

    def format_report(self) -> str:
        return "\n".join(
            [
                "measured escape rate: %.4f%%" % (100.0 * self.escape_rate),
                "pipelined @ paper clock:      " + self.at_paper_clock.format_summary(),
                "pipelined @ estimated clock:  " + self.at_estimated_clock.format_summary(),
                "no two-line pipeline:         " + self.without_pipelining.format_summary(),
                "paper claim: %.0f MHz clock, %.0f Mbit/s throughput"
                % (self.paper_clock_mhz, self.paper_throughput_mbits),
            ]
        )


def run_throughput(
    size: int = 128,
    image_name: str = "lena",
    estimated_clock_mhz: Optional[float] = None,
    config: Optional[CodecConfig] = None,
) -> ThroughputResult:
    """Run the throughput experiment on one corpus image."""
    config = config if config is not None else CodecConfig.hardware()
    if size < 16:
        raise ConfigError("image size must be at least 16, got %d" % size)

    image = generate_image(image_name, size=size)
    _, statistics = encode_image_with_statistics(image, config)
    pixels = image.pixel_count
    escape_rate = min(1.0, statistics.escapes / max(1, pixels))

    if estimated_clock_mhz is None:
        # Derive the estimate from the hardware timing model.
        from repro.experiments.table2 import run_table2

        estimated_clock_mhz = run_table2(config=config).timing.clock_mhz

    paper_model = PipelineModel(config=config, clock_mhz=PAPER_CLOCK_MHZ, pipelined=True)
    estimated_model = PipelineModel(config=config, clock_mhz=estimated_clock_mhz, pipelined=True)
    serial_model = PipelineModel(config=config, clock_mhz=PAPER_CLOCK_MHZ, pipelined=False)

    return ThroughputResult(
        escape_rate=escape_rate,
        at_paper_clock=paper_model.analyse(image.width, image.height, escape_rate),
        at_estimated_clock=estimated_model.analyse(image.width, image.height, escape_rate),
        without_pipelining=serial_model.analyse(image.width, image.height, escape_rate),
        paper_clock_mhz=PAPER_CLOCK_MHZ,
        paper_throughput_mbits=PAPER_THROUGHPUT_MBITS,
    )
