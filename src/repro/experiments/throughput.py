"""Throughput experiment — the 123 MHz / 123 Mbit/s claim of Section V.

The pipeline model turns a clock frequency into a sustained input-data rate.
At the paper's 123 MHz, the bit-serial coder (one tree level per cycle, 8+1
levels per 8-bit pixel) is the bottleneck and the sustained rate lands at
one uncompressed input bit per clock — the paper's 123 Mbit/s.

The experiment reports three variants:

* the pipelined design at the paper's clock (the headline number);
* the pipelined design at the clock our timing model estimates;
* a non-pipelined modelling front-end (Line 1 and Line 2 serialised), the
  ablation that shows what the two-line pipeline of Figure 3 buys.

It also measures the escape rate of a real encode so the coder-cycle model
uses a realistic value instead of zero, and — since the software gained a
second coding engine — the *measured* software encode throughput of both
engines (``reference`` and ``fast``) in MB/s of uncompressed input, which
is what the CI performance-regression gate tracks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import CodecConfig
from repro.core.encoder import encode_image_with_statistics
from repro.core.interface import ENGINES
from repro.exceptions import ConfigError
from repro.hardware.pipeline import PipelineModel, PipelineReport
from repro.imaging.synthetic import generate_image

__all__ = ["ThroughputResult", "run_throughput", "PAPER_CLOCK_MHZ", "PAPER_THROUGHPUT_MBITS"]

PAPER_CLOCK_MHZ = 123.0
PAPER_THROUGHPUT_MBITS = 123.0


@dataclass(frozen=True)
class ThroughputResult:
    """Pipeline-model reports for the three variants."""

    escape_rate: float
    at_paper_clock: PipelineReport
    at_estimated_clock: PipelineReport
    without_pipelining: PipelineReport
    paper_clock_mhz: float
    paper_throughput_mbits: float
    #: Measured software encode throughput per engine (MB/s of raw input).
    software_mb_per_s: Dict[str, float] = field(default_factory=dict)

    def format_report(self) -> str:
        lines = [
            "measured escape rate: %.4f%%" % (100.0 * self.escape_rate),
            "pipelined @ paper clock:      " + self.at_paper_clock.format_summary(),
            "pipelined @ estimated clock:  " + self.at_estimated_clock.format_summary(),
            "no two-line pipeline:         " + self.without_pipelining.format_summary(),
            "paper claim: %.0f MHz clock, %.0f Mbit/s throughput"
            % (self.paper_clock_mhz, self.paper_throughput_mbits),
        ]
        for engine, rate in self.software_mb_per_s.items():
            lines.append("software encode (%s engine): %.3f MB/s" % (engine, rate))
        return "\n".join(lines)

    def as_json(self) -> Dict[str, dict]:
        """Machine-readable summary for ``repro-bench --json``."""
        return {
            "bpp": {},
            "mb_per_s": dict(self.software_mb_per_s),
            "extra": {
                "escape_rate": self.escape_rate,
                "paper_clock_mhz": self.paper_clock_mhz,
                "paper_throughput_mbits": self.paper_throughput_mbits,
                "modeled_mbits_at_paper_clock": self.at_paper_clock.megabits_per_second,
            },
        }


def run_throughput(
    size: int = 128,
    image_name: str = "lena",
    estimated_clock_mhz: Optional[float] = None,
    config: Optional[CodecConfig] = None,
) -> ThroughputResult:
    """Run the throughput experiment on one corpus image."""
    config = config if config is not None else CodecConfig.hardware()
    if size < 16:
        raise ConfigError("image size must be at least 16, got %d" % size)

    image = generate_image(image_name, size=size)
    raw_mb = image.pixel_count * ((image.bit_depth + 7) // 8) / 1e6
    software_mb_per_s: Dict[str, float] = {}
    statistics = None
    for engine in ENGINES:
        # Best-of-3 keeps single-shot scheduler noise out of the CI gate.
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            _, statistics = encode_image_with_statistics(image, config, engine=engine)
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
        software_mb_per_s[engine] = raw_mb / best if best > 0.0 else 0.0
    pixels = image.pixel_count
    escape_rate = min(1.0, statistics.escapes / max(1, pixels))

    if estimated_clock_mhz is None:
        # Derive the estimate from the hardware timing model.
        from repro.experiments.table2 import run_table2

        estimated_clock_mhz = run_table2(config=config).timing.clock_mhz

    paper_model = PipelineModel(config=config, clock_mhz=PAPER_CLOCK_MHZ, pipelined=True)
    estimated_model = PipelineModel(config=config, clock_mhz=estimated_clock_mhz, pipelined=True)
    serial_model = PipelineModel(config=config, clock_mhz=PAPER_CLOCK_MHZ, pipelined=False)

    return ThroughputResult(
        escape_rate=escape_rate,
        at_paper_clock=paper_model.analyse(image.width, image.height, escape_rate),
        at_estimated_clock=estimated_model.analyse(image.width, image.height, escape_rate),
        without_pipelining=serial_model.analyse(image.width, image.height, escape_rate),
        paper_clock_mhz=PAPER_CLOCK_MHZ,
        paper_throughput_mbits=PAPER_THROUGHPUT_MBITS,
        software_mb_per_s=software_mb_per_s,
    )
