"""Serve experiment — closed-loop load generation against ``repro-serve``.

Boots the full network tier in-process (real sockets, real HTTP, the same
:class:`~repro.serve.app.ImageService` the console script runs), loads the
synthetic planar corpus through ``PUT /images``, then measures three
serving regimes end to end:

* **cold** — first touch of every (key, region) pair: a range read plus an
  entropy decode per cell, measured one request at a time so each sample
  is a true cache miss;
* **warm** — a closed loop of ``clients`` concurrent threads replaying the
  same regions: pure cache reassembly, the steady state of a region-heavy
  workload (requests/second is measured here);
* **stampede** — ``stampede_clients`` threads released by a barrier onto
  one region of a freshly stored image: the single-flight map must
  collapse the herd into at most a couple of backend decodes (asserted by
  ``benchmarks/test_serve_latency.py`` at <= 2);
* **streaming** — the same warm multi-cell region fetched buffered and
  chunk-streamed back to back: the streamed response's time to first byte
  must beat the buffered response's full-assembly total (the streamed
  Netpbm header goes on the wire before any stripe decodes).

:func:`run_encoded_tier_bench` is the companion store-level experiment for
the encoded-bytes cache tier: with the decoded cache disabled (every
region read pays its entropy decodes) and a fault-injected slow backend,
the encoded tier answers repeat reads from memory while the decoded-only
baseline pays the backend latency every time.

Percentiles are exact (client-side samples, not histogram buckets).  With
``duration`` set the warm phase becomes a soak: the loop runs for that
many seconds and the result carries the server's own per-endpoint latency
histograms — the artefact the nightly CI job uploads.
"""

from __future__ import annotations

import io
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigError, ReproError
from repro.imaging.pnm import write_pgm, write_ppm
from repro.imaging.synthetic import (
    CORPUS_IMAGE_NAMES,
    generate_image,
    generate_planar_image,
)
from repro.core.cellgrid import encode_grid
from repro.core.config import CodecConfig
from repro.imaging.synthetic import generate_noise_image
from repro.serve.app import ImageService, start_server_thread
from repro.serve.chaos import FaultInjector
from repro.serve.client import ServeClient
from repro.store.store import ImageStore

__all__ = [
    "EncodedTierBenchResult",
    "ServeBenchResult",
    "TopologyBenchResult",
    "run_encoded_tier_bench",
    "run_serve_bench",
    "run_serve_soak",
    "run_topology_bench",
]


def _percentile(samples: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile of raw samples, 0.0 when empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, int(q * len(ordered) + 0.5))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class ServeBenchResult:
    """Latency + throughput of one load run against the serving tier."""

    size: int
    seed: int
    planes: int
    stripes: int
    shards: int
    backend: str
    engine: str
    clients: int
    stampede_clients: int
    cold_samples_ms: List[float] = field(default_factory=list)
    warm_samples_ms: List[float] = field(default_factory=list)
    stampede_samples_ms: List[float] = field(default_factory=list)
    stream_ttfb_samples_ms: List[float] = field(default_factory=list)
    stream_total_samples_ms: List[float] = field(default_factory=list)
    buffered_full_samples_ms: List[float] = field(default_factory=list)
    warm_seconds: float = 0.0
    warm_requests: int = 0
    stampede_backend_decodes: int = 0
    stampede_coalesced: int = 0
    duration: Optional[float] = None
    server_stats: Dict[str, Any] = field(default_factory=dict)
    admission_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def cold_p50_ms(self) -> float:
        return _percentile(self.cold_samples_ms, 0.50)

    @property
    def cold_p99_ms(self) -> float:
        return _percentile(self.cold_samples_ms, 0.99)

    @property
    def warm_p50_ms(self) -> float:
        return _percentile(self.warm_samples_ms, 0.50)

    @property
    def warm_p99_ms(self) -> float:
        return _percentile(self.warm_samples_ms, 0.99)

    @property
    def stampede_p50_ms(self) -> float:
        return _percentile(self.stampede_samples_ms, 0.50)

    @property
    def stampede_p99_ms(self) -> float:
        return _percentile(self.stampede_samples_ms, 0.99)

    @property
    def stream_ttfb_p50_ms(self) -> float:
        return _percentile(self.stream_ttfb_samples_ms, 0.50)

    @property
    def stream_ttfb_p99_ms(self) -> float:
        return _percentile(self.stream_ttfb_samples_ms, 0.99)

    @property
    def stream_total_p50_ms(self) -> float:
        return _percentile(self.stream_total_samples_ms, 0.50)

    @property
    def buffered_full_p50_ms(self) -> float:
        return _percentile(self.buffered_full_samples_ms, 0.50)

    @property
    def warm_requests_per_second(self) -> float:
        if self.warm_seconds <= 0.0:
            return 0.0
        return self.warm_requests / self.warm_seconds

    @property
    def warm_over_cold_p50(self) -> float:
        """How many times faster a warm coalesced read is than a cold one.

        ``0.0`` when the warm phase produced no samples (a soak deadline
        shorter than one request): the ratio is unknown, and ``inf`` would
        serialise as an invalid-JSON ``Infinity`` token in the artifact.
        """
        if self.warm_p50_ms <= 0.0:
            return 0.0
        return self.cold_p50_ms / self.warm_p50_ms

    def format_report(self) -> str:
        lines = [
            "%-22s %10s %10s" % ("workload", "p50", "p99"),
            "%-22s %8.2f ms %8.2f ms"
            % ("cold region", self.cold_p50_ms, self.cold_p99_ms),
            "%-22s %8.2f ms %8.2f ms"
            % ("warm region", self.warm_p50_ms, self.warm_p99_ms),
            "%-22s %8.2f ms %8.2f ms"
            % (
                "stampede (%d clients)" % self.stampede_clients,
                self.stampede_p50_ms,
                self.stampede_p99_ms,
            ),
            "%-22s %8.2f ms %8.2f ms"
            % (
                "stream TTFB (full)",
                self.stream_ttfb_p50_ms,
                self.stream_ttfb_p99_ms,
            ),
            "streamed full region: TTFB p50 %.2f ms vs buffered total p50 %.2f ms "
            "(stream total p50 %.2f ms)"
            % (
                self.stream_ttfb_p50_ms,
                self.buffered_full_p50_ms,
                self.stream_total_p50_ms,
            ),
            "warm closed loop: %d requests / %.2f s = %.0f req/s over %d client(s)"
            % (
                self.warm_requests,
                self.warm_seconds,
                self.warm_requests_per_second,
                self.clients,
            ),
            "warm p50 is %.1fx below cold p50; stampede cost %d backend decode(s), "
            "%d request(s) coalesced"
            % (
                self.warm_over_cold_p50,
                self.stampede_backend_decodes,
                self.stampede_coalesced,
            ),
            "(%d shard(s), %s backend, %s engine, %dx%d, %d plane(s), %d stripes)"
            % (
                self.shards,
                self.backend,
                self.engine,
                self.size,
                self.size,
                self.planes,
                self.stripes,
            ),
        ]
        return "\n".join(lines)

    def as_json(self) -> Dict[str, Any]:
        """Machine-readable summary for ``repro-bench --json``."""
        extra: Dict[str, Any] = {
            "cold_p50_ms": self.cold_p50_ms,
            "cold_p99_ms": self.cold_p99_ms,
            "warm_p50_ms": self.warm_p50_ms,
            "warm_p99_ms": self.warm_p99_ms,
            "stampede_p50_ms": self.stampede_p50_ms,
            "stampede_p99_ms": self.stampede_p99_ms,
            "stream_ttfb_p50_ms": self.stream_ttfb_p50_ms,
            "stream_ttfb_p99_ms": self.stream_ttfb_p99_ms,
            "stream_total_p50_ms": self.stream_total_p50_ms,
            "buffered_full_p50_ms": self.buffered_full_p50_ms,
            "warm_over_cold_p50": self.warm_over_cold_p50,
            "warm_requests_per_second": self.warm_requests_per_second,
            "warm_requests": self.warm_requests,
            "stampede_clients": self.stampede_clients,
            "stampede_backend_decodes": self.stampede_backend_decodes,
            "stampede_coalesced": self.stampede_coalesced,
            "shards": self.shards,
            "backend": self.backend,
            "engine": self.engine,
            "clients": self.clients,
            "size": self.size,
            "seed": self.seed,
            "planes": self.planes,
            "stripes": self.stripes,
        }
        if self.duration is not None:
            extra["duration_seconds"] = self.duration
        if self.server_stats:
            extra["server_stats"] = self.server_stats
        if self.admission_stats:
            extra["admission"] = self.admission_stats
        return {"bpp": {}, "mb_per_s": {}, "extra": extra}


def _shard_misses(client: ServeClient) -> int:
    return sum(shard["cache"]["misses"] for shard in client.stats()["shards"])


def run_serve_bench(
    size: int = 64,
    seed: int = 2007,
    planes: int = 3,
    stripes: int = 4,
    shards: int = 2,
    clients: int = 8,
    warm_requests: int = 240,
    stream_requests: int = 40,
    stampede_clients: int = 64,
    backend: str = "filesystem",
    engine: str = "reference",
    images: Optional[Sequence[str]] = None,
    duration: Optional[float] = None,
    max_inflight: Optional[int] = None,
) -> ServeBenchResult:
    """Run the closed-loop load benchmark against an in-process server.

    ``duration`` switches the warm phase from a fixed request count to a
    timed soak of that many seconds (the nightly CI shape); everything
    else is identical.  ``max_inflight`` overrides the server's admission
    watermark (the default is high enough that this benchmark never
    sheds; the chaos drill in :mod:`repro.experiments.chaos_bench` is the
    one that deliberately overloads it).
    """
    if size < 16:
        raise ConfigError("serve bench image size must be at least 16, got %d" % size)
    if stripes < 2 or stripes > size:
        raise ConfigError("stripes must be in [2, %d], got %d" % (size, stripes))
    if shards < 1:
        raise ConfigError("shards must be at least 1, got %d" % shards)
    if clients < 1:
        raise ConfigError("clients must be at least 1, got %d" % clients)
    if stream_requests < 1:
        raise ConfigError("stream_requests must be at least 1, got %d" % stream_requests)
    if stampede_clients < 2:
        raise ConfigError("a stampede needs at least 2 clients, got %d" % stampede_clients)
    if backend not in ("filesystem", "sqlite"):
        raise ConfigError("backend must be 'filesystem' or 'sqlite', got %r" % (backend,))
    selected = list(images) if images is not None else list(CORPUS_IMAGE_NAMES)

    result = ServeBenchResult(
        size=size,
        seed=seed,
        planes=planes,
        stripes=stripes,
        shards=shards,
        backend=backend,
        engine=engine,
        clients=clients,
        stampede_clients=stampede_clients,
        duration=duration,
    )

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as root:
        stores: List[ImageStore] = []
        for index in range(shards):
            path = (
                "%s/shard-%02d.sqlite" % (root, index)
                if backend == "sqlite"
                else "%s/shard-%02d" % (root, index)
            )
            stores.append(ImageStore.open(path, engine=engine))
        if max_inflight is not None:
            service = ImageService(stores, max_inflight=max_inflight)
        else:
            service = ImageService(stores)
        with start_server_thread(service) as handle:
            client = ServeClient(*handle.address)

            # -------- ingest the corpus over the wire ------------------ #
            keys: List[str] = []
            for name in selected:
                image = generate_planar_image(name, size=size, seed=seed, planes=planes)
                buffer = io.BytesIO()
                write_ppm(image, buffer)
                outcome = client.put_image(buffer.getvalue(), stripes=stripes)
                keys.append(str(outcome["key"]))
            expected = generate_planar_image(
                selected[0], size=size, seed=seed, planes=planes
            )
            if client.get_image(keys[0]) != expected:
                raise ReproError("served image does not match the stored corpus")

            # -------- cold: first touch of every (key, stripe) --------- #
            pairs: List[Tuple[str, Tuple[int, int]]] = [
                (key, (stripe, stripe + 1)) for key in keys for stripe in range(stripes)
            ]
            for key, (start, stop) in pairs:
                begin = time.perf_counter()
                client.get_region(key, start, stop)
                result.cold_samples_ms.append(1e3 * (time.perf_counter() - begin))

            # -------- warm: closed loop over the now-hot regions ------- #
            deadline = (
                time.monotonic() + duration if duration is not None else None
            )
            per_client = max(1, warm_requests // clients)
            warm_lock = threading.Lock()

            def warm_worker(worker: int) -> None:
                worker_client = ServeClient(*handle.address)
                samples: List[float] = []
                count = 0
                index = worker
                while True:
                    if deadline is not None:
                        if time.monotonic() >= deadline:
                            break
                    elif count >= per_client:
                        break
                    key, (start, stop) = pairs[index % len(pairs)]
                    begin = time.perf_counter()
                    worker_client.get_region(key, start, stop)
                    samples.append(1e3 * (time.perf_counter() - begin))
                    count += 1
                    index += clients
                worker_client.close()
                with warm_lock:
                    result.warm_samples_ms.extend(samples)
                    result.warm_requests += count

            warm_begin = time.perf_counter()
            workers = [
                threading.Thread(target=warm_worker, args=(worker,))
                for worker in range(clients)
            ]
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join()
            result.warm_seconds = time.perf_counter() - warm_begin

            # -------- streaming: warm full region, buffered vs chunked - #
            # Interleaved so machine drift hits both sides equally.  The
            # streamed response commits its Netpbm header before any
            # stripe decode, so its TTFB must beat the buffered total.
            full = (keys[0], 0, stripes)
            for _ in range(stream_requests):
                begin = time.perf_counter()
                client.get_region(full[0], full[1], full[2])
                result.buffered_full_samples_ms.append(
                    1e3 * (time.perf_counter() - begin)
                )
                _, timings = client.get_region_stream(full[0], full[1], full[2])
                result.stream_ttfb_samples_ms.append(timings["ttfb_ms"])
                result.stream_total_samples_ms.append(timings["total_ms"])

            # -------- stampede: a barrier herd on one cold region ------ #
            gray = generate_image(selected[0], size=size, seed=seed + 1)
            buffer = io.BytesIO()
            write_pgm(gray, buffer)
            # Two stripes -> one half-image cell: the leader's decode stays
            # in flight long enough for the herd to actually coalesce.
            stampede_key = str(
                client.put_image(buffer.getvalue(), stripes=2)["key"]
            )
            misses_before = _shard_misses(client)
            coalesced_before = int(client.stats()["flight"]["coalesced"])
            barrier = threading.Barrier(stampede_clients)
            stampede_lock = threading.Lock()
            failures: List[BaseException] = []

            def stampede_worker() -> None:
                worker_client = ServeClient(*handle.address)
                try:
                    barrier.wait()
                    begin = time.perf_counter()
                    worker_client.get_region(stampede_key, 0, 1)
                    elapsed = 1e3 * (time.perf_counter() - begin)
                    with stampede_lock:
                        result.stampede_samples_ms.append(elapsed)
                except BaseException as error:  # pragma: no cover - diagnosis path
                    with stampede_lock:
                        failures.append(error)
                finally:
                    worker_client.close()

            herd = [
                threading.Thread(target=stampede_worker)
                for _ in range(stampede_clients)
            ]
            for thread in herd:
                thread.start()
            for thread in herd:
                thread.join()
            if failures:
                raise failures[0]
            result.stampede_backend_decodes = _shard_misses(client) - misses_before
            result.stampede_coalesced = (
                int(client.stats()["flight"]["coalesced"]) - coalesced_before
            )

            final = client.stats()
            result.server_stats = final["server"]
            result.admission_stats = final.get("admission", {})
            client.close()
    return result


def run_serve_soak(
    duration: float, size: int = 48, seed: int = 2007, **kwargs
) -> ServeBenchResult:
    """The nightly shape: a timed warm soak with histograms attached."""
    return run_serve_bench(size=size, seed=seed, duration=duration, **kwargs)


@dataclass
class TopologyBenchResult:
    """Decode-bound throughput: in-process threads vs worker processes.

    Both topologies serve the identical corpus with the decoded cache
    disabled, so every warm region read pays its entropy decodes — the
    regime where the thread topology is pinned to one core by the GIL
    and the process topology actually scales.
    """

    size: int
    seed: int
    planes: int
    stripes: int
    shards: int
    workers_per_shard: int
    clients: int
    requests: int
    cores: int
    thread_requests_per_second: float = 0.0
    proc_requests_per_second: float = 0.0
    thread_p50_ms: float = 0.0
    proc_p50_ms: float = 0.0

    @property
    def scaling(self) -> float:
        """proc throughput over thread throughput (0.0 when unmeasured)."""
        if self.thread_requests_per_second <= 0.0:
            return 0.0
        return self.proc_requests_per_second / self.thread_requests_per_second

    def format_report(self) -> str:
        return "\n".join(
            [
                "%-28s %12s %10s" % ("topology", "req/s", "p50"),
                "%-28s %10.0f   %8.2f ms"
                % ("thread (in-process)", self.thread_requests_per_second, self.thread_p50_ms),
                "%-28s %10.0f   %8.2f ms"
                % (
                    "proc (%d shard x %d worker)"
                    % (self.shards, self.workers_per_shard),
                    self.proc_requests_per_second,
                    self.proc_p50_ms,
                ),
                "decode-bound scaling: %.2fx on %d core(s) "
                "(%d clients, %d requests per topology, decoded cache off)"
                % (self.scaling, self.cores, self.clients, self.requests),
            ]
        )

    def as_json(self) -> Dict[str, Any]:
        return {
            "bpp": {},
            "mb_per_s": {},
            "extra": {
                "thread_requests_per_second": self.thread_requests_per_second,
                "proc_requests_per_second": self.proc_requests_per_second,
                "thread_p50_ms": self.thread_p50_ms,
                "proc_p50_ms": self.proc_p50_ms,
                "topology_scaling": self.scaling,
                "cores": self.cores,
                "shards": self.shards,
                "workers_per_shard": self.workers_per_shard,
                "clients": self.clients,
                "requests": self.requests,
                "size": self.size,
                "seed": self.seed,
                "planes": self.planes,
                "stripes": self.stripes,
            },
        }


def _drive_closed_loop(
    address: "tuple[str, int]",
    size: int,
    seed: int,
    planes: int,
    stripes: int,
    clients: int,
    requests: int,
    images: Sequence[str],
) -> "tuple[float, float]":
    """Ingest the corpus, hammer warm regions; returns (req/s, p50 ms)."""
    with ServeClient(*address) as client:
        keys: List[str] = []
        for name in images:
            image = generate_planar_image(name, size=size, seed=seed, planes=planes)
            buffer = io.BytesIO()
            write_ppm(image, buffer)
            keys.append(str(client.put_image(buffer.getvalue(), stripes=stripes)["key"]))
    pairs = [(key, (s, s + 1)) for key in keys for s in range(stripes)]
    per_client = max(1, requests // clients)
    samples: List[float] = []
    lock = threading.Lock()
    failures: List[BaseException] = []

    def worker(offset: int) -> None:
        local: List[float] = []
        try:
            with ServeClient(*address) as loop_client:
                for count in range(per_client):
                    key, (start, stop) = pairs[(offset + count * clients) % len(pairs)]
                    begin = time.perf_counter()
                    loop_client.get_region(key, start, stop)
                    local.append(1e3 * (time.perf_counter() - begin))
        except BaseException as error:  # pragma: no cover - diagnosis path
            with lock:
                failures.append(error)
            return
        with lock:
            samples.extend(local)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(clients)]
    begin = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begin
    if failures:
        raise failures[0]
    return len(samples) / elapsed if elapsed > 0 else 0.0, _percentile(samples, 0.50)


def run_topology_bench(
    size: int = 48,
    seed: int = 2007,
    planes: int = 3,
    stripes: int = 4,
    shards: int = 2,
    workers_per_shard: int = 2,
    clients: int = 8,
    requests: int = 160,
    engine: str = "reference",
    images: Optional[Sequence[str]] = None,
) -> TopologyBenchResult:
    """Measure the proc topology's GIL escape against the thread topology.

    The decoded cache is disabled on every shard so each warm region read
    is an entropy decode; the thread topology serialises those on the GIL
    while ``shards * workers_per_shard`` worker processes decode truly in
    parallel.  The ``topology_scaling`` ratio is the artefact the CI perf
    gate records (skipped below 4 cores, where there is nothing to scale
    onto).
    """
    import os

    from repro.serve.proxy import ProxyService, start_proxy_thread
    from repro.serve.worker import WorkerSpec, WorkerSupervisor

    if shards < 1 or workers_per_shard < 1:
        raise ConfigError(
            "topology bench needs >= 1 shard and >= 1 worker per shard, got %d x %d"
            % (shards, workers_per_shard)
        )
    if clients < 1 or requests < 1:
        raise ConfigError(
            "topology bench needs >= 1 client and >= 1 request, got %d / %d"
            % (clients, requests)
        )
    selected = list(images) if images is not None else list(CORPUS_IMAGE_NAMES)
    result = TopologyBenchResult(
        size=size,
        seed=seed,
        planes=planes,
        stripes=stripes,
        shards=shards,
        workers_per_shard=workers_per_shard,
        clients=clients,
        requests=requests,
        cores=os.cpu_count() or 1,
    )

    with tempfile.TemporaryDirectory(prefix="repro-topo-thread-") as root:
        stores = [
            ImageStore.open("%s/shard-%02d" % (root, n), engine=engine, cache_bytes=0)
            for n in range(shards)
        ]
        with start_server_thread(ImageService(stores)) as handle:
            rps, p50 = _drive_closed_loop(
                handle.address, size, seed, planes, stripes, clients, requests, selected
            )
            result.thread_requests_per_second = rps
            result.thread_p50_ms = p50

    with tempfile.TemporaryDirectory(prefix="repro-topo-proc-") as root:
        specs = [
            WorkerSpec(
                shard_name="shard-%02d" % n,
                store_path=Path("%s/shard-%02d" % (root, n)),
                engine=engine,
                cache_bytes=0,
            )
            for n in range(shards)
        ]
        supervisor = WorkerSupervisor(specs, workers_per_shard=workers_per_shard).start()
        service = ProxyService(supervisor)
        handle = start_proxy_thread(service)
        try:
            rps, p50 = _drive_closed_loop(
                handle.address, size, seed, planes, stripes, clients, requests, selected
            )
            result.proc_requests_per_second = rps
            result.proc_p50_ms = p50
        finally:
            handle.stop()
            service.close()
    return result


@dataclass
class EncodedTierBenchResult:
    """Encoded-bytes tier vs decoded-only baseline on cold-cache reads."""

    size: int
    seed: int
    stripes: int
    repeats: int
    injected_latency_ms: float
    encoded_samples_ms: List[float] = field(default_factory=list)
    decoded_only_samples_ms: List[float] = field(default_factory=list)
    encoded_hits: int = 0
    encoded_backend_ops: int = 0
    decoded_only_backend_ops: int = 0

    @property
    def encoded_p50_ms(self) -> float:
        return _percentile(self.encoded_samples_ms, 0.50)

    @property
    def decoded_only_p50_ms(self) -> float:
        return _percentile(self.decoded_only_samples_ms, 0.50)

    def format_report(self) -> str:
        return "\n".join(
            [
                "%-28s %10s" % ("variant (cold decoded cache)", "p50"),
                "%-28s %8.2f ms"
                % ("encoded tier (hits: %d)" % self.encoded_hits, self.encoded_p50_ms),
                "%-28s %8.2f ms" % ("decoded-only", self.decoded_only_p50_ms),
                "backend ops during the timed loop: %d with the encoded tier, "
                "%d decoded-only (injected backend latency %.1f ms)"
                % (
                    self.encoded_backend_ops,
                    self.decoded_only_backend_ops,
                    self.injected_latency_ms,
                ),
            ]
        )

    def as_json(self) -> Dict[str, Any]:
        return {
            "bpp": {},
            "mb_per_s": {},
            "extra": {
                "encoded_p50_ms": self.encoded_p50_ms,
                "decoded_only_p50_ms": self.decoded_only_p50_ms,
                "encoded_hits": self.encoded_hits,
                "encoded_backend_ops": self.encoded_backend_ops,
                "decoded_only_backend_ops": self.decoded_only_backend_ops,
                "injected_latency_ms": self.injected_latency_ms,
                "repeats": self.repeats,
                "size": self.size,
                "seed": self.seed,
                "stripes": self.stripes,
            },
        }


def run_encoded_tier_bench(
    size: int = 48,
    seed: int = 2007,
    stripes: int = 6,
    repeats: int = 30,
    injected_latency_ms: float = 5.0,
) -> EncodedTierBenchResult:
    """Measure the encoded-bytes tier against a decoded-only baseline.

    Both stores run with the decoded cache disabled (``cache_bytes=0``), so
    every region read pays its entropy decodes — the cold-decoded-cache
    regime the encoded tier exists for.  The backend is wrapped in a
    :class:`~repro.serve.chaos.FaultInjector` carrying a fixed per-operation
    latency (a deterministic model of a slow disk or remote blob store):
    the encoded tier answers repeat reads from memory and skips that
    latency entirely, while the decoded-only baseline pays it on every
    request.
    """
    if repeats < 1:
        raise ConfigError("repeats must be at least 1, got %d" % repeats)
    if injected_latency_ms < 0.0:
        raise ConfigError(
            "injected latency must be >= 0, got %r" % (injected_latency_ms,)
        )
    image = generate_noise_image(size=size, seed=seed)
    data, _ = encode_grid(image, CodecConfig.hardware(), stripes=stripes)

    result = EncodedTierBenchResult(
        size=size,
        seed=seed,
        stripes=stripes,
        repeats=repeats,
        injected_latency_ms=injected_latency_ms,
    )
    for variant in ("encoded", "decoded-only"):
        with tempfile.TemporaryDirectory(prefix="repro-encoded-bench-") as root:
            store = ImageStore.open(
                "%s/store" % root,
                cache_bytes=0,
                encoded_cache_bytes=(32 << 20) if variant == "encoded" else 0,
            )
            injector = FaultInjector(store.backend)
            store.backend = injector
            key = store.put_stream(data)
            injector.add_latency(injected_latency_ms / 1e3)
            store.get_region(key, (0, stripes))  # prime the encoded tier

            ops_before = injector.stats()["chaos"]["operations"]
            samples = (
                result.encoded_samples_ms
                if variant == "encoded"
                else result.decoded_only_samples_ms
            )
            for _ in range(repeats):
                begin = time.perf_counter()
                store.get_region(key, (0, stripes))
                samples.append(1e3 * (time.perf_counter() - begin))
            ops_during = injector.stats()["chaos"]["operations"] - ops_before
            if variant == "encoded":
                result.encoded_backend_ops = ops_during
                result.encoded_hits = store.encoded_cache.stats.hits
            else:
                result.decoded_only_backend_ops = ops_during
            store.close()
    return result
