"""Table 1 — bit-rate comparison of JPEG-LS, SLP, CALIC and the proposed codec.

The paper evaluates seven 512×512 grey-scale images and reports bits per
pixel for each codec plus the column averages.  This module re-runs that
comparison on the synthetic stand-in corpus (see DESIGN.md for the
substitution) at a configurable image size: the default of 256×256 keeps the
full four-codec comparison under a couple of minutes of pure-Python coding,
while ``size=512`` reproduces the paper's geometry exactly when more time is
available.

The paper's published numbers are included (``PAPER_TABLE1``) so reports can
show measured and published values side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.calic import CalicCodec
from repro.baselines.jpegls import JpegLsCodec
from repro.baselines.slp import SlpCodec
from repro.core.codec import ProposedCodec
from repro.core.interface import LosslessImageCodec
from repro.exceptions import ConfigError
from repro.imaging.metrics import images_identical
from repro.imaging.synthetic import CORPUS_IMAGE_NAMES, generate_image

__all__ = ["Table1Row", "Table1Result", "run_table1", "default_codecs", "PAPER_TABLE1"]

#: Bit rates published in Table 1 of the paper (bits per pixel).
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    "barb": {"jpeg-ls": 4.86, "slp": 4.79, "calic": 4.59, "proposed": 4.68},
    "boat": {"jpeg-ls": 4.25, "slp": 4.28, "calic": 4.12, "proposed": 4.18},
    "goldhill": {"jpeg-ls": 4.71, "slp": 4.74, "calic": 4.61, "proposed": 4.65},
    "lena": {"jpeg-ls": 4.24, "slp": 4.17, "calic": 4.09, "proposed": 4.14},
    "mandrill": {"jpeg-ls": 6.04, "slp": 5.99, "calic": 5.90, "proposed": 5.93},
    "peppers": {"jpeg-ls": 4.49, "slp": 4.49, "calic": 4.35, "proposed": 4.39},
    "zelda": {"jpeg-ls": 4.01, "slp": 3.97, "calic": 3.84, "proposed": 3.90},
    "average": {"jpeg-ls": 4.66, "slp": 4.63, "calic": 4.50, "proposed": 4.55},
}


@dataclass(frozen=True)
class Table1Row:
    """Measured bit rates for one corpus image."""

    image: str
    bits_per_pixel: Dict[str, float]


@dataclass
class Table1Result:
    """Complete Table 1 run: per-image rows plus averages."""

    size: int
    seed: int
    codec_names: List[str]
    rows: List[Table1Row] = field(default_factory=list)

    def averages(self) -> Dict[str, float]:
        """Column averages (the paper's bottom row)."""
        if not self.rows:
            return {name: 0.0 for name in self.codec_names}
        return {
            name: sum(row.bits_per_pixel[name] for row in self.rows) / len(self.rows)
            for name in self.codec_names
        }

    def winner(self, image: str) -> str:
        """Codec with the lowest bit rate on ``image``."""
        for row in self.rows:
            if row.image == image:
                return min(row.bits_per_pixel, key=row.bits_per_pixel.get)
        raise KeyError("image %r not in the result" % image)

    def as_json(self) -> Dict[str, dict]:
        """Machine-readable summary for ``repro-bench --json``."""
        bpp = {
            "%s/%s" % (row.image, name): row.bits_per_pixel[name]
            for row in self.rows
            for name in self.codec_names
        }
        for name, value in self.averages().items():
            bpp["average/%s" % name] = value
        return {"bpp": bpp, "mb_per_s": {}, "extra": {"size": self.size, "seed": self.seed}}

    def format_table(self, include_paper: bool = False) -> str:
        """Render the result like the paper's Table 1."""
        header = "%-10s" % "Image" + "".join("%11s" % name for name in self.codec_names)
        lines = [header]
        for row in self.rows:
            lines.append(
                "%-10s" % row.image
                + "".join("%11.3f" % row.bits_per_pixel[name] for name in self.codec_names)
            )
        averages = self.averages()
        lines.append(
            "%-10s" % "average"
            + "".join("%11.3f" % averages[name] for name in self.codec_names)
        )
        if include_paper:
            lines.append("")
            lines.append("%-10s" % "(paper)" + "".join("%11s" % name for name in self.codec_names))
            for image, published in PAPER_TABLE1.items():
                lines.append(
                    "%-10s" % image
                    + "".join(
                        "%11.2f" % published.get(name, float("nan"))
                        for name in self.codec_names
                    )
                )
        return "\n".join(lines)


def default_codecs() -> List[LosslessImageCodec]:
    """The four codecs of Table 1, in column order."""
    return [JpegLsCodec(), SlpCodec(), CalicCodec(), ProposedCodec()]


def run_table1(
    size: int = 256,
    seed: int = 2007,
    codecs: Optional[Sequence[LosslessImageCodec]] = None,
    images: Optional[Sequence[str]] = None,
    verify_roundtrip: bool = True,
) -> Table1Result:
    """Regenerate Table 1 on the synthetic corpus.

    Parameters
    ----------
    size:
        Image width/height in pixels (the paper uses 512).
    seed:
        Corpus random seed (results are deterministic given size + seed).
    codecs:
        Codecs to compare; defaults to the paper's four columns.
    images:
        Corpus image names; defaults to the paper's seven rows.
    verify_roundtrip:
        Also decode every stream and assert exact reconstruction (slower but
        guarantees the reported rates describe *lossless* streams).
    """
    if size < 16:
        raise ConfigError("table 1 image size must be at least 16, got %d" % size)
    selected_codecs = list(codecs) if codecs is not None else default_codecs()
    selected_images = list(images) if images is not None else list(CORPUS_IMAGE_NAMES)
    names = [codec.name for codec in selected_codecs]
    if len(set(names)) != len(names):
        raise ConfigError("codec names must be unique, got %r" % names)

    result = Table1Result(size=size, seed=seed, codec_names=names)
    for image_name in selected_images:
        image = generate_image(image_name, size=size, seed=seed)
        rates: Dict[str, float] = {}
        for codec in selected_codecs:
            stream = codec.encode(image)
            if verify_roundtrip and not images_identical(codec.decode(stream), image):
                raise AssertionError(
                    "codec %s failed to losslessly reconstruct %s" % (codec.name, image_name)
                )
            rates[codec.name] = 8.0 * len(stream) / image.pixel_count
        result.rows.append(Table1Row(image=image_name, bits_per_pixel=rates))
    return result
