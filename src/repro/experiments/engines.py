"""Engine comparison — every registered engine against the reference.

The non-reference engines exist purely for speed: each must produce
**byte-identical** streams to the reference engine while encoding faster.
This experiment measures both properties for *every* engine the registry
currently dispatches (:func:`repro.core.interface.engine_names` — the two
built-ins, plus ``native`` when numba or the pure-Python opt-in makes it
available, plus anything registered at runtime) and is the data source of
the CI performance-regression gate (``benchmarks/baseline.json``):

* per image, the bits-per-pixel of the (shared) stream — any change breaks
  the gate, because the stream format is deterministic;
* per image and engine, the encode throughput in MB/s of uncompressed input
  — a regression beyond the gate's tolerance fails CI.

Identity is enforced here, not just measured: a diverging stream makes the
run raise immediately rather than report a meaningless speedup.  The gate
only iterates keys present in the committed baseline, so optional engines
(``native`` on numba-equipped machines) add columns without invalidating
baselines recorded on machines that lack them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import CodecConfig
from repro.core.decoder import decode_image
from repro.core.encoder import encode_image_with_statistics
from repro.core.interface import engine_names
from repro.exceptions import ConfigError, ReproError
from repro.imaging.synthetic import CORPUS_IMAGE_NAMES, generate_image

__all__ = ["EngineImageRow", "EngineComparisonResult", "run_engine_comparison"]


@dataclass(frozen=True)
class EngineImageRow:
    """Measured engine comparison for one corpus image.

    ``seconds`` and ``mb_per_s`` are keyed by engine name in measurement
    order (``reference`` always first).  The ``reference_*`` / ``fast_*``
    accessors keep the historical two-engine shape working for callers that
    predate the registry sweep.
    """

    image: str
    bits_per_pixel: float
    seconds: Mapping[str, float]
    mb_per_s: Mapping[str, float]

    @property
    def engines(self) -> Tuple[str, ...]:
        return tuple(self.seconds)

    @property
    def reference_seconds(self) -> float:
        return self.seconds.get("reference", 0.0)

    @property
    def fast_seconds(self) -> float:
        return self.seconds.get("fast", 0.0)

    @property
    def reference_mb_per_s(self) -> float:
        return self.mb_per_s.get("reference", 0.0)

    @property
    def fast_mb_per_s(self) -> float:
        return self.mb_per_s.get("fast", 0.0)

    def speedup_over_reference(self, engine: str) -> float:
        """Wall-clock encode speedup of ``engine`` over the reference."""
        elapsed = self.seconds.get(engine, 0.0)
        if elapsed <= 0.0:
            return float("inf")
        return self.reference_seconds / elapsed

    @property
    def speedup(self) -> float:
        """Wall-clock encode speedup of the fast engine."""
        return self.speedup_over_reference("fast")

    def format_row(self) -> str:
        cells = ["%-10s %8.3f bpp" % (self.image, self.bits_per_pixel)]
        for engine in self.engines:
            cells.append("%10.3f MB/s" % self.mb_per_s[engine])
        for engine in self.engines:
            if engine != "reference":
                cells.append("%7.2fx" % self.speedup_over_reference(engine))
        return " ".join(cells)


@dataclass
class EngineComparisonResult:
    """Complete engine comparison over a corpus subset."""

    size: int
    seed: int
    rows: List[EngineImageRow] = field(default_factory=list)

    @property
    def engines(self) -> Tuple[str, ...]:
        return self.rows[0].engines if self.rows else ()

    def aggregate_speedup(self, engine: str = "fast") -> float:
        """Total reference time over total ``engine`` time (noise-robust)."""
        reference = sum(row.reference_seconds for row in self.rows)
        other = sum(row.seconds.get(engine, 0.0) for row in self.rows)
        if other <= 0.0:
            return float("inf")
        return reference / other

    def aggregate_speedups(self) -> Dict[str, float]:
        """Aggregate speedup over the reference for every other engine."""
        return {
            engine: self.aggregate_speedup(engine)
            for engine in self.engines
            if engine != "reference"
        }

    def format_report(self) -> str:
        header = ["%-10s %12s" % ("Image", "Bit rate")]
        for engine in self.engines:
            header.append("%15s" % engine)
        for engine in self.engines:
            if engine != "reference":
                header.append("%8s" % engine[:7])
        lines = [" ".join(header)]
        for row in self.rows:
            lines.append(row.format_row())
        for engine, speedup in self.aggregate_speedups().items():
            lines.append(
                "aggregate encode speedup (%s): %.2fx" % (engine, speedup)
            )
        return "\n".join(lines)

    def as_json(self) -> Dict[str, dict]:
        """Machine-readable summary for ``repro-bench --json``.

        ``bpp`` values are exact stream properties (the CI gate requires
        equality); ``mb_per_s`` values are wall-clock measurements (the gate
        applies a tolerance).  One ``image/engine`` rate key per measured
        engine — the gate ignores keys absent from its baseline, so the
        optional engines ride along without re-baselining.
        """
        return {
            "bpp": {row.image: row.bits_per_pixel for row in self.rows},
            "mb_per_s": {
                "%s/%s" % (row.image, engine): row.mb_per_s[engine]
                for row in self.rows
                for engine in row.engines
            },
            "extra": {
                "aggregate_speedup": self.aggregate_speedup(),
                "aggregate_speedups": self.aggregate_speedups(),
                "engines": list(self.engines),
                "size": self.size,
                "seed": self.seed,
            },
        }


def _best_of(image, config, engine: str, repeats: int) -> tuple:
    """Encode ``repeats`` times; return (stream, best wall-clock seconds).

    Best-of-N is the standard way to keep single-shot scheduler noise out of
    wall-clock benchmarks; the stream is identical across repeats (the codec
    is deterministic), so only the timing varies.
    """
    best = float("inf")
    stream = b""
    for _ in range(repeats):
        start = time.perf_counter()
        stream, _ = encode_image_with_statistics(image, config, engine=engine)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return stream, best


def run_engine_comparison(
    size: int = 96,
    seed: int = 2007,
    images: Optional[Sequence[str]] = None,
    config: Optional[CodecConfig] = None,
    verify_roundtrip: bool = True,
    repeats: int = 3,
    engines: Optional[Sequence[str]] = None,
) -> EngineComparisonResult:
    """Compare every dispatchable engine on the synthetic corpus.

    ``engines`` defaults to :func:`~repro.core.interface.engine_names` — the
    live registry view, so the sweep includes ``native`` exactly when it
    would dispatch.  The reference engine is always measured first (it is
    the identity anchor and the gate's normalisation baseline).  Timings are
    best-of-``repeats`` per image and engine (noise robustness for the CI
    gate).  Raises :class:`~repro.exceptions.ReproError` if any engine ever
    produces a stream that differs from the reference engine's.
    """
    if size < 16:
        raise ConfigError("engine comparison image size must be at least 16, got %d" % size)
    if repeats < 1:
        raise ConfigError("repeats must be at least 1, got %d" % repeats)
    config = config if config is not None else CodecConfig.hardware()
    selected = list(images) if images is not None else list(CORPUS_IMAGE_NAMES)
    ordered = ["reference"]
    ordered += [
        name
        for name in (engines if engines is not None else engine_names())
        if name != "reference"
    ]

    result = EngineComparisonResult(size=size, seed=seed)
    for image_name in selected:
        image = generate_image(image_name, size=size, seed=seed)
        raw_mb = image.pixel_count * ((image.bit_depth + 7) // 8) / 1e6

        seconds: Dict[str, float] = {}
        mb_per_s: Dict[str, float] = {}
        reference_stream = b""
        for engine in ordered:
            stream, elapsed = _best_of(image, config, engine, repeats)
            if engine == "reference":
                reference_stream = stream
            elif stream != reference_stream:
                raise ReproError(
                    "%s engine diverged from the reference engine on %r "
                    "(%d vs %d bytes)" % (engine, image_name, len(stream), len(reference_stream))
                )
            if verify_roundtrip and decode_image(stream, config, engine=engine) != image:
                raise ReproError(
                    "%s engine failed to losslessly reconstruct %r" % (engine, image_name)
                )
            seconds[engine] = elapsed
            mb_per_s[engine] = raw_mb / elapsed if elapsed else 0.0

        result.rows.append(
            EngineImageRow(
                image=image_name,
                bits_per_pixel=8.0 * len(reference_stream) / image.pixel_count,
                seconds=seconds,
                mb_per_s=mb_per_s,
            )
        )
    return result
