"""Engine comparison — reference vs fast coding engine on the corpus.

The fast engine exists purely for speed: it must produce **byte-identical**
streams to the reference engine while encoding several times faster.  This
experiment measures both properties on the synthetic corpus and is the data
source of the CI performance-regression gate (``benchmarks/baseline.json``):

* per image, the bits-per-pixel of the (shared) stream — any change breaks
  the gate, because the stream format is deterministic;
* per image and engine, the encode throughput in MB/s of uncompressed input
  — a regression beyond the gate's tolerance fails CI.

Identity is enforced here, not just measured: a diverging fast stream makes
the run raise immediately rather than report a meaningless speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import CodecConfig
from repro.core.decoder import decode_image
from repro.core.encoder import encode_image_with_statistics
from repro.exceptions import ConfigError, ReproError
from repro.imaging.synthetic import CORPUS_IMAGE_NAMES, generate_image

__all__ = ["EngineImageRow", "EngineComparisonResult", "run_engine_comparison"]


@dataclass(frozen=True)
class EngineImageRow:
    """Measured engine comparison for one corpus image."""

    image: str
    bits_per_pixel: float
    reference_seconds: float
    fast_seconds: float
    reference_mb_per_s: float
    fast_mb_per_s: float

    @property
    def speedup(self) -> float:
        """Wall-clock encode speedup of the fast engine."""
        if self.fast_seconds <= 0.0:
            return float("inf")
        return self.reference_seconds / self.fast_seconds

    def format_row(self) -> str:
        return "%-10s %8.3f bpp %10.3f MB/s %10.3f MB/s %8.2fx" % (
            self.image,
            self.bits_per_pixel,
            self.reference_mb_per_s,
            self.fast_mb_per_s,
            self.speedup,
        )


@dataclass
class EngineComparisonResult:
    """Complete engine comparison over a corpus subset."""

    size: int
    seed: int
    rows: List[EngineImageRow] = field(default_factory=list)

    def aggregate_speedup(self) -> float:
        """Total reference time over total fast time (noise-robust)."""
        reference = sum(row.reference_seconds for row in self.rows)
        fast = sum(row.fast_seconds for row in self.rows)
        if fast <= 0.0:
            return float("inf")
        return reference / fast

    def format_report(self) -> str:
        lines = [
            "%-10s %12s %16s %16s %9s"
            % ("Image", "Bit rate", "reference", "fast", "Speedup")
        ]
        for row in self.rows:
            lines.append(row.format_row())
        lines.append("aggregate encode speedup: %.2fx" % self.aggregate_speedup())
        return "\n".join(lines)

    def as_json(self) -> Dict[str, dict]:
        """Machine-readable summary for ``repro-bench --json``.

        ``bpp`` values are exact stream properties (the CI gate requires
        equality); ``mb_per_s`` values are wall-clock measurements (the gate
        applies a tolerance).
        """
        return {
            "bpp": {row.image: row.bits_per_pixel for row in self.rows},
            "mb_per_s": {
                key: value
                for row in self.rows
                for key, value in (
                    ("%s/reference" % row.image, row.reference_mb_per_s),
                    ("%s/fast" % row.image, row.fast_mb_per_s),
                )
            },
            "extra": {
                "aggregate_speedup": self.aggregate_speedup(),
                "size": self.size,
                "seed": self.seed,
            },
        }


def _best_of(image, config, engine: str, repeats: int) -> tuple:
    """Encode ``repeats`` times; return (stream, best wall-clock seconds).

    Best-of-N is the standard way to keep single-shot scheduler noise out of
    wall-clock benchmarks; the stream is identical across repeats (the codec
    is deterministic), so only the timing varies.
    """
    best = float("inf")
    stream = b""
    for _ in range(repeats):
        start = time.perf_counter()
        stream, _ = encode_image_with_statistics(image, config, engine=engine)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return stream, best


def run_engine_comparison(
    size: int = 96,
    seed: int = 2007,
    images: Optional[Sequence[str]] = None,
    config: Optional[CodecConfig] = None,
    verify_roundtrip: bool = True,
    repeats: int = 3,
) -> EngineComparisonResult:
    """Compare the two engines on the synthetic corpus.

    Timings are best-of-``repeats`` per image and engine (noise robustness
    for the CI gate).  Raises :class:`~repro.exceptions.ReproError` if the
    fast engine ever produces a stream that differs from the reference
    engine's.
    """
    if size < 16:
        raise ConfigError("engine comparison image size must be at least 16, got %d" % size)
    if repeats < 1:
        raise ConfigError("repeats must be at least 1, got %d" % repeats)
    config = config if config is not None else CodecConfig.hardware()
    selected = list(images) if images is not None else list(CORPUS_IMAGE_NAMES)

    result = EngineComparisonResult(size=size, seed=seed)
    for image_name in selected:
        image = generate_image(image_name, size=size, seed=seed)
        raw_mb = image.pixel_count * ((image.bit_depth + 7) // 8) / 1e6

        reference_stream, reference_seconds = _best_of(image, config, "reference", repeats)
        fast_stream, fast_seconds = _best_of(image, config, "fast", repeats)

        if fast_stream != reference_stream:
            raise ReproError(
                "fast engine diverged from the reference engine on %r "
                "(%d vs %d bytes)" % (image_name, len(fast_stream), len(reference_stream))
            )
        if verify_roundtrip and decode_image(fast_stream, config, engine="fast") != image:
            raise ReproError("fast engine failed to losslessly reconstruct %r" % image_name)

        result.rows.append(
            EngineImageRow(
                image=image_name,
                bits_per_pixel=8.0 * len(reference_stream) / image.pixel_count,
                reference_seconds=reference_seconds,
                fast_seconds=fast_seconds,
                reference_mb_per_s=raw_mb / reference_seconds if reference_seconds else 0.0,
                fast_mb_per_s=raw_mb / fast_seconds if fast_seconds else 0.0,
            )
        )
    return result
