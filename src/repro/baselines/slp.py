"""SLP — Switched Linear Prediction with Golomb-Rice coding.

The paper's Table 1 includes an "SLP(M0)" column described only as a
"low complexity compression scheme using Golomb-Rice coder" based on
switched linear prediction.  No public specification of that exact scheme
exists, so this module implements a faithful functional proxy (documented in
DESIGN.md):

* a bank of four linear predictors (west, north, average, plane) switched
  per pixel by the local horizontal/vertical gradient estimates — the switch
  is backward-adaptive, so no side information is transmitted;
* prediction errors folded to non-negative symbols and coded with an
  adaptive Golomb-Rice code whose parameter ``k`` is derived per activity
  class from running error-magnitude accumulators (the same adaptation rule
  JPEG-LS uses);
* four activity classes selected by the quantised gradient energy.

The resulting codec sits between JPEG-LS and CALIC in complexity and — as in
the paper's Table 1 — usually within a few hundredths of a bit of JPEG-LS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.bitstream import CodecId, pack_stream, unpack_stream
from repro.core.interface import LosslessImageCodec
from repro.entropy.golomb import golomb_rice_decode, golomb_rice_encode
from repro.exceptions import CodecMismatchError, ConfigError
from repro.imaging.image import GrayImage
from repro.utils.bitio import BitReader, BitWriter

__all__ = ["SlpCodec", "SlpParameters"]


@dataclass(frozen=True)
class SlpParameters:
    """Tunables of the switched-linear-prediction codec."""

    bit_depth: int = 8
    #: Gradient difference above which the predictor switches to pure W or N.
    switch_threshold: int = 12
    #: Activity-class quantiser boundaries (on dh + dv).
    activity_thresholds: tuple = (8, 24, 64)
    #: Counter reset threshold for the Golomb parameter adaptation.
    reset: int = 64

    @property
    def maxval(self) -> int:
        return (1 << self.bit_depth) - 1

    @property
    def range(self) -> int:
        return self.maxval + 1


class _ActivityClass:
    """Adaptive Golomb-parameter state for one activity class."""

    __slots__ = ("a", "n")

    def __init__(self, params: SlpParameters) -> None:
        self.a = max(2, (params.range + 32) // 64)
        self.n = 1

    def golomb_k(self) -> int:
        k = 0
        while (self.n << k) < self.a and k < 24:
            k += 1
        return k

    def update(self, magnitude: int, reset: int) -> None:
        self.a += magnitude
        if self.n == reset:
            self.a >>= 1
            self.n >>= 1
        self.n += 1


class SlpCodec(LosslessImageCodec):
    """Switched Linear Prediction baseline (the SLP(M0) column of Table 1)."""

    name = "slp"

    def __init__(self, parameters: Optional[SlpParameters] = None) -> None:
        self.parameters = parameters if parameters is not None else SlpParameters()

    # ------------------------------------------------------------------ #
    # prediction machinery (shared by encoder and decoder)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _neighbours(
        row_above: Optional[List[int]], current: List[int], x: int, width: int
    ) -> tuple:
        """Causal neighbours (W, N, NW, NE) with deterministic edge policy."""
        if row_above is not None:
            n = row_above[x]
            nw = row_above[x - 1] if x > 0 else n
            ne = row_above[x + 1] if x + 1 < width else n
        else:
            n = nw = ne = 0
        if x > 0:
            w = current[x - 1]
        else:
            w = n if row_above is not None else 128
        if row_above is None:
            n = nw = ne = w
        return w, n, nw, ne

    def _predict(self, w: int, n: int, nw: int, ne: int) -> tuple:
        """Switched linear prediction; returns (prediction, activity).

        The predictor bank is {W, N, plane (W+N−NW), smoothed average}; the
        switch is driven by the causal horizontal/vertical gradient estimates
        so the decoder can reproduce the choice without side information.
        """
        params = self.parameters
        dh = abs(n - nw) + abs(ne - n)
        dv = 2 * abs(w - nw)
        activity = dh + dv
        if dv - dh > params.switch_threshold:
            predicted = w
        elif dh - dv > params.switch_threshold:
            predicted = n
        elif abs(w - nw) <= 2 or abs(n - nw) <= 2:
            # Locally planar: the plane predictor is exact on ramps.
            predicted = w + n - nw
        else:
            predicted = ((w + n) >> 1) + ((ne - nw) >> 2)
        predicted = min(max(predicted, 0), params.maxval)
        return predicted, activity

    def _activity_class(self, activity: int) -> int:
        for index, threshold in enumerate(self.parameters.activity_thresholds):
            if activity <= threshold:
                return index
        return len(self.parameters.activity_thresholds)

    @staticmethod
    def _fold(error: int) -> int:
        return 2 * error if error >= 0 else -2 * error - 1

    @staticmethod
    def _unfold(code: int) -> int:
        return code // 2 if code % 2 == 0 else -(code + 1) // 2

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def encode(self, image: GrayImage) -> bytes:
        params = self.parameters
        if image.bit_depth != params.bit_depth:
            raise ConfigError(
                "SLP codec configured for %d-bit samples, image has %d"
                % (params.bit_depth, image.bit_depth)
            )
        writer = BitWriter()
        classes = [_ActivityClass(params) for _ in range(len(params.activity_thresholds) + 1)]
        previous_row: Optional[List[int]] = None
        half = params.range // 2
        for y in range(image.height):
            row = image.row(y)
            current: List[int] = []
            for x in range(image.width):
                w, n, nw, ne = self._neighbours(previous_row, current, x, image.width)
                predicted, activity = self._predict(w, n, nw, ne)
                cls = classes[self._activity_class(activity)]
                error = (row[x] - predicted) % params.range
                if error >= half:
                    error -= params.range
                k = cls.golomb_k()
                golomb_rice_encode(writer, self._fold(error), k)
                cls.update(abs(error), params.reset)
                current.append(row[x])
            previous_row = current
        payload = writer.getvalue()
        return pack_stream(
            CodecId.SLP,
            image.width,
            image.height,
            image.bit_depth,
            payload,
            parameter=params.switch_threshold,
        )

    def decode(self, data: bytes) -> GrayImage:
        header, payload = unpack_stream(data)
        if header.codec != CodecId.SLP:
            raise CodecMismatchError(
                "stream was produced by %s, not SLP" % header.codec.name
            )
        params = self.parameters
        if header.bit_depth != params.bit_depth:
            raise CodecMismatchError(
                "stream bit depth %d does not match codec configuration %d"
                % (header.bit_depth, params.bit_depth)
            )
        reader = BitReader(payload)
        classes = [_ActivityClass(params) for _ in range(len(params.activity_thresholds) + 1)]
        rows: List[List[int]] = []
        previous_row: Optional[List[int]] = None
        half = params.range // 2
        for _y in range(header.height):
            current: List[int] = []
            for x in range(header.width):
                w, n, nw, ne = self._neighbours(previous_row, current, x, header.width)
                predicted, activity = self._predict(w, n, nw, ne)
                cls = classes[self._activity_class(activity)]
                k = cls.golomb_k()
                error = self._unfold(golomb_rice_decode(reader, k))
                cls.update(abs(error), params.reset)
                value = (predicted + error) % params.range
                current.append(value)
            rows.append(current)
            previous_row = current
        return GrayImage.from_rows(rows, bit_depth=header.bit_depth)
