"""JPEG-LS (LOCO-I) baseline codec.

This is a from-scratch implementation of the lossless (NEAR = 0) path of
ITU-T T.87 / ISO 14495-1 for single-component 8-bit images, close enough to
the standard to serve as the "JPEG-LS" column of the paper's Table 1:

* median-edge-detection (MED) predictor;
* 365 regular-mode contexts from the quantised gradients (D1, D2, D3) with
  sign folding;
* per-context bias correction (B, C, N counters with the RESET halving);
* limited-length Golomb-Rice coding LG(k, LIMIT) of the mapped errors;
* run mode with the standard J[] run-length code table and the two
  run-interruption contexts.

The output is wrapped in this package's generic container (not the JPEG-LS
marker-segment syntax) because the benchmark harness only needs the payload
size; the entropy-coded payload itself follows the standard's procedures.

Bit-exactness against other JPEG-LS implementations is *not* claimed (the
container differs and no marker segments are emitted), but the code length
per pixel matches the standard's coding procedures, which is what the bit
rates in Table 1 measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.bitstream import CodecId, pack_stream, unpack_stream
from repro.core.interface import LosslessImageCodec
from repro.entropy.golomb import limited_golomb_decode, limited_golomb_encode
from repro.exceptions import CodecMismatchError, ConfigError
from repro.imaging.image import GrayImage
from repro.utils.bitio import BitReader, BitWriter

__all__ = ["JpegLsCodec", "JpegLsParameters"]

#: Run-length code order table (ITU-T T.87 Table A.1 equivalent).
_J = [
    0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
    4, 4, 5, 5, 6, 6, 7, 7, 8, 9, 10, 11, 12, 13, 14, 15,
]


@dataclass(frozen=True)
class JpegLsParameters:
    """Coding parameters (defaults follow the standard for 8-bit lossless)."""

    bit_depth: int = 8
    #: Gradient quantisation thresholds T1, T2, T3.
    t1: int = 3
    t2: int = 7
    t3: int = 21
    #: Context-counter reset threshold.
    reset: int = 64

    @property
    def maxval(self) -> int:
        return (1 << self.bit_depth) - 1

    @property
    def range(self) -> int:
        return self.maxval + 1

    @property
    def qbpp(self) -> int:
        """Bits needed to represent a mapped error."""
        return self.bit_depth

    @property
    def limit(self) -> int:
        """Maximum Golomb code length per sample."""
        return 2 * (self.bit_depth + max(8, self.bit_depth))

    @property
    def min_c(self) -> int:
        return -128

    @property
    def max_c(self) -> int:
        return 127


class _ContextState:
    """Adaptive per-context state shared by encoder and decoder."""

    __slots__ = ("a", "b", "c", "n")

    def __init__(self, params: JpegLsParameters) -> None:
        self.a = max(2, (params.range + 32) // 64)
        self.b = 0
        self.c = 0
        self.n = 1


class _RunState:
    """Run-interruption context state (contexts 365 and 366)."""

    __slots__ = ("a", "n", "nn")

    def __init__(self, params: JpegLsParameters) -> None:
        self.a = max(2, (params.range + 32) // 64)
        self.n = 1
        self.nn = 0


class _CoderState:
    """Everything that adapts while coding one image."""

    def __init__(self, params: JpegLsParameters) -> None:
        self.params = params
        # 405 slots, of which 365 are reachable after sign folding (see
        # _context_index); unreachable slots cost a few bytes and stay unused.
        self.contexts = [_ContextState(params) for _ in range(405)]
        self.run_contexts = [_RunState(params), _RunState(params)]
        self.run_index = 0


def _quantize_gradient(value: int, params: JpegLsParameters) -> int:
    """Quantise a local gradient into one of nine regions (-4 .. 4)."""
    if value <= -params.t3:
        return -4
    if value <= -params.t2:
        return -3
    if value <= -params.t1:
        return -2
    if value < 0:
        return -1
    if value == 0:
        return 0
    if value < params.t1:
        return 1
    if value < params.t2:
        return 2
    if value < params.t3:
        return 3
    return 4


def _context_index(q1: int, q2: int, q3: int) -> tuple:
    """Fold the signed (Q1, Q2, Q3) triple into a context index and a sign.

    After sign folding ``q1`` is non-negative, so the triple is mapped into a
    table of ``5 * 9 * 9 = 405`` slots of which exactly 365 are reachable
    (the canonical half of the ``q1 == 0`` plane plus the four ``q1 > 0``
    planes) — the standard's 365 contexts.  The all-zero triple never reaches
    this function because it selects run mode.
    """
    sign = 1
    if q1 < 0 or (q1 == 0 and (q2 < 0 or (q2 == 0 and q3 < 0))):
        q1, q2, q3 = -q1, -q2, -q3
        sign = -1
    index = (q1 * 9 + (q2 + 4)) * 9 + (q3 + 4)
    return index, sign


def _med_predict(a: int, b: int, c: int) -> int:
    """Median edge detection predictor of LOCO-I."""
    if c >= max(a, b):
        return min(a, b)
    if c <= min(a, b):
        return max(a, b)
    return a + b - c


def _golomb_k(state: _ContextState) -> int:
    k = 0
    while (state.n << k) < state.a and k < 24:
        k += 1
    return k


def _neighbours(
    row_above: Optional[List[int]], current: List[int], x: int, width: int, default: int
) -> tuple:
    """Causal neighbours Ra (W), Rb (N), Rc (NW), Rd (NE).

    Edge policy: on the first row the north neighbours read zero; on the
    first column Ra falls back to Rb (the sample above) and Rc to Rb.  The
    policy only has to be deterministic and causal — encoder and decoder
    share this function, so any choice is lossless.
    """
    if row_above is not None:
        rb = row_above[x]
        rc = row_above[x - 1] if x > 0 else rb
        rd = row_above[x + 1] if x + 1 < width else rb
    else:
        rb = rc = rd = 0
    if x > 0:
        ra = current[x - 1]
    else:
        ra = rb if row_above is not None else default
    return ra, rb, rc, rd


class JpegLsCodec(LosslessImageCodec):
    """Lossless JPEG-LS (LOCO-I) encoder/decoder for grey-scale images."""

    name = "jpeg-ls"

    def __init__(self, parameters: Optional[JpegLsParameters] = None) -> None:
        self.parameters = parameters if parameters is not None else JpegLsParameters()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def encode(self, image: GrayImage) -> bytes:
        params = self.parameters
        if image.bit_depth != params.bit_depth:
            raise ConfigError(
                "JPEG-LS codec configured for %d-bit samples, image has %d"
                % (params.bit_depth, image.bit_depth)
            )
        writer = BitWriter()
        state = _CoderState(params)
        previous_row: Optional[List[int]] = None
        for y in range(image.height):
            row = image.row(y)
            self._encode_row(writer, state, row, previous_row, image.width)
            previous_row = row
        payload = writer.getvalue()
        return pack_stream(
            CodecId.JPEG_LS,
            image.width,
            image.height,
            image.bit_depth,
            payload,
            parameter=params.t1,
        )

    def decode(self, data: bytes) -> GrayImage:
        header, payload = unpack_stream(data)
        if header.codec != CodecId.JPEG_LS:
            raise CodecMismatchError(
                "stream was produced by %s, not JPEG-LS" % header.codec.name
            )
        params = self.parameters
        if header.bit_depth != params.bit_depth:
            raise CodecMismatchError(
                "stream bit depth %d does not match codec configuration %d"
                % (header.bit_depth, params.bit_depth)
            )
        reader = BitReader(payload)
        state = _CoderState(params)
        rows: List[List[int]] = []
        previous_row: Optional[List[int]] = None
        for _y in range(header.height):
            row = self._decode_row(reader, state, previous_row, header.width)
            rows.append(row)
            previous_row = row
        return GrayImage.from_rows(rows, bit_depth=header.bit_depth)

    # ------------------------------------------------------------------ #
    # row coding
    # ------------------------------------------------------------------ #

    def _encode_row(
        self,
        writer: BitWriter,
        state: _CoderState,
        row: List[int],
        row_above: Optional[List[int]],
        width: int,
    ) -> None:
        params = state.params
        current: List[int] = []
        x = 0
        while x < width:
            ra, rb, rc, rd = _neighbours(row_above, current, x, width, 0)
            d1, d2, d3 = rd - rb, rb - rc, rc - ra
            if d1 == 0 and d2 == 0 and d3 == 0:
                x = self._encode_run(writer, state, row, current, row_above, x, width, ra, rb)
                continue
            value = row[x]
            self._encode_regular(writer, state, value, ra, rb, rc, rd)
            current.append(value)
            x += 1

    def _decode_row(
        self,
        reader: BitReader,
        state: _CoderState,
        row_above: Optional[List[int]],
        width: int,
    ) -> List[int]:
        current: List[int] = []
        x = 0
        while x < width:
            ra, rb, rc, rd = _neighbours(row_above, current, x, width, 0)
            d1, d2, d3 = rd - rb, rb - rc, rc - ra
            if d1 == 0 and d2 == 0 and d3 == 0:
                x = self._decode_run(reader, state, current, row_above, x, width, ra, rb)
                continue
            value = self._decode_regular(reader, state, ra, rb, rc, rd)
            current.append(value)
            x += 1
        return current

    # ------------------------------------------------------------------ #
    # regular mode
    # ------------------------------------------------------------------ #

    def _encode_regular(
        self,
        writer: BitWriter,
        state: _CoderState,
        value: int,
        ra: int,
        rb: int,
        rc: int,
        rd: int,
    ) -> None:
        params = state.params
        q1 = _quantize_gradient(rd - rb, params)
        q2 = _quantize_gradient(rb - rc, params)
        q3 = _quantize_gradient(rc - ra, params)
        context_index, sign = _context_index(q1, q2, q3)
        context = state.contexts[context_index]

        predicted = _med_predict(ra, rb, rc)
        predicted += sign * context.c
        predicted = min(max(predicted, 0), params.maxval)

        error = value - predicted
        if sign < 0:
            error = -error
        # Reduce modulo RANGE into [-RANGE/2, RANGE/2 - 1].
        error %= params.range
        if error >= params.range // 2:
            error -= params.range

        k = _golomb_k(context)
        mapped = self._map_error(error, k, context)
        limited_golomb_encode(writer, mapped, k, params.limit, params.qbpp)
        self._update_regular(context, error, params)

    def _decode_regular(
        self,
        reader: BitReader,
        state: _CoderState,
        ra: int,
        rb: int,
        rc: int,
        rd: int,
    ) -> int:
        params = state.params
        q1 = _quantize_gradient(rd - rb, params)
        q2 = _quantize_gradient(rb - rc, params)
        q3 = _quantize_gradient(rc - ra, params)
        context_index, sign = _context_index(q1, q2, q3)
        context = state.contexts[context_index]

        predicted = _med_predict(ra, rb, rc)
        predicted += sign * context.c
        predicted = min(max(predicted, 0), params.maxval)

        k = _golomb_k(context)
        mapped = limited_golomb_decode(reader, k, params.limit, params.qbpp)
        error = self._unmap_error(mapped, k, context)
        self._update_regular(context, error, params)

        if sign < 0:
            error = -error
        value = (predicted + error) % params.range
        return value

    @staticmethod
    def _map_error(error: int, k: int, context: _ContextState) -> int:
        """Rice mapping of the signed error (T.87 A.5.2, NEAR = 0)."""
        if k == 0 and 2 * context.b <= -context.n:
            if error >= 0:
                return 2 * error + 1
            return -2 * (error + 1)
        if error >= 0:
            return 2 * error
        return -2 * error - 1

    @staticmethod
    def _unmap_error(mapped: int, k: int, context: _ContextState) -> int:
        """Inverse of :meth:`_map_error`."""
        if k == 0 and 2 * context.b <= -context.n:
            if mapped % 2 == 1:
                return (mapped - 1) // 2
            return -(mapped // 2) - 1
        if mapped % 2 == 0:
            return mapped // 2
        return -(mapped + 1) // 2

    @staticmethod
    def _update_regular(context: _ContextState, error: int, params: JpegLsParameters) -> None:
        """Context update and bias computation (T.87 A.6)."""
        context.b += error
        context.a += abs(error)
        if context.n == params.reset:
            context.a >>= 1
            context.b = context.b >> 1 if context.b >= 0 else -((-context.b) >> 1)
            context.n >>= 1
        context.n += 1
        # Bias computation.
        if context.b <= -context.n:
            context.c = max(context.c - 1, params.min_c)
            context.b += context.n
            if context.b <= -context.n:
                context.b = -context.n + 1
        elif context.b > 0:
            context.c = min(context.c + 1, params.max_c)
            context.b -= context.n
            if context.b > 0:
                context.b = 0

    # ------------------------------------------------------------------ #
    # run mode
    # ------------------------------------------------------------------ #

    def _encode_run(
        self,
        writer: BitWriter,
        state: _CoderState,
        row: List[int],
        current: List[int],
        row_above: Optional[List[int]],
        x: int,
        width: int,
        ra: int,
        rb: int,
    ) -> int:
        """Encode a run starting at column ``x``; return the next column."""
        run_value = ra
        run_length = 0
        position = x
        while position < width and row[position] == run_value:
            run_length += 1
            position += 1
        hit_end_of_line = position == width

        remaining = run_length
        while remaining >= (1 << _J[state.run_index]):
            writer.write_bit(1)
            remaining -= 1 << _J[state.run_index]
            if state.run_index < 31:
                state.run_index += 1

        if hit_end_of_line:
            if remaining > 0:
                writer.write_bit(1)
        else:
            writer.write_bit(0)
            if _J[state.run_index]:
                writer.write_bits(remaining, _J[state.run_index])
            if state.run_index > 0:
                state.run_index -= 1

        for _ in range(run_length):
            current.append(run_value)

        if hit_end_of_line:
            return position

        # Run interrupted by a different sample: code it specially.
        value = row[position]
        ra_i, rb_i, _rc, _rd = _neighbours(row_above, current, position, width, 0)
        self._encode_run_interruption(writer, state, value, ra_i, rb_i)
        current.append(value)
        return position + 1

    def _decode_run(
        self,
        reader: BitReader,
        state: _CoderState,
        current: List[int],
        row_above: Optional[List[int]],
        x: int,
        width: int,
        ra: int,
        rb: int,
    ) -> int:
        """Decode a run starting at column ``x``; return the next column."""
        run_value = ra
        position = x
        while True:
            remaining_in_line = width - position
            if remaining_in_line == 0:
                return position
            bit = reader.read_bit()
            if bit == 1:
                segment = 1 << _J[state.run_index]
                if segment < remaining_in_line:
                    for _ in range(segment):
                        current.append(run_value)
                    position += segment
                    if state.run_index < 31:
                        state.run_index += 1
                    continue
                # The run reaches the end of the line (possibly exactly).
                for _ in range(remaining_in_line):
                    current.append(run_value)
                position += remaining_in_line
                if segment == remaining_in_line and state.run_index < 31:
                    state.run_index += 1
                return position
            # bit == 0: partial segment followed by an interruption sample.
            length = reader.read_bits(_J[state.run_index]) if _J[state.run_index] else 0
            for _ in range(length):
                current.append(run_value)
            position += length
            if state.run_index > 0:
                state.run_index -= 1
            if position >= width:
                raise CodecMismatchError("run overruns the end of the line")
            ra_i, rb_i, _rc, _rd = _neighbours(row_above, current, position, width, 0)
            value = self._decode_run_interruption(reader, state, ra_i, rb_i)
            current.append(value)
            return position + 1

    def _encode_run_interruption(
        self, writer: BitWriter, state: _CoderState, value: int, ra: int, rb: int
    ) -> None:
        params = state.params
        ri_type = 1 if ra == rb else 0
        predicted = ra if ri_type == 1 else rb
        error = value - predicted
        sign = 1
        if ri_type == 0 and ra > rb:
            error = -error
            sign = -1
        error %= params.range
        if error >= params.range // 2:
            error -= params.range

        run_ctx = state.run_contexts[ri_type]
        temp = run_ctx.a + (run_ctx.n >> 1) if ri_type == 1 else run_ctx.a
        k = 0
        while (run_ctx.n << k) < temp and k < 24:
            k += 1

        map_bit = self._run_interruption_map(error, k, run_ctx)
        mapped = 2 * abs(error) - ri_type - map_bit
        if mapped < 0:
            raise CodecMismatchError("negative mapped run-interruption error")
        limit = params.limit - _J[state.run_index] - 1
        limited_golomb_encode(writer, mapped, k, limit, params.qbpp)
        self._update_run_interruption(run_ctx, error, mapped, ri_type, params)

    def _decode_run_interruption(
        self, reader: BitReader, state: _CoderState, ra: int, rb: int
    ) -> int:
        params = state.params
        ri_type = 1 if ra == rb else 0
        predicted = ra if ri_type == 1 else rb

        run_ctx = state.run_contexts[ri_type]
        temp = run_ctx.a + (run_ctx.n >> 1) if ri_type == 1 else run_ctx.a
        k = 0
        while (run_ctx.n << k) < temp and k < 24:
            k += 1

        limit = params.limit - _J[state.run_index] - 1
        mapped = limited_golomb_decode(reader, k, limit, params.qbpp)

        total = mapped + ri_type  # == 2 * |error| - map_bit
        map_bit = total & 1
        magnitude = (total + map_bit) >> 1
        if magnitude == 0:
            error = 0
        elif map_bit == 1:
            error = magnitude if (k == 0 and 2 * run_ctx.nn < run_ctx.n) else -magnitude
        else:
            error = -magnitude if (k == 0 and 2 * run_ctx.nn < run_ctx.n) else magnitude

        self._update_run_interruption(run_ctx, error, mapped, ri_type, params)

        if ri_type == 0 and ra > rb:
            error = -error
        value = (predicted + error) % params.range
        return value

    @staticmethod
    def _run_interruption_map(error: int, k: int, run_ctx: _RunState) -> int:
        """The ``map`` bit of T.87 A.7.2 (decides the sign interleaving)."""
        if k == 0 and error > 0 and 2 * run_ctx.nn < run_ctx.n:
            return 1
        if error < 0 and 2 * run_ctx.nn >= run_ctx.n and k == 0:
            return 1
        if error < 0 and k != 0:
            return 1
        return 0

    @staticmethod
    def _update_run_interruption(
        run_ctx: _RunState, error: int, mapped: int, ri_type: int, params: JpegLsParameters
    ) -> None:
        if error < 0:
            run_ctx.nn += 1
        run_ctx.a += (mapped + 1 - ri_type) >> 1
        if run_ctx.n == params.reset:
            run_ctx.a >>= 1
            run_ctx.n >>= 1
            run_ctx.nn >>= 1
        run_ctx.n += 1
