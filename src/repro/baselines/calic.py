"""CALIC baseline codec (functional reimplementation).

CALIC (Context-based, Adaptive, Lossless Image Codec; Wu & Memon 1997) is
the state-of-the-art reference against which the paper positions its
hardware-amenable simplification.  This module reimplements the
continuous-tone mode closely enough for the Table 1 comparison:

* the full **GAP** predictor (the same gradient-adjusted prediction the
  proposed codec simplifies);
* an **8-bit texture pattern** — the six causal neighbours *plus* the two
  second-order terms ``2N − NN`` and ``2W − WW`` compared against the
  prediction — combined with a quantised error-energy level into a large set
  of compound contexts used for bias cancellation (CALIC quotes 576
  contexts; we keep the full 8-bit pattern × 4 energy levels = 1024, a
  functional superset with the same behaviour and slightly more memory);
* **error feedback** with exact division (CALIC is a software algorithm, so
  no hardware approximations are applied);
* mapped prediction errors coded with an **adaptive multi-symbol arithmetic
  coder** conditioned on 8 quantised error-energy classes.

Differences from the original (documented here and in DESIGN.md): the binary
(two-value) mode for synthetic/graphic regions and the histogram tail
truncation ("sign flipping") are omitted; both affect mainly compound
documents, not the continuous-tone corpus of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.bitstream import CodecId, pack_stream, unpack_stream
from repro.core.interface import LosslessImageCodec
from repro.core.mapping import map_error, unmap_error
from repro.core.neighborhood import Neighborhood, ThreeRowWindow
from repro.entropy.arithmetic import DEFAULT_PRECISION, ArithmeticDecoder, ArithmeticEncoder
from repro.entropy.models import AdaptiveModel
from repro.exceptions import CodecMismatchError, ConfigError
from repro.imaging.image import GrayImage
from repro.utils.bitio import BitReader, BitWriter

__all__ = ["CalicCodec", "CalicParameters"]


@dataclass(frozen=True)
class CalicParameters:
    """Tunables of the CALIC reimplementation."""

    bit_depth: int = 8
    #: GAP decision thresholds.
    sharp_threshold: int = 80
    strong_threshold: int = 32
    weak_threshold: int = 8
    #: Error-energy quantiser for the 8 coding contexts.
    coding_thresholds: tuple = (5, 15, 25, 42, 60, 85, 140)
    #: Error-energy quantiser for the compound (bias) contexts.
    bias_energy_thresholds: tuple = (15, 42, 85)
    #: Adaptation speed of the arithmetic-coder models.
    model_increment: int = 24
    #: Rescale bound of the arithmetic-coder models.
    model_max_total: int = 1 << 16

    @property
    def maxval(self) -> int:
        return (1 << self.bit_depth) - 1

    @property
    def alphabet_size(self) -> int:
        return 1 << self.bit_depth

    @property
    def texture_patterns(self) -> int:
        return 256  # 8 comparison bits

    @property
    def bias_contexts(self) -> int:
        return self.texture_patterns * (len(self.bias_energy_thresholds) + 1)

    @property
    def coding_contexts(self) -> int:
        return len(self.coding_thresholds) + 1


class _BiasState:
    """Per-compound-context error statistics with exact division."""

    def __init__(self, contexts: int) -> None:
        self.sums = [0] * contexts
        self.counts = [0] * contexts

    def mean(self, context: int) -> int:
        count = self.counts[context]
        if count == 0:
            return 0
        total = self.sums[context]
        magnitude = abs(total) // count
        return -magnitude if total < 0 else magnitude

    def update(self, context: int, error: int) -> None:
        # CALIC ages its statistics by halving at a moderate count; 128 keeps
        # the estimate responsive without the hardware's 5-bit constraint.
        if self.counts[context] >= 128:
            self.counts[context] >>= 1
            total = self.sums[context]
            self.sums[context] = -((-total) >> 1) if total < 0 else total >> 1
        self.counts[context] += 1
        self.sums[context] += error


class CalicCodec(LosslessImageCodec):
    """Functional reimplementation of CALIC's continuous-tone mode."""

    name = "calic"

    def __init__(self, parameters: Optional[CalicParameters] = None) -> None:
        self.parameters = parameters if parameters is not None else CalicParameters()

    # ------------------------------------------------------------------ #
    # modelling helpers (identical on both sides)
    # ------------------------------------------------------------------ #

    def _predict(self, nb: Neighborhood) -> tuple:
        """Full GAP prediction; returns (prediction, dh, dv)."""
        params = self.parameters
        w, ww, n, nn, ne, nw, nne = nb.as_tuple()
        dh = abs(w - ww) + abs(n - nw) + abs(n - ne)
        dv = abs(w - nw) + abs(n - nn) + abs(ne - nne)
        if dv - dh > params.sharp_threshold:
            predicted = w
        elif dh - dv > params.sharp_threshold:
            predicted = n
        else:
            predicted = ((w + n) >> 1) + ((ne - nw) >> 2)
            if dv - dh > params.strong_threshold:
                predicted = (predicted + w) >> 1
            elif dv - dh > params.weak_threshold:
                predicted = (3 * predicted + w) >> 2
            elif dh - dv > params.strong_threshold:
                predicted = (predicted + n) >> 1
            elif dh - dv > params.weak_threshold:
                predicted = (3 * predicted + n) >> 2
        predicted = min(max(predicted, 0), params.maxval)
        return predicted, dh, dv

    @staticmethod
    def _texture_pattern(nb: Neighborhood, predicted: int) -> int:
        """CALIC's 8-event texture pattern (6 neighbours + 2 derived terms)."""
        events = (
            nb.n,
            nb.w,
            nb.nw,
            nb.ne,
            nb.nn,
            nb.ww,
            2 * nb.n - nb.nn,
            2 * nb.w - nb.ww,
        )
        pattern = 0
        for bit, event in enumerate(events):
            if event < predicted:
                pattern |= 1 << bit
        return pattern

    def _quantize(self, value: int, thresholds: tuple) -> int:
        for level, threshold in enumerate(thresholds):
            if value <= threshold:
                return level
        return len(thresholds)

    def _bias_context(self, pattern: int, energy: int) -> int:
        return pattern * (len(self.parameters.bias_energy_thresholds) + 1) + energy

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def encode(self, image: GrayImage) -> bytes:
        params = self.parameters
        if image.bit_depth != params.bit_depth:
            raise ConfigError(
                "CALIC codec configured for %d-bit samples, image has %d"
                % (params.bit_depth, image.bit_depth)
            )
        writer = BitWriter()
        coder = ArithmeticEncoder(writer)
        models = [
            AdaptiveModel(
                params.alphabet_size,
                max_total=params.model_max_total,
                increment=params.model_increment,
            )
            for _ in range(params.coding_contexts)
        ]
        bias = _BiasState(params.bias_contexts)
        window = ThreeRowWindow(image.width, default=(params.maxval + 1) // 2)

        previous_error = 0
        for y in range(image.height):
            row = image.row(y)
            for x in range(image.width):
                value = row[x]
                nb = window.neighborhood(x)
                predicted, dh, dv = self._predict(nb)
                pattern = self._texture_pattern(nb, predicted)
                energy = dh + dv + 2 * abs(previous_error)
                bias_ctx = self._bias_context(
                    pattern, self._quantize(energy, params.bias_energy_thresholds)
                )
                adjusted = min(max(predicted + bias.mean(bias_ctx), 0), params.maxval)
                coding_ctx = self._quantize(energy, params.coding_thresholds)

                symbol, wrapped = map_error(value, adjusted, params.bit_depth)
                model = models[coding_ctx]
                low, high, total = model.interval(symbol)
                coder.encode(low, high, total)
                model.update(symbol)

                bias.update(bias_ctx, wrapped)
                previous_error = wrapped
                window.push(value)
            window.end_row()
            previous_error = 0

        coder.finish()
        payload = writer.getvalue()
        return pack_stream(
            CodecId.CALIC,
            image.width,
            image.height,
            image.bit_depth,
            payload,
            parameter=params.model_increment,
        )

    def decode(self, data: bytes) -> GrayImage:
        header, payload = unpack_stream(data)
        if header.codec != CodecId.CALIC:
            raise CodecMismatchError(
                "stream was produced by %s, not CALIC" % header.codec.name
            )
        params = self.parameters
        if header.bit_depth != params.bit_depth:
            raise CodecMismatchError(
                "stream bit depth %d does not match codec configuration %d"
                % (header.bit_depth, params.bit_depth)
            )
        # Bound phantom reads so a corrupt length field raises instead of
        # decoding forever from zero bits past the end of the payload.
        reader = BitReader(payload, max_phantom_bits=4 * DEFAULT_PRECISION)
        coder = ArithmeticDecoder(reader)
        models = [
            AdaptiveModel(
                params.alphabet_size,
                max_total=params.model_max_total,
                increment=params.model_increment,
            )
            for _ in range(params.coding_contexts)
        ]
        bias = _BiasState(params.bias_contexts)
        window = ThreeRowWindow(header.width, default=(params.maxval + 1) // 2)

        pixels: List[int] = []
        previous_error = 0
        for _y in range(header.height):
            for x in range(header.width):
                nb = window.neighborhood(x)
                predicted, dh, dv = self._predict(nb)
                pattern = self._texture_pattern(nb, predicted)
                energy = dh + dv + 2 * abs(previous_error)
                bias_ctx = self._bias_context(
                    pattern, self._quantize(energy, params.bias_energy_thresholds)
                )
                adjusted = min(max(predicted + bias.mean(bias_ctx), 0), params.maxval)
                coding_ctx = self._quantize(energy, params.coding_thresholds)

                model = models[coding_ctx]
                target = coder.decode_target(model.total)
                symbol = model.symbol_from_target(target)
                low, high, total = model.interval(symbol)
                coder.consume(low, high, total)
                model.update(symbol)

                value, wrapped = unmap_error(symbol, adjusted, params.bit_depth)
                bias.update(bias_ctx, wrapped)
                previous_error = wrapped
                window.push(value)
                pixels.append(value)
            window.end_row()
            previous_error = 0

        return GrayImage(header.width, header.height, pixels, header.bit_depth)
