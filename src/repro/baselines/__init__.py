"""Baseline codecs the paper compares against in Table 1.

* :mod:`repro.baselines.jpegls` — JPEG-LS / LOCO-I (Weinberger et al.),
  the low-complexity standard with MED prediction, 365 contexts, bias
  correction, limited-length Golomb coding and run mode.
* :mod:`repro.baselines.slp` — Switched Linear Prediction with an adaptive
  Golomb-Rice coder (the "SLP(M0)" column of Table 1).
* :mod:`repro.baselines.calic` — a functional reimplementation of CALIC's
  continuous-tone mode (Wu & Memon), the upper bound the paper approaches.

All three implement :class:`repro.core.interface.LosslessImageCodec`, so the
Table 1 harness treats them exactly like the proposed codec.
"""

from repro.baselines.calic import CalicCodec
from repro.baselines.jpegls import JpegLsCodec
from repro.baselines.slp import SlpCodec

__all__ = ["JpegLsCodec", "SlpCodec", "CalicCodec"]


def all_baselines():
    """Return one instance of every baseline codec (Table 1 order)."""
    return [JpegLsCodec(), SlpCodec(), CalicCodec()]
