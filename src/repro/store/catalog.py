"""Metadata catalog of the image store — the answer to "what's in here".

:class:`~repro.store.store.ImageStore` keys blobs by content hash, which
makes storage self-deduplicating but opaque: a hash tells an operator
nothing about what it names, when it arrived or whether anyone still
wants it.  The catalog is the queryable side-table fixing that.  One
:class:`CatalogEntry` is recorded per stored stream at ``put`` time —
geometry (width, height, planes, bit depth), coding parameters (engine,
container version, stripes, inter-plane predictor), encoded and decoded
byte sizes, ingest timestamp and free-form user tags — and is the unit
of three lifecycle features:

* **queries** — :meth:`Catalog.query` filters entries (by tag, plane
  count, engine, container version, byte-size and age bounds) and
  paginates with ``limit``/``offset``; paging past the end returns an
  empty page, never an error.
* **soft delete** — :meth:`Catalog.mark_deleted` stamps a *tombstone*
  (``deleted_at`` + an absolute ``purge_after`` horizon derived from the
  TTL) instead of dropping the row.  Tombstoned entries stay readable
  through ``include_deleted=True`` until the GC sweep
  (:mod:`repro.store.gc`) purges them past their horizon, and
  :meth:`Catalog.restore` (or re-``put`` of the same bytes) clears the
  tombstone.
* **recompaction bookkeeping** — :meth:`Catalog.update` records the new
  encoded size, coding parameters and ``compacted_at`` stamp after
  :mod:`repro.store.compactor` swaps a re-encoded blob in.

Three implementations share the exact same semantics (the filter and
pagination logic is one code path over :meth:`Catalog.entries`):

``SQLiteCatalog``
    A ``catalog`` table in the *same* SQLite file as
    :class:`~repro.store.backends.SQLiteBackend` — catalog and blobs
    travel as one file.  Its own connection + lock, safe to drive from
    the serve tier's worker threads.

``JournalCatalog``
    An append-only JSONL journal (``catalog.jsonl``) next to a
    :class:`~repro.store.backends.FilesystemBackend` root.  Every
    mutation appends one event line and the state is replayed at open;
    the journal is rewritten as a snapshot when it grows past
    ``rewrite_factor`` lines per live entry, so a long-lived store's
    journal stays proportional to its catalog.

``MemoryCatalog``
    Dict-backed, non-persistent — the fallback for custom/wrapped
    backends and the base class of the journal implementation.

Thread-safety invariant: every public method of every implementation is
safe to call from multiple threads; mutations are serialised by an
internal lock and :meth:`Catalog.entries` returns an immutable snapshot.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import BlobNotFoundError, StoreError

__all__ = [
    "DEFAULT_TTL_SECONDS",
    "CatalogEntry",
    "CatalogFilter",
    "Catalog",
    "MemoryCatalog",
    "JournalCatalog",
    "SQLiteCatalog",
    "open_catalog",
]

#: Default tombstone time-to-live: soft-deleted entries become eligible
#: for the GC sweep this many seconds after deletion (7 days).
DEFAULT_TTL_SECONDS = 7 * 24 * 3600.0


@dataclass(frozen=True)
class CatalogEntry:
    """Everything the catalog knows about one stored stream.

    Immutable; lifecycle transitions produce new instances via
    :func:`dataclasses.replace` so a snapshot handed to one thread can
    never change under it.
    """

    key: str
    width: int
    height: int
    planes: int
    bit_depth: int
    version: int
    stripes: int
    plane_delta: bool
    engine: str
    encoded_bytes: int
    decoded_bytes: int
    created_at: float
    tags: Tuple[Tuple[str, str], ...] = ()
    #: Tombstone stamp; ``None`` while the entry is live.
    deleted_at: Optional[float] = None
    #: Absolute time the tombstone expires (``deleted_at`` + TTL).
    purge_after: Optional[float] = None
    #: Stamp of the most recent recompaction swap, if any.
    compacted_at: Optional[float] = None

    @property
    def deleted(self) -> bool:
        """Whether the entry carries a tombstone."""
        return self.deleted_at is not None

    def expired(self, now: float) -> bool:
        """Whether the tombstone's TTL has lapsed (always False when live)."""
        return self.purge_after is not None and now >= self.purge_after

    @property
    def tag_dict(self) -> Dict[str, str]:
        return dict(self.tags)

    @property
    def compression_ratio(self) -> float:
        if self.encoded_bytes <= 0:
            return 0.0
        return self.decoded_bytes / self.encoded_bytes

    def as_json(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "width": self.width,
            "height": self.height,
            "planes": self.planes,
            "bit_depth": self.bit_depth,
            "version": self.version,
            "stripes": self.stripes,
            "plane_delta": self.plane_delta,
            "engine": self.engine,
            "encoded_bytes": self.encoded_bytes,
            "decoded_bytes": self.decoded_bytes,
            "created_at": self.created_at,
            "tags": self.tag_dict,
            "deleted_at": self.deleted_at,
            "purge_after": self.purge_after,
            "compacted_at": self.compacted_at,
        }

    @classmethod
    def from_json(cls, document: Dict[str, object]) -> "CatalogEntry":
        tags = document.get("tags") or {}
        if not isinstance(tags, dict):
            raise StoreError("catalog entry tags must be an object, got %r" % (tags,))
        return cls(
            key=str(document["key"]),
            width=int(document["width"]),  # type: ignore[arg-type]
            height=int(document["height"]),  # type: ignore[arg-type]
            planes=int(document["planes"]),  # type: ignore[arg-type]
            bit_depth=int(document["bit_depth"]),  # type: ignore[arg-type]
            version=int(document["version"]),  # type: ignore[arg-type]
            stripes=int(document["stripes"]),  # type: ignore[arg-type]
            plane_delta=bool(document["plane_delta"]),
            engine=str(document["engine"]),
            encoded_bytes=int(document["encoded_bytes"]),  # type: ignore[arg-type]
            decoded_bytes=int(document["decoded_bytes"]),  # type: ignore[arg-type]
            created_at=float(document["created_at"]),  # type: ignore[arg-type]
            tags=tuple(sorted((str(k), str(v)) for k, v in tags.items())),
            deleted_at=_opt_float(document.get("deleted_at")),
            purge_after=_opt_float(document.get("purge_after")),
            compacted_at=_opt_float(document.get("compacted_at")),
        )


def _opt_float(value: object) -> Optional[float]:
    return None if value is None else float(value)  # type: ignore[arg-type]


@dataclass(frozen=True)
class CatalogFilter:
    """Declarative filter of catalog queries.

    Every field is optional; unset fields do not constrain the result.
    Tombstoned entries are hidden unless ``include_deleted`` is set;
    ``deleted_only`` restricts to tombstoned entries (and implies
    including them) — the shape the GC sweep queries with.
    """

    planes: Optional[int] = None
    engine: Optional[str] = None
    version: Optional[int] = None
    bit_depth: Optional[int] = None
    #: Tag constraints: a ``(key, None)`` pair requires the tag to exist,
    #: a ``(key, value)`` pair requires an exact value match.
    tags: Tuple[Tuple[str, Optional[str]], ...] = ()
    min_encoded_bytes: Optional[int] = None
    max_encoded_bytes: Optional[int] = None
    created_before: Optional[float] = None
    created_after: Optional[float] = None
    include_deleted: bool = False
    deleted_only: bool = False

    def matches(self, entry: CatalogEntry) -> bool:
        if entry.deleted:
            if not (self.include_deleted or self.deleted_only):
                return False
        elif self.deleted_only:
            return False
        if self.planes is not None and entry.planes != self.planes:
            return False
        if self.engine is not None and entry.engine != self.engine:
            return False
        if self.version is not None and entry.version != self.version:
            return False
        if self.bit_depth is not None and entry.bit_depth != self.bit_depth:
            return False
        if self.min_encoded_bytes is not None and entry.encoded_bytes < self.min_encoded_bytes:
            return False
        if self.max_encoded_bytes is not None and entry.encoded_bytes > self.max_encoded_bytes:
            return False
        if self.created_before is not None and entry.created_at >= self.created_before:
            return False
        if self.created_after is not None and entry.created_at < self.created_after:
            return False
        if self.tags:
            tag_dict = entry.tag_dict
            for name, value in self.tags:
                if name not in tag_dict:
                    return False
                if value is not None and tag_dict[name] != value:
                    return False
        return True

    @classmethod
    def parse_tag(cls, text: str) -> Tuple[str, Optional[str]]:
        """Parse a ``KEY`` or ``KEY=VALUE`` tag constraint."""
        name, separator, value = text.partition("=")
        if not name:
            raise StoreError("tag filter must be KEY or KEY=VALUE, got %r" % text)
        return name, value if separator else None


class Catalog:
    """Base class: shared query/lifecycle semantics over a keyed entry map.

    Subclasses provide persistence by overriding the ``_persist_*``
    hooks; all state transitions, validation and the single filter +
    pagination code path live here so the three implementations cannot
    drift apart.  Every public method is thread-safe.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, CatalogEntry] = {}

    # -- persistence hooks (called with the lock held) ------------------- #

    def _persist_put(self, entry: CatalogEntry) -> None:
        """Record an upsert (put, tombstone, restore, compaction update)."""

    def _persist_purge(self, key: str) -> None:
        """Record a hard removal."""

    # -- lifecycle ------------------------------------------------------- #

    def record_put(self, entry: CatalogEntry) -> CatalogEntry:
        """Upsert the entry for a stored stream.

        Re-putting a tombstoned key revives it: content addressing means
        the same bytes always deserve the same live entry, so an ingest
        wins over a pending deletion.  Tags of an existing live entry are
        merged (new values win) rather than dropped.
        """
        with self._lock:
            prior = self._entries.get(entry.key)
            if prior is not None:
                merged = dict(prior.tags)
                merged.update(entry.tag_dict)
                entry = replace(
                    entry,
                    created_at=prior.created_at,
                    tags=tuple(sorted(merged.items())),
                    compacted_at=prior.compacted_at,
                    deleted_at=None,
                    purge_after=None,
                )
            self._entries[entry.key] = entry
            self._persist_put(entry)
            return entry

    def get(self, key: str) -> Optional[CatalogEntry]:
        with self._lock:
            return self._entries.get(key)

    def mark_deleted(
        self, key: str, deleted_at: float, ttl_seconds: float = DEFAULT_TTL_SECONDS
    ) -> CatalogEntry:
        """Stamp a tombstone; the entry stays until the TTL lapses + GC runs."""
        if ttl_seconds < 0:
            raise StoreError("tombstone TTL must be >= 0 seconds, got %r" % ttl_seconds)
        with self._lock:
            entry = self._require(key)
            entry = replace(
                entry, deleted_at=deleted_at, purge_after=deleted_at + ttl_seconds
            )
            self._entries[key] = entry
            self._persist_put(entry)
            return entry

    def restore(self, key: str) -> CatalogEntry:
        """Clear a tombstone, making the entry fully live again."""
        with self._lock:
            entry = self._require(key)
            entry = replace(entry, deleted_at=None, purge_after=None)
            self._entries[key] = entry
            self._persist_put(entry)
            return entry

    def update(self, key: str, **fields: object) -> CatalogEntry:
        """Replace entry fields (the recompaction bookkeeping path)."""
        with self._lock:
            entry = replace(self._require(key), **fields)  # type: ignore[arg-type]
            self._entries[key] = entry
            self._persist_put(entry)
            return entry

    def purge(self, key: str) -> None:
        """Hard-remove an entry (the GC endpoint; unknown keys are a no-op)."""
        with self._lock:
            if self._entries.pop(key, None) is not None:
                self._persist_purge(key)

    def _require(self, key: str) -> CatalogEntry:
        entry = self._entries.get(key)
        if entry is None:
            raise BlobNotFoundError("no catalog entry for key %r" % key)
        return entry

    # -- queries --------------------------------------------------------- #

    def entries(self) -> List[CatalogEntry]:
        """Snapshot of every entry (tombstones included), newest first."""
        with self._lock:
            listed = list(self._entries.values())
        listed.sort(key=lambda entry: (-entry.created_at, entry.key))
        return listed

    def query(
        self,
        filter: Optional[CatalogFilter] = None,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> Tuple[List[CatalogEntry], int]:
        """Filtered, paginated listing.

        Returns ``(page, total)`` where ``total`` counts every match
        before pagination — what a UI needs to render page controls.
        Offsets past the end yield an empty page, never an error.
        """
        if limit is not None and limit < 0:
            raise StoreError("catalog query limit must be >= 0, got %d" % limit)
        if offset < 0:
            raise StoreError("catalog query offset must be >= 0, got %d" % offset)
        active = filter if filter is not None else CatalogFilter()
        matched = [entry for entry in self.entries() if active.matches(entry)]
        total = len(matched)
        page = matched[offset:] if limit is None else matched[offset : offset + limit]
        return page, total

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Entry counts and byte totals for ``stats`` surfaces."""
        with self._lock:
            listed = list(self._entries.values())
        live = [entry for entry in listed if not entry.deleted]
        dead = [entry for entry in listed if entry.deleted]
        return {
            "entries": len(listed),
            "live": len(live),
            "deleted": len(dead),
            "live_bytes": sum(entry.encoded_bytes for entry in live),
            "deleted_bytes": sum(entry.encoded_bytes for entry in dead),
        }

    def close(self) -> None:
        """Release persistence resources (default: nothing to release)."""


class MemoryCatalog(Catalog):
    """Non-persistent catalog — custom/wrapped backends, tests, scratch."""


class JournalCatalog(Catalog):
    """Append-only JSONL journal next to a filesystem backend root.

    Every mutation appends one ``{"op": ..., ...}`` line (flushed +
    fsynced so a crash loses at most the in-flight line); opening the
    catalog replays the journal.  When the journal grows past
    ``rewrite_factor`` lines per live entry (plus a fixed floor) it is
    rewritten in place as a snapshot through the same atomic
    write-then-rename pattern the blob backend uses.
    """

    _REWRITE_FLOOR = 256

    def __init__(self, path: Union[str, Path], rewrite_factor: int = 4) -> None:
        super().__init__()
        if rewrite_factor < 1:
            raise StoreError("journal rewrite factor must be >= 1, got %d" % rewrite_factor)
        self.path = Path(path)
        self.rewrite_factor = rewrite_factor
        self._journal_lines = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._replay()

    def _replay(self) -> None:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                    op = event["op"]
                    if op == "put":
                        entry = CatalogEntry.from_json(event["entry"])
                        self._entries[entry.key] = entry
                    elif op == "purge":
                        self._entries.pop(str(event["key"]), None)
                    else:
                        raise StoreError("unknown journal op %r" % (op,))
                except (KeyError, TypeError, ValueError, StoreError) as error:
                    raise StoreError(
                        "corrupt catalog journal %s at line %d: %s"
                        % (self.path, line_number, error)
                    ) from None
                self._journal_lines += 1

    def _append(self, event: Dict[str, object]) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._journal_lines += 1
        threshold = self._REWRITE_FLOOR + self.rewrite_factor * max(len(self._entries), 1)
        if self._journal_lines > threshold:
            self._rewrite()

    def _rewrite(self) -> None:
        """Snapshot the live state over the journal (atomic rename)."""
        tmp = self.path.with_suffix(".jsonl.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for entry in self._entries.values():
                handle.write(
                    json.dumps({"op": "put", "entry": entry.as_json()}, sort_keys=True)
                    + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._journal_lines = len(self._entries)

    def _persist_put(self, entry: CatalogEntry) -> None:
        self._append({"op": "put", "entry": entry.as_json()})

    def _persist_purge(self, key: str) -> None:
        self._append({"op": "purge", "key": key})


class SQLiteCatalog(Catalog):
    """Catalog table living in the blob backend's own SQLite file.

    The whole table is loaded into the in-memory map at open (a catalog
    row is ~200 bytes; 100k entries are nothing) and every mutation is
    written through synchronously, so queries never touch the database
    and the shared-dict semantics match the other implementations
    exactly.  The connection is private to the catalog — the blob
    backend's connection and lock are not involved.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        super().__init__()
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._connection = sqlite3.connect(str(self.path), check_same_thread=False)
            with self._lock:
                self._connection.execute(
                    "CREATE TABLE IF NOT EXISTS catalog ("
                    "key TEXT PRIMARY KEY, entry TEXT NOT NULL)"
                )
                self._connection.commit()
                rows = self._connection.execute("SELECT entry FROM catalog").fetchall()
        except sqlite3.Error as error:
            raise StoreError(
                "cannot open catalog table in %s: %s" % (self.path, error)
            ) from None
        for (document,) in rows:
            try:
                entry = CatalogEntry.from_json(json.loads(document))
            except (TypeError, ValueError, KeyError) as error:
                raise StoreError(
                    "corrupt catalog row in %s: %s" % (self.path, error)
                ) from None
            self._entries[entry.key] = entry

    def _persist_put(self, entry: CatalogEntry) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO catalog (key, entry) VALUES (?, ?)",
            (entry.key, json.dumps(entry.as_json(), sort_keys=True)),
        )
        self._connection.commit()

    def _persist_purge(self, key: str) -> None:
        self._connection.execute("DELETE FROM catalog WHERE key = ?", (key,))
        self._connection.commit()

    def close(self) -> None:
        with self._lock:
            self._connection.close()


def open_catalog(backend: object) -> Catalog:
    """The catalog a blob backend implies.

    Filesystem backends get a JSONL journal under their root, SQLite
    backends a table in the same database file; anything else (custom
    backends, chaos wrappers around an already-open store) falls back to
    a non-persistent :class:`MemoryCatalog`.
    """
    from repro.store.backends import FilesystemBackend, SQLiteBackend

    if isinstance(backend, FilesystemBackend):
        return JournalCatalog(backend.root / "catalog.jsonl")
    if isinstance(backend, SQLiteBackend):
        return SQLiteCatalog(backend.path)
    return MemoryCatalog()
