"""Content-addressed image store with cached random access.

:class:`ImageStore` is the serving layer over the version-3 container's
random-access index: compressed streams live in a
:class:`~repro.store.backends.BlobBackend` keyed by the SHA-256 of their
bytes, and plane/region queries are answered by

1. parsing the container's header + tables from a small range read
   (memoized per key — the index of a hot blob is fetched once),
2. mapping the query onto (plane, stripe) cells through the same
   :func:`repro.core.cellgrid.select_cells` validation every in-memory
   decoder uses,
3. serving each cell from the LRU :class:`~repro.store.cache.CellCache`
   when possible, and otherwise range-reading exactly that cell's bytes,
   CRC-checking them against the index and entropy-decoding them.

A whole-blob fetch only ever happens for :meth:`get` (a full decode) — the
random-access paths stay proportional to the query, which is what makes
region-heavy workloads (cumulative-plot scans over stored signal planes,
cohort-style batched region pulls) cheap.  Batched requests
(:meth:`get_regions`) dedupe the cell set across regions before touching
the backend, so overlapping regions cost one decode per distinct cell.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.bitstream import (
    CodecId,
    StreamHeader,
    TABLE_PROBE_LENGTH,
    component_spans,
    parse_stream_header,
    parse_stream_prefix,
    table_prefix_length,
)
from repro.core.cellgrid import (
    DecodedSelection,
    assemble_selection,
    decode_one_cell,
    decode_selection,
    encode_grid,
    select_cells,
)
from repro.core.config import CodecConfig
from repro.core.decoder import resolve_stream_config
from repro.exceptions import StoreError
from repro.imaging.image import GrayImage
from repro.imaging.planar import PlanarImage
from repro.store.backends import BlobBackend, open_backend
from repro.store.cache import DEFAULT_CACHE_BYTES, CacheStats, CellCache

__all__ = ["ImageStore"]

_CellKey = Tuple[str, int, int]


class ImageStore:
    """Keyed store of compressed image streams with cached random access.

    Parameters
    ----------
    backend:
        Blob storage (see :mod:`repro.store.backends`).
    cache_bytes:
        Byte budget of the decoded-cell LRU cache; ``0`` disables caching.
    cache_admission:
        Cell-cache admission policy: ``"always"`` (default) caches every
        decoded cell, ``"second-touch"`` only cells requested more than
        once — the serving tier's guard against one-touch scans evicting
        the hot working set.
    config:
        Optional codec configuration forced on every decode; by default
        each stream's configuration is reconstructed from its own header,
        so one store can hold streams of mixed bit depths and presets.
    engine:
        Registered coding engine used for decoding (and for :meth:`put`
        encodes); any engine name accepted by
        :func:`repro.core.interface.get_engine`.
    cell_hook:
        Optional callable invoked before every cell fetch+decode on the
        random-access paths.  The serving tier installs its deadline
        checkpoint here so a multi-cell decode whose request expired or
        whose client disconnected aborts at the next cell boundary
        (raising from the hook) instead of running to completion on a
        worker thread nobody is waiting for.

    Examples
    --------
    >>> from repro.imaging.synthetic import generate_planar_image
    >>> store = ImageStore.open("/tmp/repro-store-doctest")
    >>> key = store.put(generate_planar_image("lena", size=16), stripes=2)
    >>> store.get_region(key, (0, 1)).height <= 16
    True
    """

    def __init__(
        self,
        backend: BlobBackend,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        config: Optional[CodecConfig] = None,
        engine: str = "reference",
        cache_admission: str = "always",
        cell_hook: Optional[Callable[[], None]] = None,
    ) -> None:
        from repro.core.interface import require_engine

        self.backend = backend
        self.cache = CellCache(cache_bytes, admission=cache_admission)
        self.config = config
        self.engine = require_engine(engine)
        self.cell_hook = cell_hook
        self._headers: Dict[str, StreamHeader] = {}

    def wrap_backend(
        self, wrapper: Callable[[BlobBackend], BlobBackend]
    ) -> BlobBackend:
        """Replace the backend with ``wrapper(backend)`` and return it.

        The seam fault-injection harnesses use: a chaos proxy (or any
        other decorator — tracing, metrics) slots in *after* the store is
        open and serving, without the store knowing.  Cached headers and
        decoded cells are kept — the wrapper sees the same blobs.
        """
        self.backend = wrapper(self.backend)
        return self.backend

    @classmethod
    def open(cls, path: Union[str, Path], **kwargs) -> "ImageStore":
        """Open a store at ``path`` (SQLite file or filesystem directory)."""
        return cls(open_backend(path), **kwargs)

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "ImageStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #

    def put_stream(self, data: bytes) -> str:
        """Store one complete ``.rplc`` container; returns its content key.

        The container is validated (header, tables, framing) and must be a
        proposed-codec stream — that is what the serving paths can decode.
        Storing the same bytes twice is a no-op returning the same key.
        """
        header = parse_stream_header(data)
        if header.codec not in (CodecId.PROPOSED, CodecId.PROPOSED_HARDWARE):
            raise StoreError(
                "only proposed-codec streams can be served, got codec %s"
                % header.codec.name
            )
        key = hashlib.sha256(data).hexdigest()
        if not self.backend.contains(key):
            self.backend.put(key, data)
        self._headers[key] = header
        return key

    def put(
        self,
        image: Union[GrayImage, PlanarImage],
        config: Optional[CodecConfig] = None,
        stripes: int = 1,
        plane_delta: bool = False,
    ) -> str:
        """Encode ``image`` (through the cell-grid pipeline) and store it.

        ``stripes`` controls random-access granularity: more stripes mean
        finer regions at a small compression cost.  Returns the content
        key of the encoded stream.
        """
        if config is None:
            config = self.config
        if config is None:
            config = CodecConfig.hardware(bit_depth=image.bit_depth)
        stream, _ = encode_grid(
            image,
            config,
            engine=self.engine,
            stripes=stripes,
            plane_delta=plane_delta,
        )
        return self.put_stream(stream)

    # ------------------------------------------------------------------ #
    # catalogue
    # ------------------------------------------------------------------ #

    def keys(self) -> Iterator[str]:
        """Iterate over every stored content key."""
        return self.backend.keys()

    def contains(self, key: str) -> bool:
        return self.backend.contains(key)

    def delete(self, key: str) -> None:
        """Remove a blob and every cached artefact derived from it."""
        self.backend.delete(key)
        self._headers.pop(key, None)
        for cell_key in list(self.cache.keys()):
            if cell_key[0] == key:
                self.cache.invalidate(cell_key)

    def header(self, key: str) -> StreamHeader:
        """The stream's parsed header + index, fetched by range read.

        Memoized per key: serving N regions of a hot blob parses its
        tables once, and the payload is never touched.
        """
        header = self._headers.get(key)
        if header is None:
            probe = self.backend.read_range(key, 0, TABLE_PROBE_LENGTH)
            prefix_length = table_prefix_length(probe)
            if prefix_length > len(probe):
                probe = self.backend.read_range(key, 0, prefix_length)
            header = parse_stream_prefix(probe, self.backend.length(key))
            self._headers[key] = header
        return header

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #

    def get(self, key: str) -> Union[GrayImage, PlanarImage]:
        """Full decode of a stored stream (the cold, whole-blob path)."""
        return decode_selection(
            self.backend.get(key), self.config, engine=self.engine
        ).image()

    def get_plane(self, key: str, plane: int) -> GrayImage:
        """Decode one component plane straight off the stored index."""
        return self._select(key, planes=(plane,)).plane_image(plane)

    def get_region(
        self,
        key: str,
        stripe_range: Tuple[int, int],
        planes: Optional[Sequence[int]] = None,
    ) -> Union[GrayImage, PlanarImage]:
        """Decode the rows covered by stripes ``[start, stop)``, and only those."""
        return self._select(key, planes=planes, stripe_range=stripe_range).image()

    def get_regions(
        self, key: str, stripe_ranges: Sequence[Tuple[int, int]]
    ) -> List[Union[GrayImage, PlanarImage]]:
        """Serve a batch of region queries over one stream.

        Equivalent to ``[store.get_region(key, r) for r in stripe_ranges]``
        but the distinct cells across all regions are resolved first, so
        overlapping regions fetch and decode each cell exactly once even
        on a cold cache.
        """
        header = self.header(key)
        config = resolve_stream_config(header, self.config)
        selections = [
            select_cells(header, None, stripe_range) for stripe_range in stripe_ranges
        ]
        wanted: Dict[Tuple[int, int], None] = {}
        by_spec: Dict[int, Any] = {}
        for plan, _requested, needed in selections:
            for plane in needed:
                for spec in plan:
                    by_spec[spec.index] = spec
                    wanted.setdefault((plane, spec.index), None)
        cells = self._resolve_cells(
            key, header, config, [(plane, by_spec[stripe]) for plane, stripe in wanted]
        )
        results: List[Union[GrayImage, PlanarImage]] = []
        for plan, requested, needed in selections:
            residuals = [
                np.concatenate([cells[(plane, spec.index)] for spec in plan])
                for plane in needed
            ]
            results.append(
                assemble_selection(header, plan, requested, needed, residuals).image()
            )
        return results

    def _select(
        self,
        key: str,
        planes: Optional[Sequence[int]] = None,
        stripe_range: Optional[Tuple[int, int]] = None,
    ) -> DecodedSelection:
        """One (planes, stripe-range) query through the cache + index."""
        header = self.header(key)
        config = resolve_stream_config(header, self.config)
        plan, requested, needed = select_cells(header, planes, stripe_range)
        cells = self._resolve_cells(
            key, header, config, [(plane, spec) for plane in needed for spec in plan]
        )
        residuals = [
            np.concatenate([cells[(plane, spec.index)] for spec in plan])
            for plane in needed
        ]
        return assemble_selection(header, plan, requested, needed, residuals)

    def _resolve_cells(
        self, key: str, header: StreamHeader, config: CodecConfig, cells
    ) -> Dict[Tuple[int, int], np.ndarray]:
        """Serve (plane, spec) cells from cache, range-reading the misses.

        Every miss costs one backend range read of exactly the cell's
        indexed bytes, one CRC check and one entropy decode; the decoded
        array is cached for the next query that touches the cell.
        """
        spans = component_spans(header)
        resolved: Dict[Tuple[int, int], np.ndarray] = {}
        hook = self.cell_hook
        for plane, spec in cells:
            if hook is not None:
                hook()
            cell_key: _CellKey = (key, plane, spec.index)
            array = self.cache.get(cell_key)
            if array is None:
                offset, length = spans[plane][spec.index]
                payload = self.backend.read_range(key, offset, length)
                array = decode_one_cell(
                    payload,
                    header,
                    plane,
                    spec,
                    config,
                    engine=self.engine,
                    from_container=False,
                )
                self.cache.put(cell_key, array)
            resolved[(plane, spec.index)] = array
        return resolved

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    def stats(self) -> dict:
        """Backend + cache counters (the ``repro-store stats`` payload)."""
        return {
            "backend": dict(self.backend.stats(), kind=type(self.backend).__name__),
            "cache": self.cache.stats.as_json(),
            "engine": self.engine,
        }
