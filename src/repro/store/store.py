"""Content-addressed image store with cached random access.

:class:`ImageStore` is the serving layer over the version-3 container's
random-access index: compressed streams live in a
:class:`~repro.store.backends.BlobBackend` keyed by the SHA-256 of their
bytes, and plane/region queries are answered by

1. parsing the container's header + tables from a small range read
   (memoized per key — the index of a hot blob is fetched once),
2. mapping the query onto (plane, stripe) cells through the same
   :func:`repro.core.cellgrid.select_cells` validation every in-memory
   decoder uses,
3. serving each cell from the LRU :class:`~repro.store.cache.CellCache`
   when possible, and otherwise range-reading exactly that cell's bytes,
   CRC-checking them against the index and entropy-decoding them.

A whole-blob fetch only ever happens for :meth:`get` (a full decode) — the
random-access paths stay proportional to the query, which is what makes
region-heavy workloads (cumulative-plot scans over stored signal planes,
cohort-style batched region pulls) cheap.  Batched requests
(:meth:`get_regions`) dedupe the cell set across regions before touching
the backend, so overlapping regions cost one decode per distinct cell.

Beside the blobs the store keeps a **metadata catalog**
(:mod:`repro.store.catalog`): one entry per stream recorded at ``put``
time (geometry, engine, container version, byte sizes, ingest time, user
tags) that powers ``repro-store ls`` queries and the data-plane lifecycle:

* :meth:`soft_delete` stamps a tombstone with a TTL instead of removing
  bytes; tombstoned streams answer :class:`BlobNotFoundError` on the read
  paths unless ``include_deleted=True``, and re-putting the same bytes
  (or :meth:`restore`) revives them.
* The GC sweep (:mod:`repro.store.gc`) purges expired tombstones through
  :meth:`purge_if_unpinned`, and the recompactor
  (:mod:`repro.store.compactor`) swaps re-encoded blobs in through
  :meth:`swap_stream` — both primitives take the store's **pin lock**, so
  neither can ever remove or replace a blob out from under an in-flight
  read.

Concurrency invariants the serving tier relies on:

* every read path (**get/get_plane/get_region/get_regions**) *pins* its
  key for the duration of the operation; :meth:`purge_if_unpinned` and
  :meth:`swap_stream` refuse to act on a pinned key, and a pin taken
  after a swap observes the fresh header and cells (the swap invalidates
  the memoized header and every cached cell of the key atomically with
  the blob replacement);
* the decoded-cell cache is thread-safe (see
  :class:`~repro.store.cache.CellCache`) and every cell served from the
  backend is CRC-verified against the container index before entropy
  decoding.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.bitstream import (
    CodecId,
    StreamHeader,
    TABLE_PROBE_LENGTH,
    component_spans,
    parse_stream_header,
    parse_stream_prefix,
    table_prefix_length,
)
from repro.core.cellgrid import (
    DecodedSelection,
    assemble_selection,
    decode_one_cell,
    decode_selection,
    encode_grid,
    select_cells,
)
from repro.core.config import CodecConfig
from repro.core.decoder import resolve_stream_config
from repro.exceptions import BlobNotFoundError, StoreError
from repro.imaging.image import GrayImage
from repro.imaging.planar import PlanarImage
from repro.store.backends import BlobBackend, open_backend
from repro.store.cache import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_ENCODED_CACHE_BYTES,
    CacheStats,
    CellCache,
    EncodedCellCache,
)
from repro.store.catalog import (
    DEFAULT_TTL_SECONDS,
    Catalog,
    CatalogEntry,
    open_catalog,
)

__all__ = ["ImageStore"]

_CellKey = Tuple[str, int, int]


class ImageStore:
    """Keyed store of compressed image streams with cached random access.

    Parameters
    ----------
    backend:
        Blob storage (see :mod:`repro.store.backends`).
    cache_bytes:
        Byte budget of the decoded-cell LRU cache; ``0`` disables caching.
    encoded_cache_bytes:
        Byte budget of the **encoded-bytes** tier below the decoded cache
        (default ``0`` — disabled).  A hit there skips the backend range
        read but still CRC-checks and entropy-decodes, trading CPU for
        I/O at ~an order of magnitude less memory per cell than the
        decoded tier.
    cache_admission:
        Cell-cache admission policy: ``"always"`` (default) caches every
        decoded cell, ``"second-touch"`` only cells requested more than
        once — the serving tier's guard against one-touch scans evicting
        the hot working set.  Both tiers run the same policy unless
        ``encoded_cache_admission`` overrides it for the encoded tier.
    config:
        Optional codec configuration forced on every decode; by default
        each stream's configuration is reconstructed from its own header,
        so one store can hold streams of mixed bit depths and presets.
    engine:
        Registered coding engine used for decoding (and for :meth:`put`
        encodes); any engine name accepted by
        :func:`repro.core.interface.get_engine`.
    cell_hook:
        Optional callable invoked before every cell fetch+decode on the
        random-access paths.  The serving tier installs its deadline
        checkpoint here so a multi-cell decode whose request expired or
        whose client disconnected aborts at the next cell boundary
        (raising from the hook) instead of running to completion on a
        worker thread nobody is waiting for.

    Invariants
    ----------
    * **Thread-safe.**  Every public method may be called from any
      thread: the cache, the catalog and the read-pin bookkeeping carry
      their own locks, and the backends serialize their mutations.
    * **CRC before entropy decode.**  Cells served off the random-access
      paths are checksummed against the container's per-cell CRC-32
      before any entropy decoding; corruption raises
      :class:`~repro.exceptions.BitstreamError`, never garbage pixels.
    * **Reads pin their key.**  All read paths hold a per-key refcount
      for their duration; :meth:`purge_if_unpinned` (the GC sweep) and
      :meth:`swap_stream` (the compactor) take the same lock, so a
      pinned key is never purged or swapped mid-read.
    * **Soft deletion is two-phase.**  :meth:`soft_delete` stamps a
      tombstone (reads answer :class:`BlobNotFoundError`, the blob
      stays); only an expired tombstone is purged, by an explicit sweep.
    * **Swaps are atomic per key.**  :meth:`swap_stream` replaces blob,
      memoized header and cached cells under the pin lock — concurrent
      readers see the old container or the new one, never a mix.

    Examples
    --------
    >>> from repro.imaging.synthetic import generate_planar_image
    >>> store = ImageStore.open("/tmp/repro-store-doctest")
    >>> key = store.put(generate_planar_image("lena", size=16), stripes=2)
    >>> store.get_region(key, (0, 1)).height <= 16
    True
    """

    def __init__(
        self,
        backend: BlobBackend,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        config: Optional[CodecConfig] = None,
        engine: str = "reference",
        cache_admission: str = "always",
        cell_hook: Optional[Callable[[], None]] = None,
        catalog: Optional[Catalog] = None,
        encoded_cache_bytes: int = DEFAULT_ENCODED_CACHE_BYTES,
        encoded_cache_admission: Optional[str] = None,
    ) -> None:
        from repro.core.interface import require_engine

        self.backend = backend
        self.cache = CellCache(cache_bytes, admission=cache_admission)
        self.encoded_cache = EncodedCellCache(
            encoded_cache_bytes,
            admission=(
                cache_admission
                if encoded_cache_admission is None
                else encoded_cache_admission
            ),
        )
        self.config = config
        self.engine = require_engine(engine)
        self.cell_hook = cell_hook
        self.catalog = catalog if catalog is not None else open_catalog(backend)
        self._headers: Dict[str, StreamHeader] = {}
        # Resolved header+tables prefix length per key.  Kept separate from
        # the memoized headers (and deliberately NOT dropped with them): a
        # stale hint after a swap merely sizes the first probe wrong and
        # self-heals, whereas knowing the right length turns the cold
        # header parse of a long-table stream into one range read instead
        # of two.
        self._prefix_lengths: Dict[str, int] = {}
        # Read-pin bookkeeping: reads hold a refcount on their key so the
        # GC sweep and the recompactor never act under an in-flight read.
        self._pin_lock = threading.Lock()
        self._pins: Dict[str, int] = {}

    def wrap_backend(
        self, wrapper: Callable[[BlobBackend], BlobBackend]
    ) -> BlobBackend:
        """Replace the backend with ``wrapper(backend)`` and return it.

        The seam fault-injection harnesses use: a chaos proxy (or any
        other decorator — tracing, metrics) slots in *after* the store is
        open and serving, without the store knowing.  Cached headers and
        decoded cells are kept — the wrapper sees the same blobs.
        """
        self.backend = wrapper(self.backend)
        return self.backend

    @classmethod
    def open(
        cls, path: Union[str, Path], use_mmap: bool = False, **kwargs
    ) -> "ImageStore":
        """Open a store at ``path`` (SQLite file or filesystem directory).

        ``use_mmap=True`` switches a filesystem backend to zero-copy
        ``memoryview`` range reads (ignored for SQLite paths).
        """
        return cls(open_backend(path, use_mmap=use_mmap), **kwargs)

    def close(self) -> None:
        self.catalog.close()
        self.backend.close()

    def __enter__(self) -> "ImageStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #

    def put_stream(
        self, data: bytes, tags: Optional[Dict[str, str]] = None
    ) -> str:
        """Store one complete ``.rplc`` container; returns its content key.

        The container is validated (header, tables, framing) and must be a
        proposed-codec stream — that is what the serving paths can decode.
        Storing the same bytes twice is a no-op returning the same key
        (tags are merged into the existing catalog entry), and re-putting
        a soft-deleted stream revives it: the tombstone is cleared.
        """
        header = parse_stream_header(data)
        if header.codec not in (CodecId.PROPOSED, CodecId.PROPOSED_HARDWARE):
            raise StoreError(
                "only proposed-codec streams can be served, got codec %s"
                % header.codec.name
            )
        key = hashlib.sha256(data).hexdigest()
        if not self.backend.contains(key):
            self.backend.put(key, data)
        self._headers[key] = header
        self.catalog.record_put(self._entry_for(key, header, len(data), tags))
        return key

    def _entry_for(
        self,
        key: str,
        header: StreamHeader,
        encoded_bytes: int,
        tags: Optional[Dict[str, str]] = None,
    ) -> CatalogEntry:
        """Catalog entry describing a just-ingested (or swapped) stream."""
        samples = header.pixel_count * header.component_count
        return CatalogEntry(
            key=key,
            width=header.width,
            height=header.height,
            planes=header.component_count,
            bit_depth=header.bit_depth,
            version=header.version,
            stripes=header.stripe_count,
            plane_delta=header.plane_delta,
            engine=self.engine,
            encoded_bytes=encoded_bytes,
            decoded_bytes=samples * ((header.bit_depth + 7) // 8),
            created_at=time.time(),
            tags=tuple(sorted((tags or {}).items())),
        )

    def put(
        self,
        image: Union[GrayImage, PlanarImage],
        config: Optional[CodecConfig] = None,
        stripes: int = 1,
        plane_delta: bool = False,
        tags: Optional[Dict[str, str]] = None,
    ) -> str:
        """Encode ``image`` (through the cell-grid pipeline) and store it.

        ``stripes`` controls random-access granularity: more stripes mean
        finer regions at a small compression cost.  ``tags`` are free-form
        ``str -> str`` metadata recorded in the catalog.  Returns the
        content key of the encoded stream.
        """
        if config is None:
            config = self.config
        if config is None:
            config = CodecConfig.hardware(bit_depth=image.bit_depth)
        stream, _ = encode_grid(
            image,
            config,
            engine=self.engine,
            stripes=stripes,
            plane_delta=plane_delta,
        )
        return self.put_stream(stream, tags=tags)

    # ------------------------------------------------------------------ #
    # catalogue
    # ------------------------------------------------------------------ #

    def keys(self) -> Iterator[str]:
        """Iterate over every stored content key (tombstoned ones included)."""
        return self.backend.keys()

    def contains(self, key: str) -> bool:
        return self.backend.contains(key)

    def delete(self, key: str) -> None:
        """Hard-remove a blob, its catalog entry and every cached artefact.

        Immediate and unconditional — the lifecycle-respecting path is
        :meth:`soft_delete` + the GC sweep.
        """
        self.backend.delete(key)
        self.catalog.purge(key)
        self._drop_cached(key)

    def _drop_cached(self, key: str) -> None:
        """Forget the memoized header and cached cells (both tiers) of one key.

        The prefix-length hint survives on purpose: it is a probe-sizing
        hint, not data, and a stale one self-heals on the next parse.
        """
        self._headers.pop(key, None)
        for cell_key in list(self.cache.keys()):
            if cell_key[0] == key:
                self.cache.invalidate(cell_key)
        for cell_key in list(self.encoded_cache.keys()):
            if cell_key[0] == key:
                self.encoded_cache.invalidate(cell_key)

    # ------------------------------------------------------------------ #
    # lifecycle: soft delete, pins, GC/compaction primitives
    # ------------------------------------------------------------------ #

    def soft_delete(
        self, key: str, ttl_seconds: float = DEFAULT_TTL_SECONDS, now: Optional[float] = None
    ) -> CatalogEntry:
        """Tombstone a stream: hidden from reads, bytes kept until GC.

        The blob stays in the backend and the catalog entry stays
        queryable (``include_deleted=True``); after ``ttl_seconds`` the
        tombstone is *eligible* for the GC sweep, which is what actually
        reclaims the bytes.  Returns the tombstoned entry.
        """
        if not self.backend.contains(key):
            raise BlobNotFoundError("no blob stored under key %r" % key)
        if self.catalog.get(key) is None:
            # Pre-catalog blob: synthesise its entry from the header so
            # the tombstone has somewhere to live.
            header = self.header(key)
            self.catalog.record_put(
                self._entry_for(key, header, self.backend.length(key))
            )
        return self.catalog.mark_deleted(
            key, time.time() if now is None else now, ttl_seconds
        )

    def restore(self, key: str) -> CatalogEntry:
        """Clear a tombstone (no-op on the blob; it never went away)."""
        return self.catalog.restore(key)

    @contextmanager
    def _pin(self, key: str) -> Iterator[None]:
        """Hold a read pin on ``key`` for the duration of the block."""
        with self._pin_lock:
            self._pins[key] = self._pins.get(key, 0) + 1
        try:
            yield
        finally:
            with self._pin_lock:
                remaining = self._pins.get(key, 1) - 1
                if remaining <= 0:
                    self._pins.pop(key, None)
                else:
                    self._pins[key] = remaining

    def pinned(self, key: str) -> bool:
        """Whether any in-flight read currently holds ``key``."""
        with self._pin_lock:
            return self._pins.get(key, 0) > 0

    def purge_if_unpinned(self, key: str) -> Optional[int]:
        """Remove a blob unless an in-flight read holds it (the GC primitive).

        Returns the reclaimed byte count, or ``None`` when the key was
        pinned and nothing was touched.  The pin lock is held across the
        whole removal, so the outcome against any concurrent read is
        strictly ordered: either the read pinned first (the purge is
        skipped this sweep) or the purge finished first (the read
        observes :class:`BlobNotFoundError`).
        """
        with self._pin_lock:
            if self._pins.get(key, 0) > 0:
                return None
            try:
                reclaimed = self.backend.length(key)
                self.backend.delete(key)
            except BlobNotFoundError:
                reclaimed = 0
            self.catalog.purge(key)
            self._drop_cached(key)
            return reclaimed

    def swap_stream(self, data: bytes, key: str, engine: Optional[str] = None) -> bool:
        """Atomically replace the blob under ``key`` (the compaction primitive).

        The caller (:mod:`repro.store.compactor`) must already have
        verified that ``data`` decodes to byte-identical pixels; ``engine``
        records which engine produced the new container in the catalog
        (defaults to the store's engine).  Returns ``False`` without
        touching anything when an in-flight read holds the key; on success
        the backend blob, the memoized header and every cached cell are
        replaced atomically with respect to the pin lock, so the next read
        parses the fresh container.
        """
        header = parse_stream_header(data)
        with self._pin_lock:
            if self._pins.get(key, 0) > 0:
                return False
            self.backend.put(key, data)
            self._drop_cached(key)
            self._headers[key] = header
            if self.catalog.get(key) is not None:
                self.catalog.update(
                    key,
                    encoded_bytes=len(data),
                    version=header.version,
                    stripes=header.stripe_count,
                    plane_delta=header.plane_delta,
                    engine=engine if engine is not None else self.engine,
                    compacted_at=time.time(),
                )
            return True

    def _check_visible(self, key: str, include_deleted: bool) -> None:
        """Raise for reads of tombstoned keys unless explicitly included."""
        if include_deleted:
            return
        entry = self.catalog.get(key)
        if entry is not None and entry.deleted:
            raise BlobNotFoundError(
                "key %s is soft-deleted (restore it or pass include_deleted=True)"
                % key
            )

    def header(self, key: str) -> StreamHeader:
        """The stream's parsed header + index, fetched by range read.

        Memoized per key: serving N regions of a hot blob parses its
        tables once, and the payload is never touched.  The resolved
        prefix length is remembered separately, so a stream whose tables
        overflow the fixed first probe pays the double range read **at
        most once per key lifetime** — later cold parses (cache drop,
        process doing periodic header refreshes) probe with the known
        length directly.  A stale hint (the blob was swapped for one with
        longer tables) is detected by the same shortfall check and
        corrected in place.
        """
        header = self._headers.get(key)
        if header is None:
            probe_length = self._prefix_lengths.get(key, TABLE_PROBE_LENGTH)
            probe = self.backend.read_range(key, 0, probe_length)
            prefix_length = table_prefix_length(probe)
            if prefix_length > len(probe):
                probe = self.backend.read_range(key, 0, prefix_length)
            self._prefix_lengths[key] = prefix_length
            header = parse_stream_prefix(probe, self.backend.length(key))
            self._headers[key] = header
        return header

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #

    def get(
        self, key: str, include_deleted: bool = False
    ) -> Union[GrayImage, PlanarImage]:
        """Full decode of a stored stream (the cold, whole-blob path)."""
        with self._pin(key):
            self._check_visible(key, include_deleted)
            return decode_selection(
                self.backend.get(key), self.config, engine=self.engine
            ).image()

    def get_plane(
        self, key: str, plane: int, include_deleted: bool = False
    ) -> GrayImage:
        """Decode one component plane straight off the stored index."""
        with self._pin(key):
            self._check_visible(key, include_deleted)
            return self._select(key, planes=(plane,)).plane_image(plane)

    def get_region(
        self,
        key: str,
        stripe_range: Tuple[int, int],
        planes: Optional[Sequence[int]] = None,
        include_deleted: bool = False,
    ) -> Union[GrayImage, PlanarImage]:
        """Decode the rows covered by stripes ``[start, stop)``, and only those."""
        with self._pin(key):
            self._check_visible(key, include_deleted)
            return self._select(key, planes=planes, stripe_range=stripe_range).image()

    def get_regions(
        self,
        key: str,
        stripe_ranges: Sequence[Tuple[int, int]],
        include_deleted: bool = False,
    ) -> List[Union[GrayImage, PlanarImage]]:
        """Serve a batch of region queries over one stream.

        Equivalent to ``[store.get_region(key, r) for r in stripe_ranges]``
        but the distinct cells across all regions are resolved first, so
        overlapping regions fetch and decode each cell exactly once even
        on a cold cache.
        """
        with self._pin(key):
            self._check_visible(key, include_deleted)
            return self._get_regions_pinned(key, stripe_ranges)

    def _get_regions_pinned(
        self, key: str, stripe_ranges: Sequence[Tuple[int, int]]
    ) -> List[Union[GrayImage, PlanarImage]]:
        header = self.header(key)
        config = resolve_stream_config(header, self.config)
        selections = [
            select_cells(header, None, stripe_range) for stripe_range in stripe_ranges
        ]
        wanted: Dict[Tuple[int, int], None] = {}
        by_spec: Dict[int, Any] = {}
        for plan, _requested, needed in selections:
            for plane in needed:
                for spec in plan:
                    by_spec[spec.index] = spec
                    wanted.setdefault((plane, spec.index), None)
        cells = self._resolve_cells(
            key, header, config, [(plane, by_spec[stripe]) for plane, stripe in wanted]
        )
        results: List[Union[GrayImage, PlanarImage]] = []
        for plan, requested, needed in selections:
            residuals = [
                np.concatenate([cells[(plane, spec.index)] for spec in plan])
                for plane in needed
            ]
            results.append(
                assemble_selection(header, plan, requested, needed, residuals).image()
            )
        return results

    def _select(
        self,
        key: str,
        planes: Optional[Sequence[int]] = None,
        stripe_range: Optional[Tuple[int, int]] = None,
    ) -> DecodedSelection:
        """One (planes, stripe-range) query through the cache + index."""
        header = self.header(key)
        config = resolve_stream_config(header, self.config)
        plan, requested, needed = select_cells(header, planes, stripe_range)
        cells = self._resolve_cells(
            key, header, config, [(plane, spec) for plane in needed for spec in plan]
        )
        residuals = [
            np.concatenate([cells[(plane, spec.index)] for spec in plan])
            for plane in needed
        ]
        return assemble_selection(header, plan, requested, needed, residuals)

    def _resolve_cells(
        self, key: str, header: StreamHeader, config: CodecConfig, cells
    ) -> Dict[Tuple[int, int], np.ndarray]:
        """Serve (plane, spec) cells through both cache tiers.

        Lookup order per cell: decoded cache (free), encoded-bytes cache
        (CRC + entropy decode, no I/O), backend.  Cells missing both
        tiers are fetched in **one** batched ``read_ranges`` call — one
        file open / mmap lookup / lock acquisition for the whole request
        instead of one per cell — and the raw bytes reach the decoder as
        whatever buffer the backend returned (a zero-copy ``memoryview``
        in mmap mode).  Decoded arrays fill the decoded tier; the raw
        bytes are offered to the encoded tier (copied out of any mmap, so
        cached payloads never pin a mapping).

        ``cell_hook`` (the serving tier's deadline checkpoint) still runs
        exactly once per cell, before that cell's work.
        """
        spans = component_spans(header)
        resolved: Dict[Tuple[int, int], np.ndarray] = {}
        hook = self.cell_hook
        missing: List[Tuple[int, Any, _CellKey]] = []
        for plane, spec in cells:
            cell_key: _CellKey = (key, plane, spec.index)
            array = self.cache.get(cell_key)
            if array is not None:
                if hook is not None:
                    hook()
                resolved[(plane, spec.index)] = array
                continue
            payload = self.encoded_cache.get(cell_key)
            if payload is not None:
                if hook is not None:
                    hook()
                array = decode_one_cell(
                    payload,
                    header,
                    plane,
                    spec,
                    config,
                    engine=self.engine,
                    from_container=False,
                )
                self.cache.put(cell_key, array)
                resolved[(plane, spec.index)] = array
                continue
            missing.append((plane, spec, cell_key))
        if missing:
            payloads = self.backend.read_ranges(
                key, [spans[plane][spec.index] for plane, spec, _ in missing]
            )
            for (plane, spec, cell_key), payload in zip(missing, payloads):
                if hook is not None:
                    hook()
                self.encoded_cache.put(cell_key, payload)
                array = decode_one_cell(
                    payload,
                    header,
                    plane,
                    spec,
                    config,
                    engine=self.engine,
                    from_container=False,
                )
                self.cache.put(cell_key, array)
                resolved[(plane, spec.index)] = array
        return resolved

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    @property
    def encoded_cache_stats(self) -> CacheStats:
        return self.encoded_cache.stats

    def stats(self) -> dict:
        """Backend + cache + catalog counters (``repro-store stats`` payload)."""
        return {
            "backend": dict(self.backend.stats(), kind=type(self.backend).__name__),
            "cache": self.cache.stats.as_json(),
            "encoded_cache": self.encoded_cache.stats.as_json(),
            "catalog": dict(
                self.catalog.stats(), kind=type(self.catalog).__name__
            ),
            "engine": self.engine,
        }
