"""Background recompaction — re-encode cold blobs under the same content key.

PR 2/PR 4 grew the engine registry and the container gained plane-delta
and striped layouts, but blobs ingested earlier keep whatever encoding
they arrived with.  :func:`compact_key` closes the gap: it decodes a
stored stream, re-encodes the pixels with a chosen engine / stripe count
/ plane-delta setting, and swaps the new container in **under the same
key** via :meth:`ImageStore.swap_stream
<repro.store.store.ImageStore.swap_stream>`.

The safety invariant (property-tested in the suite): the store's content
addressing is over *decoded pixels* — a key must keep decoding to exactly
the same image after compaction.  So the new container is fully decoded
and compared sample-for-sample against the original's decode **before**
the swap; any mismatch, and any decode error on a corrupt source blob,
raises without touching the stored bytes.  Atomicity comes from the swap
primitive: it replaces blob, memoized header and cached cells under the
store's pin lock, and refuses when an in-flight read holds the key — a
compactor killed at any point leaves either the old container or the new
one, both of which decode identically.

:func:`compact` sweeps the catalog (live entries only, optionally
age-filtered) and returns a :class:`CompactionResult` with per-key rows;
:class:`Compactor` runs such sweeps on a background thread.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.bitstream import parse_stream_header
from repro.core.cellgrid import decode_selection, encode_grid
from repro.core.decoder import resolve_stream_config
from repro.exceptions import ReproError, StoreError
from repro.imaging.image import GrayImage
from repro.imaging.planar import PlanarImage
from repro.store.catalog import CatalogFilter
from repro.store.store import ImageStore

__all__ = ["KeyCompaction", "CompactionResult", "compact_key", "compact", "Compactor"]


@dataclass(frozen=True)
class KeyCompaction:
    """Outcome of recompacting one key."""

    key: str
    #: ``"swapped"`` (new container in place), ``"pinned"`` (an in-flight
    #: read held the key; nothing changed), or ``"error"`` (decode,
    #: re-encode or verification failed; original untouched).
    status: str
    bytes_before: int = 0
    bytes_after: int = 0
    error: str = ""

    @property
    def bytes_saved(self) -> int:
        if self.status != "swapped":
            return 0
        return self.bytes_before - self.bytes_after

    def as_json(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "status": self.status,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
            "bytes_saved": self.bytes_saved,
            "error": self.error,
        }


@dataclass
class CompactionResult:
    """Outcome of one compaction sweep (a list of per-key rows + totals)."""

    rows: List[KeyCompaction] = field(default_factory=list)

    @property
    def swapped(self) -> int:
        return sum(1 for row in self.rows if row.status == "swapped")

    @property
    def pinned(self) -> int:
        return sum(1 for row in self.rows if row.status == "pinned")

    @property
    def failed(self) -> int:
        return sum(1 for row in self.rows if row.status == "error")

    @property
    def bytes_saved(self) -> int:
        return sum(row.bytes_saved for row in self.rows)

    def as_json(self) -> Dict[str, object]:
        return {
            "rows": [row.as_json() for row in self.rows],
            "swapped": self.swapped,
            "pinned": self.pinned,
            "failed": self.failed,
            "bytes_saved": self.bytes_saved,
        }

    def format_report(self) -> str:
        lines = [
            "compact: %d key(s) examined, %d swapped, %d pinned, %d failed, "
            "%d bytes saved"
            % (len(self.rows), self.swapped, self.pinned, self.failed, self.bytes_saved)
        ]
        for row in self.rows:
            if row.status == "swapped":
                lines.append(
                    "  %s  %d -> %d bytes (%+d)"
                    % (
                        row.key[:16],
                        row.bytes_before,
                        row.bytes_after,
                        row.bytes_after - row.bytes_before,
                    )
                )
            elif row.status == "pinned":
                lines.append("  %s  skipped: pinned by an in-flight read" % row.key[:16])
            else:
                lines.append("  %s  FAILED: %s" % (row.key[:16], row.error))
        return "\n".join(lines)


def _as_array(image: Union[GrayImage, PlanarImage]) -> np.ndarray:
    array = image.to_array()
    # A single-plane stream may decode as GrayImage (2-D) or as a
    # one-plane PlanarImage (3-D) depending on the path; normalise so the
    # verification compares samples, not wrapper types.
    if array.ndim == 2:
        array = array[np.newaxis, :, :]
    return array


def compact_key(
    store: ImageStore,
    key: str,
    engine: Optional[str] = None,
    stripes: Optional[int] = None,
    plane_delta: Optional[bool] = None,
) -> KeyCompaction:
    """Re-encode the blob under ``key`` and swap it in under the same key.

    ``engine`` / ``stripes`` / ``plane_delta`` default to the stream's
    current settings (so ``compact_key(store, key, engine="fast")``
    changes only the engine).  The new container is decoded and verified
    sample-identical against the original **before** the swap; failures
    of any kind raise and leave the stored blob untouched.  Returns a
    ``"pinned"`` row (no changes) when an in-flight read holds the key.
    """
    from repro.core.interface import require_engine

    data = store.backend.get(key)
    header = parse_stream_header(data)
    config = resolve_stream_config(header, store.config)
    engine_name = require_engine(engine if engine is not None else store.engine)
    target_stripes = stripes if stripes is not None else header.stripe_count
    target_delta = plane_delta if plane_delta is not None else header.plane_delta

    original = decode_selection(data, store.config, engine=store.engine).image()
    reencoded, _ = encode_grid(
        original,
        config,
        engine=engine_name,
        stripes=target_stripes,
        plane_delta=target_delta,
    )
    verified = decode_selection(reencoded, store.config, engine=engine_name).image()
    if not np.array_equal(_as_array(original), _as_array(verified)):
        raise StoreError(
            "recompaction of %s is not byte-identical on decode "
            "(engine=%s stripes=%d plane_delta=%s); original left in place"
            % (key, engine_name, target_stripes, target_delta)
        )

    if not store.swap_stream(reencoded, key, engine=engine_name):
        return KeyCompaction(key=key, status="pinned", bytes_before=len(data))
    return KeyCompaction(
        key=key,
        status="swapped",
        bytes_before=len(data),
        bytes_after=len(reencoded),
    )


def compact(
    store: ImageStore,
    keys: Optional[Sequence[str]] = None,
    engine: Optional[str] = None,
    stripes: Optional[int] = None,
    plane_delta: Optional[bool] = None,
    min_age_seconds: float = 0.0,
    now: Optional[float] = None,
) -> CompactionResult:
    """One compaction sweep: recompact ``keys``, or every cold live entry.

    Without explicit ``keys`` the sweep walks the catalog's live entries
    (tombstoned streams are left for GC) and recompacts those whose last
    write — ingest or previous compaction — is at least
    ``min_age_seconds`` old.  Per-key decode/verify failures are recorded
    as ``"error"`` rows (original blob untouched) and the sweep
    continues; callers decide whether failures are fatal (the CLI exits
    non-zero).
    """
    moment = time.time() if now is None else now
    result = CompactionResult()
    if keys is None:
        entries, _total = store.catalog.query(CatalogFilter())
        chosen = []
        for entry in entries:
            written_at = (
                entry.compacted_at if entry.compacted_at is not None else entry.created_at
            )
            if moment - written_at >= min_age_seconds:
                chosen.append(entry.key)
    else:
        chosen = list(keys)
    for key in chosen:
        try:
            row = compact_key(
                store, key, engine=engine, stripes=stripes, plane_delta=plane_delta
            )
        except (ReproError, OSError, ValueError) as exc:
            row = KeyCompaction(
                key=key,
                status="error",
                error="%s: %s" % (type(exc).__name__, exc),
            )
        result.rows.append(row)
    return result


class Compactor:
    """Periodic compaction sweeps on a daemon thread.

    The long-lived-process shape, mirroring :class:`repro.store.gc.GcDaemon`:
    cold blobs are re-encoded in the background, readers are never blocked
    (a pinned key is simply skipped this sweep) and ``results`` keeps the
    latest sweep outcomes for observability.
    """

    def __init__(
        self,
        store: ImageStore,
        interval_seconds: float = 300.0,
        engine: Optional[str] = None,
        stripes: Optional[int] = None,
        plane_delta: Optional[bool] = None,
        min_age_seconds: float = 0.0,
        keep_results: int = 16,
    ) -> None:
        if interval_seconds <= 0:
            raise StoreError(
                "compaction interval must be positive seconds, got %r"
                % interval_seconds
            )
        self.store = store
        self.interval_seconds = interval_seconds
        self.engine = engine
        self.stripes = stripes
        self.plane_delta = plane_delta
        self.min_age_seconds = min_age_seconds
        self.keep_results = max(1, keep_results)
        self.results: List[CompactionResult] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def run_once(self, now: Optional[float] = None) -> CompactionResult:
        """One synchronous sweep, recorded like a scheduled one."""
        result = compact(
            self.store,
            engine=self.engine,
            stripes=self.stripes,
            plane_delta=self.plane_delta,
            min_age_seconds=self.min_age_seconds,
            now=now,
        )
        self.results.append(result)
        del self.results[: -self.keep_results]
        return result

    def start(self) -> None:
        if self._thread is not None:
            raise StoreError("compactor is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-store-compactor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=timeout)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self.run_once()
            except Exception:  # noqa: BLE001 - a failed sweep must not kill the loop
                continue

    def __enter__(self) -> "Compactor":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
