"""The ``repro-store`` console script.

Front door of the serving layer (:class:`repro.store.store.ImageStore`):

``repro-store put STORE IMAGE``
    Compress a PGM/PPM/PAM image into the store (content-addressed; the
    printed key is the SHA-256 of the container bytes).  ``--stripes``
    sets random-access granularity, ``--plane-delta`` the inter-plane
    predictor, ``--engine`` the coding engine.

``repro-store get STORE KEY OUTPUT``
    Reconstruct a stored image (or one ``--plane``, or one ``--region
    A:B``) into a Netpbm file; only the indexed bytes the request needs
    are read from the store.

``repro-store regions STORE KEY A:B [A:B ...]``
    Serve a batch of stripe-range requests in one call (cells shared
    between regions decode once).  With ``--out DIR`` each region is
    written as an image; otherwise a per-region summary plus cache
    counters is printed.

``repro-store ls STORE``
    Query the metadata catalog: one line per stored stream (geometry,
    engine, container version, sizes, tags), filterable by ``--planes``,
    ``--engine``, ``--container-version`` and ``--tag KEY[=VALUE]``,
    paginated with ``--limit``/``--offset``.  Tombstoned streams appear
    with ``--include-deleted`` (or alone with ``--deleted-only``).

``repro-store rm STORE KEY``
    Soft-delete a stream: a tombstone with a TTL (``--ttl`` seconds,
    default 7 days) hides it from reads; the bytes are reclaimed by a
    later ``gc`` once the TTL lapses.  ``--hard`` removes blob and
    catalog entry immediately instead.

``repro-store gc STORE``
    Purge expired tombstones (never a live or in-flight key).
    ``--dry-run`` reports what would be reclaimed without touching
    anything.

``repro-store compact STORE``
    Re-encode stored blobs with a chosen ``--engine`` / ``--stripes`` /
    ``--plane-delta`` and atomically swap each under its same content
    key — decode is verified byte-identical before any swap.  Targets
    every live stream older than ``--min-age`` seconds, or just the
    given ``--key``s.  Exits non-zero if any key failed.

``repro-store stats STORE``
    Backend, cache and catalog counters as JSON.

``STORE`` is a directory (filesystem backend) or a ``.sqlite``/``.db``
path (SQLite backend).  Errors follow the package convention: one
``ExceptionName: message`` line on stderr, non-zero exit status.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.cli import _print_error, add_version_argument
from repro.core.interface import ENGINES
from repro.exceptions import ReproError
from repro.imaging.pnm import read_image, write_image
from repro.store.catalog import DEFAULT_TTL_SECONDS, CatalogEntry, CatalogFilter
from repro.store.compactor import compact
from repro.store.gc import sweep
from repro.store.store import ImageStore

__all__ = ["store_main"]


def _parse_region(text: str) -> Tuple[int, int]:
    """Parse an ``A:B`` stripe range; raises ``ValueError`` on bad shape."""
    start, _, stop = text.partition(":")
    return int(start), int(stop)


def _region_argument(text: str) -> Tuple[int, int]:
    try:
        return _parse_region(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "region must be START:STOP (stripe indices), got %r" % text
        ) from None


def _tag_argument(text: str) -> Tuple[str, str]:
    key, sep, value = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            "tag must be KEY=VALUE, got %r" % text
        )
    return key, value


def _tag_filter_argument(text: str) -> Tuple[str, Optional[str]]:
    try:
        return CatalogFilter.parse_tag(text)
    except ReproError:
        raise argparse.ArgumentTypeError(
            "tag filter must be KEY or KEY=VALUE, got %r" % text
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-store",
        description="Content-addressed image store with cached random access.",
    )
    add_version_argument(parser)
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        metavar="N",
        help="decoded-cell LRU budget in bytes (default 32 MiB; 0 disables)",
    )
    parser.add_argument(
        "--encoded-cache-bytes",
        type=int,
        default=None,
        metavar="N",
        help="encoded-bytes LRU budget below the decoded cache: raw cell "
        "bytes whose hits skip backend I/O but still decode (default 0: "
        "disabled)",
    )
    parser.add_argument(
        "--mmap",
        action="store_true",
        help="read filesystem blobs through zero-copy mmap views "
        "(ignored for SQLite stores)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="reference",
        help="coding engine for encodes and decodes (default: reference)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    put = commands.add_parser("put", help="compress an image into the store")
    put.add_argument("store", help="store path (directory or .sqlite file)")
    put.add_argument("image", help="input PGM/PPM/PAM image")
    put.add_argument(
        "--stripes",
        type=int,
        default=4,
        metavar="S",
        help="stripes per plane — the random-access granularity (default 4)",
    )
    put.add_argument(
        "--plane-delta",
        action="store_true",
        help="code plane k>0 as the delta to plane k-1",
    )
    put.add_argument(
        "--tag",
        action="append",
        type=_tag_argument,
        default=[],
        metavar="KEY=VALUE",
        help="attach a metadata tag (repeatable); queryable via ls --tag",
    )

    get = commands.add_parser("get", help="reconstruct a stored image")
    get.add_argument("store", help="store path (directory or .sqlite file)")
    get.add_argument("key", help="content key printed by put")
    get.add_argument("output", help="output image path (PGM/PPM/PAM)")
    group = get.add_mutually_exclusive_group()
    group.add_argument(
        "--plane", type=int, default=None, metavar="K", help="fetch one plane only"
    )
    group.add_argument(
        "--region",
        type=_region_argument,
        default=None,
        metavar="A:B",
        help="fetch the rows of stripes [A, B) only",
    )

    regions = commands.add_parser(
        "regions", help="serve a batch of stripe-range requests"
    )
    regions.add_argument("store", help="store path (directory or .sqlite file)")
    regions.add_argument("key", help="content key printed by put")
    regions.add_argument(
        "ranges",
        nargs="+",
        type=_region_argument,
        metavar="A:B",
        help="stripe ranges to fetch",
    )
    regions.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write each region as an image under DIR instead of summarising",
    )

    ls = commands.add_parser("ls", help="query the metadata catalog")
    ls.add_argument("store", help="store path (directory or .sqlite file)")
    ls.add_argument(
        "--planes", type=int, default=None, metavar="N", help="only N-plane streams"
    )
    ls.add_argument(
        "--engine",
        dest="filter_engine",
        choices=ENGINES,
        default=None,
        help="only streams last encoded by this engine",
    )
    ls.add_argument(
        "--container-version",
        type=int,
        default=None,
        metavar="V",
        help="only streams in container version V",
    )
    ls.add_argument(
        "--tag",
        action="append",
        type=_tag_filter_argument,
        default=[],
        metavar="KEY[=VALUE]",
        help="only streams with this tag (bare KEY = presence; repeatable)",
    )
    ls.add_argument(
        "--limit", type=int, default=50, metavar="N", help="page size (default 50)"
    )
    ls.add_argument(
        "--offset", type=int, default=0, metavar="N", help="page start (default 0)"
    )
    ls.add_argument(
        "--include-deleted",
        action="store_true",
        help="include soft-deleted (tombstoned) streams",
    )
    ls.add_argument(
        "--deleted-only",
        action="store_true",
        help="show only soft-deleted streams",
    )
    ls.add_argument("--json", action="store_true", help="emit the page as JSON")

    rm = commands.add_parser("rm", help="soft-delete a stream (tombstone + TTL)")
    rm.add_argument("store", help="store path (directory or .sqlite file)")
    rm.add_argument("key", help="content key printed by put")
    rm.add_argument(
        "--ttl",
        type=float,
        default=DEFAULT_TTL_SECONDS,
        metavar="SECONDS",
        help="seconds until the tombstone is eligible for gc (default 7 days)",
    )
    rm.add_argument(
        "--hard",
        action="store_true",
        help="remove the blob and catalog entry immediately (no tombstone)",
    )

    gc = commands.add_parser("gc", help="purge expired tombstones")
    gc.add_argument("store", help="store path (directory or .sqlite file)")
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be purged without removing anything",
    )
    gc.add_argument("--json", action="store_true", help="emit the sweep result as JSON")

    compact_cmd = commands.add_parser(
        "compact", help="re-encode stored blobs in place (same content key)"
    )
    compact_cmd.add_argument("store", help="store path (directory or .sqlite file)")
    compact_cmd.add_argument(
        "--key",
        action="append",
        default=[],
        metavar="KEY",
        help="compact only this key (repeatable; default: every live stream)",
    )
    compact_cmd.add_argument(
        "--engine",
        dest="target_engine",
        choices=ENGINES,
        default=None,
        help="re-encode with this engine (default: the store's engine)",
    )
    compact_cmd.add_argument(
        "--stripes",
        type=int,
        default=None,
        metavar="S",
        help="re-stripe to S stripes per plane (default: keep)",
    )
    compact_cmd.add_argument(
        "--plane-delta",
        choices=("keep", "on", "off"),
        default="keep",
        help="inter-plane predictor for the re-encode (default: keep)",
    )
    compact_cmd.add_argument(
        "--min-age",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="only streams whose last write is at least this old (default 0)",
    )
    compact_cmd.add_argument(
        "--json", action="store_true", help="emit the sweep result as JSON"
    )

    stats = commands.add_parser(
        "stats", help="backend + cache + catalog counters as JSON"
    )
    stats.add_argument("store", help="store path (directory or .sqlite file)")
    return parser


def _format_entry(entry: CatalogEntry) -> str:
    """One ``ls`` line: key, geometry, coding parameters, size, state."""
    tags = " ".join("%s=%s" % item for item in entry.tags)
    state = ""
    if entry.deleted:
        state = "  [deleted]"
    elif entry.compacted_at is not None:
        state = "  [compacted]"
    return "%s  %dx%d  %dp/%db  v%d s%d  %s  %d B%s%s" % (
        entry.key,
        entry.width,
        entry.height,
        entry.planes,
        entry.bit_depth,
        entry.version,
        entry.stripes,
        entry.engine,
        entry.encoded_bytes,
        ("  " + tags) if tags else "",
        state,
    )


def store_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-store``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cache_bytes is not None and args.cache_bytes < 0:
        parser.error("--cache-bytes must be >= 0")
    if args.encoded_cache_bytes is not None and args.encoded_cache_bytes < 0:
        parser.error("--encoded-cache-bytes must be >= 0")

    store_kwargs: Dict[str, Any] = {"engine": args.engine, "use_mmap": args.mmap}
    if args.cache_bytes is not None:
        store_kwargs["cache_bytes"] = args.cache_bytes
    if args.encoded_cache_bytes is not None:
        store_kwargs["encoded_cache_bytes"] = args.encoded_cache_bytes

    exit_code = 0
    try:
        with ImageStore.open(args.store, **store_kwargs) as store:
            if args.command == "put":
                image = read_image(args.image)
                key = store.put(
                    image,
                    stripes=args.stripes,
                    plane_delta=args.plane_delta,
                    tags=dict(args.tag) if args.tag else None,
                )
                size = store.backend.length(key)
                print(key)
                print(
                    "%s -> %s (%d bytes, %d stripes%s)"
                    % (
                        args.image,
                        args.store,
                        size,
                        args.stripes,
                        ", plane-delta" if args.plane_delta else "",
                    ),
                    file=sys.stderr,
                )
            elif args.command == "get":
                if args.plane is not None:
                    image = store.get_plane(args.key, args.plane)
                elif args.region is not None:
                    image = store.get_region(args.key, args.region)
                else:
                    image = store.get(args.key)
                write_image(image, args.output)
                print("%s -> %s" % (args.key, args.output))
            elif args.command == "regions":
                images = store.get_regions(args.key, args.ranges)
                if args.out is not None:
                    out_dir = Path(args.out)
                    out_dir.mkdir(parents=True, exist_ok=True)
                    for (start, stop), image in zip(args.ranges, images):
                        suffix = ".pgm" if not hasattr(image, "num_planes") else (
                            ".ppm" if image.num_planes == 3 else ".pam"
                        )
                        path = out_dir / (
                            "%s-r%d-%d%s" % (args.key[:12], start, stop, suffix)
                        )
                        write_image(image, str(path))
                        print("stripes [%d, %d) -> %s" % (start, stop, path))
                else:
                    for (start, stop), image in zip(args.ranges, images):
                        print(
                            "stripes [%d, %d): %dx%d, %d plane(s)"
                            % (
                                start,
                                stop,
                                image.width,
                                image.height,
                                getattr(image, "num_planes", 1),
                            )
                        )
                    cache = store.cache_stats
                    print(
                        "cache: %d hit(s), %d miss(es), %.0f%% hit rate, "
                        "%d entr%s holding %d of %d bytes"
                        % (
                            cache.hits,
                            cache.misses,
                            100.0 * cache.hit_rate,
                            cache.entries,
                            "y" if cache.entries == 1 else "ies",
                            cache.current_bytes,
                            cache.max_bytes,
                        )
                    )
            elif args.command == "ls":
                page, total = store.catalog.query(
                    CatalogFilter(
                        planes=args.planes,
                        engine=args.filter_engine,
                        version=args.container_version,
                        tags=tuple(args.tag),
                        include_deleted=args.include_deleted,
                        deleted_only=args.deleted_only,
                    ),
                    limit=args.limit,
                    offset=args.offset,
                )
                if args.json:
                    print(
                        json.dumps(
                            {
                                "entries": [entry.as_json() for entry in page],
                                "total": total,
                                "offset": args.offset,
                                "limit": args.limit,
                            },
                            indent=2,
                            sort_keys=True,
                        )
                    )
                else:
                    for entry in page:
                        print(_format_entry(entry))
                    print(
                        "%d of %d entr%s (offset %d)"
                        % (
                            len(page),
                            total,
                            "y" if total == 1 else "ies",
                            args.offset,
                        ),
                        file=sys.stderr,
                    )
            elif args.command == "rm":
                if args.hard:
                    store.delete(args.key)
                    print("%s hard-deleted" % args.key)
                else:
                    store.soft_delete(args.key, ttl_seconds=args.ttl)
                    print(
                        "%s tombstoned (gc-eligible in %.0f s)"
                        % (args.key, max(0.0, args.ttl))
                    )
            elif args.command == "gc":
                result = sweep(store, dry_run=args.dry_run)
                if args.json:
                    print(json.dumps(result.as_json(), indent=2, sort_keys=True))
                else:
                    print(result.format_report())
            elif args.command == "compact":
                delta = {"keep": None, "on": True, "off": False}[args.plane_delta]
                result = compact(
                    store,
                    keys=args.key or None,
                    engine=args.target_engine,
                    stripes=args.stripes,
                    plane_delta=delta,
                    min_age_seconds=args.min_age,
                )
                if args.json:
                    print(json.dumps(result.as_json(), indent=2, sort_keys=True))
                else:
                    print(result.format_report())
                if result.failed:
                    exit_code = 1
            else:  # stats
                print(json.dumps(store.stats(), indent=2, sort_keys=True))
    except (ReproError, OSError) as error:
        _print_error(error)
        return 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(store_main())
