"""The ``repro-store`` console script.

Front door of the serving layer (:class:`repro.store.store.ImageStore`):

``repro-store put STORE IMAGE``
    Compress a PGM/PPM/PAM image into the store (content-addressed; the
    printed key is the SHA-256 of the container bytes).  ``--stripes``
    sets random-access granularity, ``--plane-delta`` the inter-plane
    predictor, ``--engine`` the coding engine.

``repro-store get STORE KEY OUTPUT``
    Reconstruct a stored image (or one ``--plane``, or one ``--region
    A:B``) into a Netpbm file; only the indexed bytes the request needs
    are read from the store.

``repro-store regions STORE KEY A:B [A:B ...]``
    Serve a batch of stripe-range requests in one call (cells shared
    between regions decode once).  With ``--out DIR`` each region is
    written as an image; otherwise a per-region summary plus cache
    counters is printed.

``repro-store stats STORE``
    Backend and cache counters as JSON.

``STORE`` is a directory (filesystem backend) or a ``.sqlite``/``.db``
path (SQLite backend).  Errors follow the package convention: one
``ExceptionName: message`` line on stderr, non-zero exit status.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.cli import _print_error, add_version_argument
from repro.core.interface import ENGINES
from repro.exceptions import ReproError
from repro.imaging.pnm import read_image, write_image
from repro.store.store import ImageStore

__all__ = ["store_main"]


def _parse_region(text: str) -> Tuple[int, int]:
    """Parse an ``A:B`` stripe range; raises ``ValueError`` on bad shape."""
    start, _, stop = text.partition(":")
    return int(start), int(stop)


def _region_argument(text: str) -> Tuple[int, int]:
    try:
        return _parse_region(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "region must be START:STOP (stripe indices), got %r" % text
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-store",
        description="Content-addressed image store with cached random access.",
    )
    add_version_argument(parser)
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        metavar="N",
        help="decoded-cell LRU budget in bytes (default 32 MiB; 0 disables)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="reference",
        help="coding engine for encodes and decodes (default: reference)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    put = commands.add_parser("put", help="compress an image into the store")
    put.add_argument("store", help="store path (directory or .sqlite file)")
    put.add_argument("image", help="input PGM/PPM/PAM image")
    put.add_argument(
        "--stripes",
        type=int,
        default=4,
        metavar="S",
        help="stripes per plane — the random-access granularity (default 4)",
    )
    put.add_argument(
        "--plane-delta",
        action="store_true",
        help="code plane k>0 as the delta to plane k-1",
    )

    get = commands.add_parser("get", help="reconstruct a stored image")
    get.add_argument("store", help="store path (directory or .sqlite file)")
    get.add_argument("key", help="content key printed by put")
    get.add_argument("output", help="output image path (PGM/PPM/PAM)")
    group = get.add_mutually_exclusive_group()
    group.add_argument(
        "--plane", type=int, default=None, metavar="K", help="fetch one plane only"
    )
    group.add_argument(
        "--region",
        type=_region_argument,
        default=None,
        metavar="A:B",
        help="fetch the rows of stripes [A, B) only",
    )

    regions = commands.add_parser(
        "regions", help="serve a batch of stripe-range requests"
    )
    regions.add_argument("store", help="store path (directory or .sqlite file)")
    regions.add_argument("key", help="content key printed by put")
    regions.add_argument(
        "ranges",
        nargs="+",
        type=_region_argument,
        metavar="A:B",
        help="stripe ranges to fetch",
    )
    regions.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write each region as an image under DIR instead of summarising",
    )

    stats = commands.add_parser("stats", help="backend + cache counters as JSON")
    stats.add_argument("store", help="store path (directory or .sqlite file)")
    return parser


def store_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-store``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cache_bytes is not None and args.cache_bytes < 0:
        parser.error("--cache-bytes must be >= 0")

    store_kwargs: Dict[str, Any] = {"engine": args.engine}
    if args.cache_bytes is not None:
        store_kwargs["cache_bytes"] = args.cache_bytes

    try:
        with ImageStore.open(args.store, **store_kwargs) as store:
            if args.command == "put":
                image = read_image(args.image)
                key = store.put(
                    image, stripes=args.stripes, plane_delta=args.plane_delta
                )
                size = store.backend.length(key)
                print(key)
                print(
                    "%s -> %s (%d bytes, %d stripes%s)"
                    % (
                        args.image,
                        args.store,
                        size,
                        args.stripes,
                        ", plane-delta" if args.plane_delta else "",
                    ),
                    file=sys.stderr,
                )
            elif args.command == "get":
                if args.plane is not None:
                    image = store.get_plane(args.key, args.plane)
                elif args.region is not None:
                    image = store.get_region(args.key, args.region)
                else:
                    image = store.get(args.key)
                write_image(image, args.output)
                print("%s -> %s" % (args.key, args.output))
            elif args.command == "regions":
                images = store.get_regions(args.key, args.ranges)
                if args.out is not None:
                    out_dir = Path(args.out)
                    out_dir.mkdir(parents=True, exist_ok=True)
                    for (start, stop), image in zip(args.ranges, images):
                        suffix = ".pgm" if not hasattr(image, "num_planes") else (
                            ".ppm" if image.num_planes == 3 else ".pam"
                        )
                        path = out_dir / (
                            "%s-r%d-%d%s" % (args.key[:12], start, stop, suffix)
                        )
                        write_image(image, str(path))
                        print("stripes [%d, %d) -> %s" % (start, stop, path))
                else:
                    for (start, stop), image in zip(args.ranges, images):
                        print(
                            "stripes [%d, %d): %dx%d, %d plane(s)"
                            % (
                                start,
                                stop,
                                image.width,
                                image.height,
                                getattr(image, "num_planes", 1),
                            )
                        )
                    cache = store.cache_stats
                    print(
                        "cache: %d hit(s), %d miss(es), %.0f%% hit rate, "
                        "%d entr%s holding %d of %d bytes"
                        % (
                            cache.hits,
                            cache.misses,
                            100.0 * cache.hit_rate,
                            cache.entries,
                            "y" if cache.entries == 1 else "ies",
                            cache.current_bytes,
                            cache.max_bytes,
                        )
                    )
            else:  # stats
                print(json.dumps(store.stats(), indent=2, sort_keys=True))
    except (ReproError, OSError) as error:
        _print_error(error)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(store_main())
