"""Size-bounded LRU cache of decoded cells.

The unit of caching is the unit of random access: one decoded (plane,
stripe) cell as an ``(rows, width)`` sample array.  Region and plane
queries over a stored stream touch small, stable sets of cells, so an LRU
over cells turns repeated region traffic into pure array reassembly — no
backend reads, no CRC checks, no entropy decoding.

The bound is in *bytes of decoded samples* (``ndarray.nbytes``), not entry
count, because cell sizes vary wildly with image geometry and stripe count;
a byte budget gives the cache a predictable memory footprint.  Hit, miss
and eviction counters are kept for the ``repro-store stats`` command and
the store benchmark.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigError

__all__ = ["CellCache", "CacheStats", "DEFAULT_CACHE_BYTES"]

#: Default decoded-cell budget: 32 MiB ≈ 4 megasamples of int64 cells.
DEFAULT_CACHE_BYTES = 32 * 1024 * 1024


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of a :class:`CellCache`."""

    hits: int
    misses: int
    evictions: int
    entries: int
    current_bytes: int
    max_bytes: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 when the cache was never consulted."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_json(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "current_bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "hit_rate": self.hit_rate,
        }


class CellCache:
    """LRU mapping of cell keys to decoded sample arrays, bounded in bytes.

    Parameters
    ----------
    max_bytes:
        Total ``nbytes`` budget across cached arrays.  ``0`` disables
        caching entirely (every :meth:`get` misses, :meth:`put` is a no-op),
        which is how the store measures cold latencies.

    Keys are arbitrary hashables; the store uses ``(blob_key, plane,
    stripe)``.  Stored arrays are marked read-only so a cached cell cannot
    be mutated by one consumer under another's feet.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes < 0:
            raise ConfigError("cache byte budget must be >= 0, got %d" % max_bytes)
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self._current_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def keys(self) -> Tuple[Hashable, ...]:
        """Cached keys, least recently used first."""
        return tuple(self._entries)

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Return the cached array for ``key`` (refreshing it), or ``None``."""
        array = self._entries.get(key)
        if array is None:
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return array

    def put(self, key: Hashable, array: np.ndarray) -> None:
        """Insert ``array`` under ``key``, evicting LRU entries to fit.

        An array larger than the whole budget is not cached at all —
        evicting everything to hold one oversized entry would turn the
        cache into a single-slot buffer.
        """
        if array.nbytes > self.max_bytes:
            return
        if key in self._entries:
            self._current_bytes -= self._entries.pop(key).nbytes
        # Freeze a private copy: the cache must neither share mutable state
        # with callers nor make a caller's own array read-only under them.
        array = array.copy()
        array.setflags(write=False)
        self._entries[key] = array
        self._current_bytes += array.nbytes
        while self._current_bytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._current_bytes -= evicted.nbytes
            self._evictions += 1

    def invalidate(self, key: Hashable) -> None:
        """Drop one entry if present (used when a blob is deleted)."""
        array = self._entries.pop(key, None)
        if array is not None:
            self._current_bytes -= array.nbytes

    def clear(self) -> None:
        """Drop every entry; counters are kept (they describe the session)."""
        self._entries.clear()
        self._current_bytes = 0

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            entries=len(self._entries),
            current_bytes=self._current_bytes,
            max_bytes=self.max_bytes,
        )
