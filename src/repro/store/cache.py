"""Size-bounded LRU caches of the store's two cell tiers.

The unit of caching is the unit of random access: one (plane, stripe)
cell.  Two tiers exist, same machinery, different payloads:

* :class:`CellCache` holds **decoded** cells as ``(rows, width)`` sample
  arrays.  Region and plane queries over a stored stream touch small,
  stable sets of cells, so an LRU over cells turns repeated region
  traffic into pure array reassembly — no backend reads, no CRC checks,
  no entropy decoding.
* :class:`EncodedCellCache` holds **raw encoded** cell bytes — the exact
  span the backend would range-read.  A hit here still pays the CRC
  check and the entropy decode but skips backend I/O entirely; because
  encoded cells are ~8-50x smaller than their decoded arrays, the same
  byte budget keeps an order of magnitude more cells warm-ish.  Disabled
  by default (budget 0).

The bound is in *bytes of decoded samples* (``ndarray.nbytes``), not entry
count, because cell sizes vary wildly with image geometry and stripe count;
a byte budget gives the cache a predictable memory footprint.  Hit, miss
and eviction counters are kept for the ``repro-store stats`` command, the
serving tier's ``/stats`` endpoint and the store benchmark.

Two behaviours matter to the network serving tier built on top:

* **Thread safety** — every operation takes an internal lock, so the
  thread-pool workers of ``repro-serve`` (and any other concurrent
  caller) can share one cache without torn byte accounting or corrupted
  LRU order.  The critical sections are dict moves and counter updates;
  the decode that produces an array always happens outside the lock.
* **Hot-cell admission** — with ``admission="second-touch"`` an array is
  only admitted once its key has been *offered* before: the first
  :meth:`~CellCache.put` records the key in a bounded ghost list (keys
  only, no payload) and is rejected; a repeat offer caches the bytes.
  Lookups do **not** count as touches — the store's universal
  get-miss → decode → put sequence must not self-admit — so a cell pays
  two decodes before it earns cache residency, and one-touch scan
  traffic (a client sweeping every region of a cold corpus once) cannot
  evict the hot working set a serving process has built up.  The default
  ``"always"`` keeps the original behaviour.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.exceptions import ConfigError

__all__ = [
    "CellCache",
    "EncodedCellCache",
    "CacheStats",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_ENCODED_CACHE_BYTES",
    "ADMISSION_POLICIES",
    "DEFAULT_GHOST_ENTRIES",
]

#: Default decoded-cell budget: 32 MiB ≈ 4 megasamples of int64 cells.
DEFAULT_CACHE_BYTES = 32 * 1024 * 1024

#: Default encoded-bytes budget: 0 — the second tier is opt-in.
DEFAULT_ENCODED_CACHE_BYTES = 0

#: Admission policies a cache can run with.
ADMISSION_POLICIES = ("always", "second-touch")

#: Bound on the second-touch ghost list (keys only — a few KiB of strings).
DEFAULT_GHOST_ENTRIES = 4096


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of a :class:`CellCache`."""

    hits: int
    misses: int
    evictions: int
    entries: int
    current_bytes: int
    max_bytes: int
    admission: str = "always"
    rejected: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 when the cache was never consulted."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_json(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "current_bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "hit_rate": self.hit_rate,
            "admission": self.admission,
            "rejected": self.rejected,
        }


class CellCache:
    """LRU mapping of cell keys to decoded sample arrays, bounded in bytes.

    Parameters
    ----------
    max_bytes:
        Total ``nbytes`` budget across cached arrays.  ``0`` disables
        caching entirely (every :meth:`get` misses, :meth:`put` is a no-op),
        which is how the store measures cold latencies.
    admission:
        ``"always"`` admits every decoded array; ``"second-touch"`` admits
        a key only on its second :meth:`put` offer — lookups are *not*
        touches (see :meth:`get`) — keeping one-touch scans from flushing
        the hot set.

    Keys are arbitrary hashables; the store uses ``(blob_key, plane,
    stripe)``.  Stored arrays are marked read-only so a cached cell cannot
    be mutated by one consumer under another's feet.  All operations are
    thread-safe.
    """

    def __init__(
        self, max_bytes: int = DEFAULT_CACHE_BYTES, admission: str = "always"
    ) -> None:
        if max_bytes < 0:
            raise ConfigError("cache byte budget must be >= 0, got %d" % max_bytes)
        if admission not in ADMISSION_POLICIES:
            raise ConfigError(
                "admission must be one of %s, got %r"
                % (", ".join(ADMISSION_POLICIES), admission)
            )
        self.max_bytes = max_bytes
        self.admission = admission
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._ghosts: "OrderedDict[Hashable, None]" = OrderedDict()
        self._current_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._rejected = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Tuple[Hashable, ...]:
        """Cached keys, least recently used first."""
        with self._lock:
            return tuple(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached array for ``key`` (refreshing it), or ``None``.

        A miss is *not* an admission touch: every store read performs
        get-miss → decode → put, so counting the miss would admit every
        key on its first request and disable the second-touch policy.
        """
        with self._lock:
            array = self._entries.get(key)
            if array is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return array

    def put(self, key: Hashable, array: Any) -> None:
        """Insert ``array`` under ``key``, evicting LRU entries to fit.

        An array larger than the whole budget is not cached at all —
        evicting everything to hold one oversized entry would turn the
        cache into a single-slot buffer.  Under ``second-touch`` admission
        a first-seen key is recorded but its bytes are rejected.
        """
        if self._nbytes(array) > self.max_bytes:
            return
        # Decide admission before paying for the copy: a rejected
        # first-touch offer must not copy a whole decoded cell.
        with self._lock:
            if (
                self.admission == "second-touch"
                and key not in self._entries
                and key not in self._ghosts
            ):
                self._touch_ghost(key)
                self._rejected += 1
                return
        # Freeze a private copy outside the lock: the cache must neither
        # share mutable state with callers nor make a caller's own array
        # read-only under them — and the copy is the expensive part, so it
        # must not serialise other cache users.  (If a concurrent
        # invalidate/clear races between the two critical sections the
        # entry is simply admitted once more; accounting stays exact.)
        frozen = self._freeze(array)
        size = self._nbytes(frozen)
        with self._lock:
            prior = self._entries.pop(key, None)
            if prior is not None:
                self._current_bytes -= self._nbytes(prior)
            self._ghosts.pop(key, None)
            self._entries[key] = frozen
            self._current_bytes += size
            while self._current_bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._current_bytes -= self._nbytes(evicted)
                self._evictions += 1

    @staticmethod
    def _nbytes(value: Any) -> int:
        """Byte charge of one value against the budget."""
        return int(value.nbytes)

    @staticmethod
    def _freeze(value: Any) -> Any:
        """Immutable private copy of the value to be stored."""
        frozen = value.copy()
        frozen.setflags(write=False)
        return frozen

    def _touch_ghost(self, key: Hashable) -> None:
        """Record ``key`` in the bounded seen-once list (lock held)."""
        if self.admission != "second-touch":
            return
        self._ghosts[key] = None
        self._ghosts.move_to_end(key)
        while len(self._ghosts) > DEFAULT_GHOST_ENTRIES:
            self._ghosts.popitem(last=False)

    def invalidate(self, key: Hashable) -> None:
        """Drop one entry if present (used when a blob is deleted)."""
        with self._lock:
            array = self._entries.pop(key, None)
            if array is not None:
                self._current_bytes -= self._nbytes(array)
            self._ghosts.pop(key, None)

    def clear(self) -> None:
        """Drop every entry; counters are kept (they describe the session)."""
        with self._lock:
            self._entries.clear()
            self._ghosts.clear()
            self._current_bytes = 0

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                current_bytes=self._current_bytes,
                max_bytes=self.max_bytes,
                admission=self.admission,
                rejected=self._rejected,
            )


class EncodedCellCache(CellCache):
    """The encoded-bytes tier: same LRU/admission machinery, ``bytes`` values.

    Sits *under* the decoded :class:`CellCache` in the store's lookup
    order — consulted on a decoded miss, filled on a backend read.  A hit
    here skips backend I/O (the expensive part on remote or mmap-cold
    storage) but still pays CRC + entropy decode, which is why the two
    tiers have separate budgets: encoded cells are small enough that a
    modest budget keeps a long tail warm-ish.

    Values are stored as immutable ``bytes``; in particular a
    ``memoryview`` over an mmap'ed blob is **copied out** on admission, so
    the cache never pins a file mapping (and survives the blob being
    swapped or deleted underneath).
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_ENCODED_CACHE_BYTES,
        admission: str = "always",
    ) -> None:
        super().__init__(max_bytes, admission=admission)

    @staticmethod
    def _nbytes(value: Any) -> int:
        return len(value)

    @staticmethod
    def _freeze(value: Any) -> bytes:
        return bytes(value)
