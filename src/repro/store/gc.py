"""Garbage collection of expired tombstones — the space-reclaim half of TTL.

:meth:`ImageStore.soft_delete <repro.store.store.ImageStore.soft_delete>`
never frees a byte; it stamps a tombstone with an absolute purge horizon.
:func:`sweep` is what actually reclaims storage: it scans the catalog for
tombstoned entries, purges the ones whose TTL has lapsed and reports what
happened as a :class:`GcResult`.

Safety invariants (the ones the property suite hammers):

* **a live key is never collected** — only entries carrying a tombstone
  whose ``purge_after`` horizon has passed are candidates; everything
  else is merely counted;
* **an in-flight key is never collected** — the purge goes through
  :meth:`ImageStore.purge_if_unpinned
  <repro.store.store.ImageStore.purge_if_unpinned>`, which takes the
  store's pin lock, so a key currently being read is skipped this sweep
  (and reported in ``skipped_pinned``) rather than deleted under the
  reader;
* **idempotent** — sweeping twice purges nothing the second time; a
  ``dry_run`` sweep reports what *would* be purged and touches nothing.

:class:`GcDaemon` runs sweeps on a background thread at a fixed interval
— the shape a long-lived serving process wants; CLI users run one-shot
sweeps via ``repro-store gc``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import StoreError
from repro.store.catalog import CatalogFilter
from repro.store.store import ImageStore

__all__ = ["GcResult", "sweep", "GcDaemon"]


@dataclass
class GcResult:
    """Outcome of one GC sweep."""

    #: Tombstoned entries examined.
    scanned: int = 0
    #: Entries whose TTL had lapsed (purge candidates).
    expired: int = 0
    #: Entries actually purged (blob + catalog row removed).
    purged: int = 0
    #: Expired entries skipped because an in-flight read pinned them.
    skipped_pinned: int = 0
    #: Tombstoned entries still inside their TTL (left alone).
    within_ttl: int = 0
    #: Backend bytes reclaimed by the purges.
    bytes_reclaimed: int = 0
    #: Whether this was a report-only sweep.
    dry_run: bool = False
    #: Keys purged (or, under ``dry_run``, that would have been).
    purged_keys: List[str] = field(default_factory=list)

    def as_json(self) -> Dict[str, object]:
        return {
            "scanned": self.scanned,
            "expired": self.expired,
            "purged": self.purged,
            "skipped_pinned": self.skipped_pinned,
            "within_ttl": self.within_ttl,
            "bytes_reclaimed": self.bytes_reclaimed,
            "dry_run": self.dry_run,
            "purged_keys": list(self.purged_keys),
        }

    def format_report(self) -> str:
        verb = "would purge" if self.dry_run else "purged"
        return (
            "gc: %d tombstone(s) scanned, %d expired, %s %d "
            "(%d bytes), %d pinned, %d within TTL"
            % (
                self.scanned,
                self.expired,
                verb,
                self.purged,
                self.bytes_reclaimed,
                self.skipped_pinned,
                self.within_ttl,
            )
        )


def sweep(
    store: ImageStore, now: Optional[float] = None, dry_run: bool = False
) -> GcResult:
    """One GC pass over ``store``: purge every expired, unpinned tombstone.

    ``now`` pins the sweep's notion of time (tests, replays); ``dry_run``
    reports candidates without removing anything.  Returns the sweep's
    :class:`GcResult`.
    """
    moment = time.time() if now is None else now
    result = GcResult(dry_run=dry_run)
    tombstones, _total = store.catalog.query(CatalogFilter(deleted_only=True))
    for entry in tombstones:
        result.scanned += 1
        if not entry.expired(moment):
            result.within_ttl += 1
            continue
        result.expired += 1
        if dry_run:
            if store.pinned(entry.key):
                result.skipped_pinned += 1
                continue
            result.purged += 1
            result.bytes_reclaimed += entry.encoded_bytes
            result.purged_keys.append(entry.key)
            continue
        reclaimed = store.purge_if_unpinned(entry.key)
        if reclaimed is None:
            result.skipped_pinned += 1
        else:
            result.purged += 1
            result.bytes_reclaimed += reclaimed
            result.purged_keys.append(entry.key)
    return result


class GcDaemon:
    """Periodic GC sweeps on a daemon thread.

    The serving shape: start it next to a long-lived store and expired
    tombstones are reclaimed in the background without blocking reads
    (sweeps only ever take the pin lock per-key, and skip pinned keys).
    ``results`` keeps the most recent sweep outcomes for observability.
    """

    def __init__(
        self, store: ImageStore, interval_seconds: float = 60.0, keep_results: int = 16
    ) -> None:
        if interval_seconds <= 0:
            raise StoreError(
                "gc interval must be positive seconds, got %r" % interval_seconds
            )
        self.store = store
        self.interval_seconds = interval_seconds
        self.keep_results = max(1, keep_results)
        self.results: List[GcResult] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            raise StoreError("gc daemon is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-store-gc", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=timeout)
        self._thread = None

    def run_once(self, now: Optional[float] = None) -> GcResult:
        """One synchronous sweep, recorded like a scheduled one."""
        result = sweep(self.store, now=now)
        self.results.append(result)
        del self.results[: -self.keep_results]
        return result

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self.run_once()
            except Exception:  # noqa: BLE001 - a failed sweep must not kill the loop
                # Backend hiccups (a shard mid-chaos-drill, a transient
                # I/O error) are retried on the next interval; the daemon
                # itself must stay alive.
                continue

    def __enter__(self) -> "GcDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
